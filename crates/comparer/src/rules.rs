//! Isomorphism rule configuration.

use mockingbird_mtype::canon::CanonOpts;

/// Which isomorphism rules the comparer applies on top of the
/// Amadio–Cardelli core (paper §4: "We extend the Amadio-Cardelli
/// algorithm with isomorphism rules to allow for more flexible matching
/// of types").
///
/// [`RuleSet::full`] is the paper's configuration; [`RuleSet::strict`]
/// is the pure Amadio–Cardelli baseline used in the ablation study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSet {
    /// Flatten nested `Record`s and `Choice`s (associativity).
    pub assoc: bool,
    /// Match `Record`/`Choice` children under permutation (commutativity).
    pub comm: bool,
    /// Drop `Unit` children of `Record`s.
    pub unit_elim: bool,
    /// Treat single-alternative `Choice`s as transparent.
    pub singleton_choice: bool,
    /// Prune equivalence checks whose canonical fingerprints differ.
    /// Sound (fingerprints are invariant under the full rule set) but the
    /// source of the documented incompleteness.
    pub fingerprint_filter: bool,
    /// Cap on backtracking positions explored when matching commutative
    /// children with colliding fingerprints; exceeding it fails the match.
    pub search_budget: usize,
}

impl RuleSet {
    /// The paper's full rule set.
    pub fn full() -> Self {
        RuleSet {
            assoc: true,
            comm: true,
            unit_elim: true,
            singleton_choice: true,
            fingerprint_filter: true,
            search_budget: 1_000_000,
        }
    }

    /// Pure Amadio–Cardelli: structural, positional, no isomorphisms.
    pub fn strict() -> Self {
        RuleSet {
            assoc: false,
            comm: false,
            unit_elim: false,
            singleton_choice: false,
            fingerprint_filter: false,
            search_budget: 10_000,
        }
    }

    /// A stable 64-bit digest of the entire rule set, suitable for cache
    /// keys. *Every* field participates — including `fingerprint_filter`
    /// and `search_budget`, because both can change a verdict (the filter
    /// through its documented incompleteness, the budget through
    /// exhaustion failures) — so verdicts computed under different rule
    /// sets can never share a cache entry.
    pub fn fingerprint(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(0x100_0000_01b3).rotate_left(17)
        }
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        h = mix(h, u64::from(self.assoc));
        h = mix(h, u64::from(self.comm));
        h = mix(h, u64::from(self.unit_elim));
        h = mix(h, u64::from(self.singleton_choice));
        h = mix(h, u64::from(self.fingerprint_filter));
        h = mix(h, self.search_budget as u64);
        h
    }

    /// The canonicalisation options matching this rule set's structural
    /// isomorphism rules: `canonical_fingerprint_opts` under these options
    /// equates exactly the rewrites this rule set sanctions, which is what
    /// makes the fingerprint a sound verdict-cache key.
    pub fn canon_opts(&self) -> CanonOpts {
        CanonOpts {
            assoc: self.assoc,
            comm: self.comm,
            unit_elim: self.unit_elim,
            singleton_choice: self.singleton_choice,
        }
    }
}

impl Default for RuleSet {
    fn default() -> Self {
        RuleSet::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full() {
        assert_eq!(RuleSet::default(), RuleSet::full());
        assert!(RuleSet::full().assoc);
        assert!(!RuleSet::strict().assoc);
    }

    #[test]
    fn fingerprint_separates_every_field() {
        let base = RuleSet::full();
        let mut variants = vec![base.fingerprint(), RuleSet::strict().fingerprint()];
        for f in 0..5usize {
            let mut r = RuleSet::full();
            match f {
                0 => r.assoc = false,
                1 => r.comm = false,
                2 => r.unit_elim = false,
                3 => r.singleton_choice = false,
                _ => r.fingerprint_filter = false,
            }
            variants.push(r.fingerprint());
        }
        let mut budget = RuleSet::full();
        budget.search_budget = 7;
        variants.push(budget.fingerprint());
        let unique: std::collections::HashSet<u64> = variants.iter().copied().collect();
        assert_eq!(unique.len(), variants.len(), "each variant keys separately");
        assert_eq!(base.fingerprint(), RuleSet::full().fingerprint());
    }

    #[test]
    fn canon_opts_mirror_structural_flags() {
        assert_eq!(RuleSet::full().canon_opts(), CanonOpts::full());
        assert_eq!(RuleSet::strict().canon_opts(), CanonOpts::strict());
    }
}
