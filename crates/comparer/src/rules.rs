//! Isomorphism rule configuration.

/// Which isomorphism rules the comparer applies on top of the
/// Amadio–Cardelli core (paper §4: "We extend the Amadio-Cardelli
/// algorithm with isomorphism rules to allow for more flexible matching
/// of types").
///
/// [`RuleSet::full`] is the paper's configuration; [`RuleSet::strict`]
/// is the pure Amadio–Cardelli baseline used in the ablation study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSet {
    /// Flatten nested `Record`s and `Choice`s (associativity).
    pub assoc: bool,
    /// Match `Record`/`Choice` children under permutation (commutativity).
    pub comm: bool,
    /// Drop `Unit` children of `Record`s.
    pub unit_elim: bool,
    /// Treat single-alternative `Choice`s as transparent.
    pub singleton_choice: bool,
    /// Prune equivalence checks whose canonical fingerprints differ.
    /// Sound (fingerprints are invariant under the full rule set) but the
    /// source of the documented incompleteness.
    pub fingerprint_filter: bool,
    /// Cap on backtracking positions explored when matching commutative
    /// children with colliding fingerprints; exceeding it fails the match.
    pub search_budget: usize,
}

impl RuleSet {
    /// The paper's full rule set.
    pub fn full() -> Self {
        RuleSet {
            assoc: true,
            comm: true,
            unit_elim: true,
            singleton_choice: true,
            fingerprint_filter: true,
            search_budget: 1_000_000,
        }
    }

    /// Pure Amadio–Cardelli: structural, positional, no isomorphisms.
    pub fn strict() -> Self {
        RuleSet {
            assoc: false,
            comm: false,
            unit_elim: false,
            singleton_choice: false,
            fingerprint_filter: false,
            search_budget: 10_000,
        }
    }
}

impl Default for RuleSet {
    fn default() -> Self {
        RuleSet::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full() {
        assert_eq!(RuleSet::default(), RuleSet::full());
        assert!(RuleSet::full().assoc);
        assert!(!RuleSet::strict().assoc);
    }
}
