//! Correspondences: the structural matching recorded by a successful
//! comparison.
//!
//! "If the Comparer determines that two types match, it saves information
//! about structural correspondences between the Mtypes for use by the
//! Stub Generator." (paper §3)

use std::collections::HashMap;

use mockingbird_mtype::MtypeId;

/// How two matched primitive leaves convert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimCoercion {
    /// Integer to integer (ranges equal, or source ⊆ target).
    Int,
    /// Real to real; `widen` is true when target precision exceeds source.
    Real {
        /// Whether the target is strictly more precise.
        widen: bool,
    },
    /// Character to character (repertoires equal or source ⊆ target).
    Char,
    /// Unit to unit (nothing to move).
    Unit,
    /// Dynamic to dynamic (tagged value passes through).
    Dynamic,
    /// Any value injected into a Dynamic target (subtype mode only).
    IntoDynamic,
}

/// How a Record pair's children lists were derived; the coercion-plan
/// interpreter replays the same view when aligning values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordFlatten {
    /// Direct (binder-resolved) children, `Unit`s dropped — the fast
    /// path when both sides have the same arity without regrouping.
    OneLevel,
    /// Fully flattened (associativity): nested records inlined down to
    /// leaves, stopping at genuine cycles.
    Full,
}

/// The matching recorded for one compared node pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// Two primitive leaves matched.
    Prim(PrimCoercion),
    /// Two Records matched under a permutation of their viewed children.
    Record {
        /// Left children under `policy`, in left order.
        left_children: Vec<MtypeId>,
        /// Right children under `policy`, in right order.
        right_children: Vec<MtypeId>,
        /// `perm[i] = j` means right child `i` matches left child `j`.
        perm: Vec<usize>,
        /// Which view produced the children lists.
        policy: RecordFlatten,
    },
    /// Two (flattened) Choices matched; each left alternative maps to a
    /// right alternative.
    Choice {
        /// Left flattened alternatives.
        left_alts: Vec<MtypeId>,
        /// Right flattened alternatives.
        right_alts: Vec<MtypeId>,
        /// `alt_map[i] = j` means left alternative `i` converts to right
        /// alternative `j`.
        alt_map: Vec<usize>,
    },
    /// The pair was matched *by assumption*: the programmer declared a
    /// semantic bridge between these two types (paper §6: hand-written
    /// conversions "integrated with the automated structural ones").
    /// The coercion plan must have a registered converter for the pair.
    Semantic,
    /// Two Ports matched; their payloads matched (contravariantly in
    /// subtype mode).
    Port {
        /// Left payload node.
        left_payload: MtypeId,
        /// Right payload node.
        right_payload: MtypeId,
    },
}

/// The full result of a successful comparison: every matched node pair
/// and how it matched. Node ids are *resolved* (binder-free) ids.
#[derive(Debug, Clone)]
pub struct Correspondence {
    /// The left root (as given, unresolved).
    pub left_root: MtypeId,
    /// The right root (as given, unresolved).
    pub right_root: MtypeId,
    /// Matching details keyed by resolved `(left, right)` node pairs.
    pub entries: HashMap<(MtypeId, MtypeId), Entry>,
}

impl Correspondence {
    /// Looks up the matching for a resolved node pair.
    pub fn entry(&self, left: MtypeId, right: MtypeId) -> Option<&Entry> {
        self.entries.get(&(left, right))
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pairs were recorded (an empty comparison).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_lookup() {
        let a = fake_id(0);
        let b = fake_id(1);
        let mut c = Correspondence {
            left_root: a,
            right_root: b,
            entries: HashMap::new(),
        };
        c.entries.insert((a, b), Entry::Prim(PrimCoercion::Unit));
        assert_eq!(c.entry(a, b), Some(&Entry::Prim(PrimCoercion::Unit)));
        assert_eq!(c.entry(b, a), None);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    fn fake_id(i: u32) -> MtypeId {
        // Round-trip through a real graph to obtain ids.
        let mut g = mockingbird_mtype::MtypeGraph::new();
        let mut last = g.unit();
        for _ in 0..i {
            last = g.record(vec![last]);
        }
        last
    }
}
