//! A shared, thread-safe memo of comparison outcomes, keyed by canonical
//! fingerprints.
//!
//! The one-shot comparer re-proves every pair from scratch; batch
//! compilation over a declaration corpus (paper §5) meets the same Mtype
//! shapes over and over. [`CompareCache`] memoizes *verdicts*
//! content-addressed by `(left_fp, right_fp, Mode, RuleSet fingerprint)`
//! — valid across graphs, sessions and (via [`CompareCache::export`])
//! processes — plus *correspondences*, which hold graph-local
//! [`MtypeId`]s and are therefore only reusable between holders of the
//! same frozen graph snapshot (checked via `MtypeGraph::uid`).
//!
//! Hit/miss/insert counters follow the runtime metrics idiom
//! (relaxed `AtomicU64`s plus a `Copy` snapshot struct).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use mockingbird_artifact::{ArtifactKind, ArtifactStore, StoreKey};
use mockingbird_mtype::MtypeId;

use crate::compare::Mode;
use crate::correspondence::Correspondence;

/// Content-addressed identity of one comparison. Both fingerprints must
/// be computed with `RuleSet::canon_opts()` of the *same* rule set whose
/// `RuleSet::fingerprint()` is stored in `rules_fp` — the pairing is what
/// keeps verdicts from leaking between rule sets or modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical fingerprint of the left root.
    pub left_fp: u128,
    /// Canonical fingerprint of the right root.
    pub right_fp: u128,
    /// Equivalence or subtype.
    pub mode: Mode,
    /// `RuleSet::fingerprint()` of the rule set in force.
    pub rules_fp: u64,
}

impl CacheKey {
    /// The artifact-store key for this comparison under `kind`. `Mode` is
    /// flattened to the `subtype` bool (the artifact crate does not know
    /// about the comparer's enums).
    pub fn store_key(&self, kind: ArtifactKind) -> StoreKey {
        StoreKey {
            kind,
            left_fp: self.left_fp,
            right_fp: self.right_fp,
            subtype: matches!(self.mode, Mode::Subtype),
            rules_fp: self.rules_fp,
        }
    }

    /// Inverse of [`CacheKey::store_key`] (the kind is dropped).
    pub fn from_store_key(key: &StoreKey) -> CacheKey {
        CacheKey {
            left_fp: key.left_fp,
            right_fp: key.right_fp,
            mode: if key.subtype {
                Mode::Subtype
            } else {
                Mode::Equivalence
            },
            rules_fp: key.rules_fp,
        }
    }
}

/// A memoized comparison outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The pair compared successfully.
    Match,
    /// The pair failed; enough of the diagnosis is kept to resynthesize a
    /// `Mismatch` with the same reason and depth as the original run.
    Mismatch {
        /// Deepest failing sub-comparison, verbatim.
        reason: String,
        /// Constructor depth of that failure.
        depth: usize,
    },
}

impl Verdict {
    /// Canonical artifact body: `[matched u8][depth u64 LE][reason utf-8]`.
    /// This is the byte string the verdict's `ArtifactId` is computed over.
    pub fn to_artifact_body(&self) -> Vec<u8> {
        let (matched, reason, depth) = match self {
            Verdict::Match => (1u8, "", 0usize),
            Verdict::Mismatch { reason, depth } => (0u8, reason.as_str(), *depth),
        };
        let mut out = Vec::with_capacity(9 + reason.len());
        out.push(matched);
        out.extend_from_slice(&(depth as u64).to_le_bytes());
        out.extend_from_slice(reason.as_bytes());
        out
    }

    /// Decode an artifact body; `None` on malformed input.
    pub fn from_artifact_body(body: &[u8]) -> Option<Verdict> {
        if body.len() < 9 || body[0] > 1 {
            return None;
        }
        if body[0] == 1 {
            // Matches carry no diagnosis; anything else is malformed.
            if body.len() != 9 || body[1..9] != [0u8; 8] {
                return None;
            }
            return Some(Verdict::Match);
        }
        let depth = u64::from_le_bytes(body[1..9].try_into().unwrap()) as usize;
        let reason = std::str::from_utf8(&body[9..]).ok()?.to_string();
        Some(Verdict::Mismatch { reason, depth })
    }
}

/// A verdict in exportable form, for persistence into project files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistedVerdict {
    /// Canonical fingerprint of the left root.
    pub left_fp: u128,
    /// Canonical fingerprint of the right root.
    pub right_fp: u128,
    /// `true` for `Mode::Subtype`, `false` for `Mode::Equivalence`.
    pub subtype: bool,
    /// Rule-set fingerprint the verdict was computed under.
    pub rules_fp: u64,
    /// Whether the pair matched.
    pub matched: bool,
    /// Mismatch reason (empty for matches).
    pub reason: String,
    /// Mismatch depth (0 for matches).
    pub depth: usize,
}

/// Point-in-time counter values of a [`CompareCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Verdict lookups that found an entry.
    pub hits: u64,
    /// Verdict lookups that found nothing.
    pub misses: u64,
    /// Verdicts inserted.
    pub inserts: u64,
    /// Correspondence lookups that could be reused (same snapshot uid).
    pub corr_hits: u64,
    /// Number of verdicts currently stored.
    pub verdicts: u64,
}

impl CacheStats {
    /// Fraction of verdict lookups that hit, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas relative to an earlier snapshot (stored-verdict
    /// count is carried over absolute, not subtracted).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            inserts: self.inserts.saturating_sub(earlier.inserts),
            corr_hits: self.corr_hits.saturating_sub(earlier.corr_hits),
            verdicts: self.verdicts,
        }
    }
}

struct CorrEntry {
    left_uid: u64,
    right_uid: u64,
    left_root: MtypeId,
    right_root: MtypeId,
    corr: Arc<Correspondence>,
}

/// The shared memo. Cheap to share as `Arc<CompareCache>`; all methods
/// take `&self` and are safe to call from many worker threads at once.
#[derive(Default)]
pub struct CompareCache {
    verdicts: RwLock<HashMap<CacheKey, Verdict>>,
    corrs: RwLock<HashMap<CacheKey, CorrEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    corr_hits: AtomicU64,
}

impl CompareCache {
    /// An empty cache with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of verdicts stored.
    pub fn len(&self) -> usize {
        self.verdicts.read().expect("cache lock").len()
    }

    /// Whether no verdicts are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a verdict, counting the outcome.
    pub fn lookup(&self, key: &CacheKey) -> Option<Verdict> {
        let found = self.verdicts.read().expect("cache lock").get(key).cloned();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a verdict (last writer wins; concurrent writers compute
    /// identical verdicts for identical keys, so races are benign).
    pub fn insert(&self, key: CacheKey, verdict: Verdict) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.verdicts
            .write()
            .expect("cache lock")
            .insert(key, verdict);
    }

    /// Looks up a reusable correspondence: the stored entry must have
    /// been recorded against the *same* graph snapshots (by uid) and the
    /// same root ids, because correspondences hold graph-local ids.
    pub fn lookup_correspondence(
        &self,
        key: &CacheKey,
        left_uid: u64,
        right_uid: u64,
        left_root: MtypeId,
        right_root: MtypeId,
    ) -> Option<Arc<Correspondence>> {
        let corrs = self.corrs.read().expect("cache lock");
        let e = corrs.get(key)?;
        if e.left_uid == left_uid
            && e.right_uid == right_uid
            && e.left_root == left_root
            && e.right_root == right_root
        {
            self.corr_hits.fetch_add(1, Ordering::Relaxed);
            Some(e.corr.clone())
        } else {
            None
        }
    }

    /// Stores a correspondence for reuse by other holders of the same
    /// graph snapshots.
    pub fn insert_correspondence(
        &self,
        key: CacheKey,
        left_uid: u64,
        right_uid: u64,
        corr: Arc<Correspondence>,
    ) {
        let entry = CorrEntry {
            left_uid,
            right_uid,
            left_root: corr.left_root,
            right_root: corr.right_root,
            corr,
        };
        self.corrs.write().expect("cache lock").insert(key, entry);
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            corr_hits: self.corr_hits.load(Ordering::Relaxed),
            verdicts: self.len() as u64,
        }
    }

    /// Zeroes the counters (stored entries are kept).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.inserts.store(0, Ordering::Relaxed);
        self.corr_hits.store(0, Ordering::Relaxed);
    }

    /// Writes every verdict into `store` as [`ArtifactKind::Verdict`]
    /// records (correspondences are *not* persisted: their graph-local ids
    /// are meaningless elsewhere). Returns how many records were put.
    pub fn store_into(&self, store: &dyn ArtifactStore) -> usize {
        let verdicts = self.verdicts.read().expect("cache lock");
        for (key, verdict) in verdicts.iter() {
            store.put(
                key.store_key(ArtifactKind::Verdict),
                &verdict.to_artifact_body(),
            );
        }
        verdicts.len()
    }

    /// Absorbs every [`ArtifactKind::Verdict`] record from `store` into the
    /// cache. Malformed bodies are skipped. Returns how many verdicts were
    /// absorbed. Does not count as inserts in the stats.
    pub fn load_from(&self, store: &dyn ArtifactStore) -> usize {
        let mut map = self.verdicts.write().expect("cache lock");
        let mut n = 0usize;
        for (skey, id) in store.keys() {
            if skey.kind != ArtifactKind::Verdict {
                continue;
            }
            let Some(body) = store.body(&id) else {
                continue;
            };
            let Some(verdict) = Verdict::from_artifact_body(&body) else {
                continue;
            };
            map.insert(CacheKey::from_store_key(&skey), verdict);
            n += 1;
        }
        n
    }

    /// All verdicts in persistable form.
    #[deprecated(
        since = "0.2.0",
        note = "use `store_into` with an `ArtifactStore`; this shim is kept for one release"
    )]
    pub fn export(&self) -> Vec<PersistedVerdict> {
        let verdicts = self.verdicts.read().expect("cache lock");
        let mut out: Vec<PersistedVerdict> = verdicts
            .iter()
            .map(|(k, v)| {
                let (matched, reason, depth) = match v {
                    Verdict::Match => (true, String::new(), 0),
                    Verdict::Mismatch { reason, depth } => (false, reason.clone(), *depth),
                };
                PersistedVerdict {
                    left_fp: k.left_fp,
                    right_fp: k.right_fp,
                    subtype: matches!(k.mode, Mode::Subtype),
                    rules_fp: k.rules_fp,
                    matched,
                    reason,
                    depth,
                }
            })
            .collect();
        // Deterministic order for stable project files.
        out.sort_by(|a, b| {
            (a.left_fp, a.right_fp, a.subtype, a.rules_fp)
                .cmp(&(b.left_fp, b.right_fp, b.subtype, b.rules_fp))
        });
        out
    }

    /// Restores previously exported verdicts; returns how many were
    /// absorbed. Does not count as inserts in the stats.
    #[deprecated(
        since = "0.2.0",
        note = "use `load_from` with an `ArtifactStore`; this shim is kept for one release"
    )]
    pub fn absorb(&self, verdicts: impl IntoIterator<Item = PersistedVerdict>) -> usize {
        let mut map = self.verdicts.write().expect("cache lock");
        let mut n = 0usize;
        for p in verdicts {
            let key = CacheKey {
                left_fp: p.left_fp,
                right_fp: p.right_fp,
                mode: if p.subtype {
                    Mode::Subtype
                } else {
                    Mode::Equivalence
                },
                rules_fp: p.rules_fp,
            };
            let verdict = if p.matched {
                Verdict::Match
            } else {
                Verdict::Mismatch {
                    reason: p.reason,
                    depth: p.depth,
                }
            };
            map.insert(key, verdict);
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleSet;

    fn key(l: u128, r: u128, mode: Mode, rules: &RuleSet) -> CacheKey {
        CacheKey {
            left_fp: l,
            right_fp: r,
            mode,
            rules_fp: rules.fingerprint(),
        }
    }

    #[test]
    fn different_rulesets_and_modes_key_separately() {
        let cache = CompareCache::new();
        let full = RuleSet::full();
        let strict = RuleSet::strict();
        cache.insert(key(1, 2, Mode::Equivalence, &full), Verdict::Match);
        assert!(cache
            .lookup(&key(1, 2, Mode::Equivalence, &strict))
            .is_none());
        assert!(cache.lookup(&key(1, 2, Mode::Subtype, &full)).is_none());
        assert_eq!(
            cache.lookup(&key(1, 2, Mode::Equivalence, &full)),
            Some(Verdict::Match)
        );
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 2, 1));
    }

    #[test]
    fn store_into_load_from_round_trips() {
        let cache = CompareCache::new();
        let full = RuleSet::full();
        cache.insert(key(10, 20, Mode::Equivalence, &full), Verdict::Match);
        cache.insert(
            key(30, 40, Mode::Subtype, &full),
            Verdict::Mismatch {
                reason: "kind mismatch: Integer vs Real".into(),
                depth: 3,
            },
        );
        let store = mockingbird_artifact::MemoryStore::new();
        assert_eq!(cache.store_into(&store), 2);
        assert_eq!(store.len(), 2);

        let warm = CompareCache::new();
        assert_eq!(warm.load_from(&store), 2);
        assert_eq!(
            warm.lookup(&key(10, 20, Mode::Equivalence, &full)),
            Some(Verdict::Match)
        );
        assert_eq!(
            warm.lookup(&key(30, 40, Mode::Subtype, &full)),
            Some(Verdict::Mismatch {
                reason: "kind mismatch: Integer vs Real".into(),
                depth: 3
            })
        );
    }

    #[test]
    fn verdict_body_codec_rejects_malformed() {
        let m = Verdict::Mismatch {
            reason: "width".into(),
            depth: 7,
        };
        assert_eq!(Verdict::from_artifact_body(&m.to_artifact_body()), Some(m));
        assert_eq!(
            Verdict::from_artifact_body(&Verdict::Match.to_artifact_body()),
            Some(Verdict::Match)
        );
        assert_eq!(Verdict::from_artifact_body(&[]), None);
        assert_eq!(Verdict::from_artifact_body(&[2; 16]), None);
        // A "match" smuggling a depth/reason is malformed.
        let mut bad = Verdict::Match.to_artifact_body();
        bad.extend_from_slice(b"junk");
        assert_eq!(Verdict::from_artifact_body(&bad), None);
    }

    // Pins the one-release deprecated shims to the ArtifactStore path:
    // exporting via the old API and loading via the new one (and vice
    // versa) must agree.
    #[test]
    #[allow(deprecated)]
    fn export_absorb_round_trips() {
        let cache = CompareCache::new();
        let full = RuleSet::full();
        cache.insert(key(10, 20, Mode::Equivalence, &full), Verdict::Match);
        cache.insert(
            key(30, 40, Mode::Subtype, &full),
            Verdict::Mismatch {
                reason: "kind mismatch: Integer vs Real".into(),
                depth: 3,
            },
        );
        let exported = cache.export();
        assert_eq!(exported.len(), 2);

        let warm = CompareCache::new();
        assert_eq!(warm.absorb(exported.clone()), 2);
        assert_eq!(warm.export(), exported, "round trip is lossless");
        assert_eq!(
            warm.lookup(&key(30, 40, Mode::Subtype, &full)),
            Some(Verdict::Mismatch {
                reason: "kind mismatch: Integer vs Real".into(),
                depth: 3
            })
        );
    }

    #[test]
    fn correspondence_reuse_requires_matching_snapshot() {
        let cache = CompareCache::new();
        let full = RuleSet::full();
        let k = key(7, 7, Mode::Equivalence, &full);
        let mut g = mockingbird_mtype::MtypeGraph::new();
        let (lid, rid) = (g.unit(), g.dynamic());
        let corr = Arc::new(Correspondence {
            left_root: lid,
            right_root: rid,
            entries: HashMap::new(),
        });
        cache.insert_correspondence(k, 100, 100, corr.clone());
        assert!(cache
            .lookup_correspondence(&k, 100, 100, corr.left_root, corr.right_root)
            .is_some());
        assert!(
            cache
                .lookup_correspondence(&k, 101, 100, corr.left_root, corr.right_root)
                .is_none(),
            "a different graph uid must not reuse graph-local ids"
        );
        assert!(cache
            .lookup_correspondence(&k, 100, 100, corr.right_root, corr.left_root)
            .is_none());
        assert_eq!(cache.stats().corr_hits, 1);
    }
}
