//! A shared, thread-safe memo of comparison outcomes, keyed by canonical
//! fingerprints.
//!
//! The one-shot comparer re-proves every pair from scratch; batch
//! compilation over a declaration corpus (paper §5) meets the same Mtype
//! shapes over and over. [`CompareCache`] memoizes *verdicts*
//! content-addressed by `(left_fp, right_fp, Mode, RuleSet fingerprint)`
//! — valid across graphs, sessions and (via [`CompareCache::export`])
//! processes — plus *correspondences*, which hold graph-local
//! [`MtypeId`]s and are therefore only reusable between holders of the
//! same frozen graph snapshot (checked via `MtypeGraph::uid`).
//!
//! Hit/miss/insert counters follow the runtime metrics idiom
//! (relaxed `AtomicU64`s plus a `Copy` snapshot struct).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use mockingbird_mtype::MtypeId;

use crate::compare::Mode;
use crate::correspondence::Correspondence;

/// Content-addressed identity of one comparison. Both fingerprints must
/// be computed with `RuleSet::canon_opts()` of the *same* rule set whose
/// `RuleSet::fingerprint()` is stored in `rules_fp` — the pairing is what
/// keeps verdicts from leaking between rule sets or modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical fingerprint of the left root.
    pub left_fp: u128,
    /// Canonical fingerprint of the right root.
    pub right_fp: u128,
    /// Equivalence or subtype.
    pub mode: Mode,
    /// `RuleSet::fingerprint()` of the rule set in force.
    pub rules_fp: u64,
}

/// A memoized comparison outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The pair compared successfully.
    Match,
    /// The pair failed; enough of the diagnosis is kept to resynthesize a
    /// `Mismatch` with the same reason and depth as the original run.
    Mismatch {
        /// Deepest failing sub-comparison, verbatim.
        reason: String,
        /// Constructor depth of that failure.
        depth: usize,
    },
}

/// A verdict in exportable form, for persistence into project files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistedVerdict {
    /// Canonical fingerprint of the left root.
    pub left_fp: u128,
    /// Canonical fingerprint of the right root.
    pub right_fp: u128,
    /// `true` for `Mode::Subtype`, `false` for `Mode::Equivalence`.
    pub subtype: bool,
    /// Rule-set fingerprint the verdict was computed under.
    pub rules_fp: u64,
    /// Whether the pair matched.
    pub matched: bool,
    /// Mismatch reason (empty for matches).
    pub reason: String,
    /// Mismatch depth (0 for matches).
    pub depth: usize,
}

/// Point-in-time counter values of a [`CompareCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Verdict lookups that found an entry.
    pub hits: u64,
    /// Verdict lookups that found nothing.
    pub misses: u64,
    /// Verdicts inserted.
    pub inserts: u64,
    /// Correspondence lookups that could be reused (same snapshot uid).
    pub corr_hits: u64,
    /// Number of verdicts currently stored.
    pub verdicts: u64,
}

impl CacheStats {
    /// Fraction of verdict lookups that hit, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas relative to an earlier snapshot (stored-verdict
    /// count is carried over absolute, not subtracted).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            inserts: self.inserts.saturating_sub(earlier.inserts),
            corr_hits: self.corr_hits.saturating_sub(earlier.corr_hits),
            verdicts: self.verdicts,
        }
    }
}

struct CorrEntry {
    left_uid: u64,
    right_uid: u64,
    left_root: MtypeId,
    right_root: MtypeId,
    corr: Arc<Correspondence>,
}

/// The shared memo. Cheap to share as `Arc<CompareCache>`; all methods
/// take `&self` and are safe to call from many worker threads at once.
#[derive(Default)]
pub struct CompareCache {
    verdicts: RwLock<HashMap<CacheKey, Verdict>>,
    corrs: RwLock<HashMap<CacheKey, CorrEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    corr_hits: AtomicU64,
}

impl CompareCache {
    /// An empty cache with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of verdicts stored.
    pub fn len(&self) -> usize {
        self.verdicts.read().expect("cache lock").len()
    }

    /// Whether no verdicts are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a verdict, counting the outcome.
    pub fn lookup(&self, key: &CacheKey) -> Option<Verdict> {
        let found = self.verdicts.read().expect("cache lock").get(key).cloned();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a verdict (last writer wins; concurrent writers compute
    /// identical verdicts for identical keys, so races are benign).
    pub fn insert(&self, key: CacheKey, verdict: Verdict) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.verdicts
            .write()
            .expect("cache lock")
            .insert(key, verdict);
    }

    /// Looks up a reusable correspondence: the stored entry must have
    /// been recorded against the *same* graph snapshots (by uid) and the
    /// same root ids, because correspondences hold graph-local ids.
    pub fn lookup_correspondence(
        &self,
        key: &CacheKey,
        left_uid: u64,
        right_uid: u64,
        left_root: MtypeId,
        right_root: MtypeId,
    ) -> Option<Arc<Correspondence>> {
        let corrs = self.corrs.read().expect("cache lock");
        let e = corrs.get(key)?;
        if e.left_uid == left_uid
            && e.right_uid == right_uid
            && e.left_root == left_root
            && e.right_root == right_root
        {
            self.corr_hits.fetch_add(1, Ordering::Relaxed);
            Some(e.corr.clone())
        } else {
            None
        }
    }

    /// Stores a correspondence for reuse by other holders of the same
    /// graph snapshots.
    pub fn insert_correspondence(
        &self,
        key: CacheKey,
        left_uid: u64,
        right_uid: u64,
        corr: Arc<Correspondence>,
    ) {
        let entry = CorrEntry {
            left_uid,
            right_uid,
            left_root: corr.left_root,
            right_root: corr.right_root,
            corr,
        };
        self.corrs.write().expect("cache lock").insert(key, entry);
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            corr_hits: self.corr_hits.load(Ordering::Relaxed),
            verdicts: self.len() as u64,
        }
    }

    /// Zeroes the counters (stored entries are kept).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.inserts.store(0, Ordering::Relaxed);
        self.corr_hits.store(0, Ordering::Relaxed);
    }

    /// All verdicts in persistable form (correspondences are *not*
    /// exported: their graph-local ids are meaningless elsewhere).
    pub fn export(&self) -> Vec<PersistedVerdict> {
        let verdicts = self.verdicts.read().expect("cache lock");
        let mut out: Vec<PersistedVerdict> = verdicts
            .iter()
            .map(|(k, v)| {
                let (matched, reason, depth) = match v {
                    Verdict::Match => (true, String::new(), 0),
                    Verdict::Mismatch { reason, depth } => (false, reason.clone(), *depth),
                };
                PersistedVerdict {
                    left_fp: k.left_fp,
                    right_fp: k.right_fp,
                    subtype: matches!(k.mode, Mode::Subtype),
                    rules_fp: k.rules_fp,
                    matched,
                    reason,
                    depth,
                }
            })
            .collect();
        // Deterministic order for stable project files.
        out.sort_by(|a, b| {
            (a.left_fp, a.right_fp, a.subtype, a.rules_fp)
                .cmp(&(b.left_fp, b.right_fp, b.subtype, b.rules_fp))
        });
        out
    }

    /// Restores previously exported verdicts; returns how many were
    /// absorbed. Does not count as inserts in the stats.
    pub fn absorb(&self, verdicts: impl IntoIterator<Item = PersistedVerdict>) -> usize {
        let mut map = self.verdicts.write().expect("cache lock");
        let mut n = 0usize;
        for p in verdicts {
            let key = CacheKey {
                left_fp: p.left_fp,
                right_fp: p.right_fp,
                mode: if p.subtype {
                    Mode::Subtype
                } else {
                    Mode::Equivalence
                },
                rules_fp: p.rules_fp,
            };
            let verdict = if p.matched {
                Verdict::Match
            } else {
                Verdict::Mismatch {
                    reason: p.reason,
                    depth: p.depth,
                }
            };
            map.insert(key, verdict);
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleSet;

    fn key(l: u128, r: u128, mode: Mode, rules: &RuleSet) -> CacheKey {
        CacheKey {
            left_fp: l,
            right_fp: r,
            mode,
            rules_fp: rules.fingerprint(),
        }
    }

    #[test]
    fn different_rulesets_and_modes_key_separately() {
        let cache = CompareCache::new();
        let full = RuleSet::full();
        let strict = RuleSet::strict();
        cache.insert(key(1, 2, Mode::Equivalence, &full), Verdict::Match);
        assert!(cache
            .lookup(&key(1, 2, Mode::Equivalence, &strict))
            .is_none());
        assert!(cache.lookup(&key(1, 2, Mode::Subtype, &full)).is_none());
        assert_eq!(
            cache.lookup(&key(1, 2, Mode::Equivalence, &full)),
            Some(Verdict::Match)
        );
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 2, 1));
    }

    #[test]
    fn export_absorb_round_trips() {
        let cache = CompareCache::new();
        let full = RuleSet::full();
        cache.insert(key(10, 20, Mode::Equivalence, &full), Verdict::Match);
        cache.insert(
            key(30, 40, Mode::Subtype, &full),
            Verdict::Mismatch {
                reason: "kind mismatch: Integer vs Real".into(),
                depth: 3,
            },
        );
        let exported = cache.export();
        assert_eq!(exported.len(), 2);

        let warm = CompareCache::new();
        assert_eq!(warm.absorb(exported.clone()), 2);
        assert_eq!(warm.export(), exported, "round trip is lossless");
        assert_eq!(
            warm.lookup(&key(30, 40, Mode::Subtype, &full)),
            Some(Verdict::Mismatch {
                reason: "kind mismatch: Integer vs Real".into(),
                depth: 3
            })
        );
    }

    #[test]
    fn correspondence_reuse_requires_matching_snapshot() {
        let cache = CompareCache::new();
        let full = RuleSet::full();
        let k = key(7, 7, Mode::Equivalence, &full);
        let mut g = mockingbird_mtype::MtypeGraph::new();
        let (lid, rid) = (g.unit(), g.dynamic());
        let corr = Arc::new(Correspondence {
            left_root: lid,
            right_root: rid,
            entries: HashMap::new(),
        });
        cache.insert_correspondence(k, 100, 100, corr.clone());
        assert!(cache
            .lookup_correspondence(&k, 100, 100, corr.left_root, corr.right_root)
            .is_some());
        assert!(
            cache
                .lookup_correspondence(&k, 101, 100, corr.left_root, corr.right_root)
                .is_none(),
            "a different graph uid must not reuse graph-local ids"
        );
        assert!(cache
            .lookup_correspondence(&k, 100, 100, corr.right_root, corr.left_root)
            .is_none());
        assert_eq!(cache.stats().corr_hits, 1);
    }
}
