//! Property-style tests: random Mtypes, shuffled/regrouped variants, and
//! perturbations, driven by a deterministic seeded RNG so failures
//! replay exactly.

use mockingbird_rng::StdRng;

use mockingbird_mtype::{IntRange, MtypeGraph, MtypeId, RealPrecision, Repertoire};

use crate::compare::Comparer;
use crate::rules::RuleSet;

/// A deterministic recipe for an Mtype plus the ability to build a
/// shuffled-and-regrouped isomorphic variant.
#[derive(Debug, Clone)]
enum Recipe {
    Int(u8),
    Char(u8),
    Real(bool),
    Record(Vec<Recipe>),
    Choice(Vec<Recipe>),
    List(Box<Recipe>),
    Port(Box<Recipe>),
}

fn build(g: &mut MtypeGraph, r: &Recipe) -> MtypeId {
    match r {
        Recipe::Int(bits) => g.integer(IntRange::signed_bits(u32::from(*bits) % 31 + 1)),
        Recipe::Char(sel) => g.character(match sel % 3 {
            0 => Repertoire::Ascii,
            1 => Repertoire::Latin1,
            _ => Repertoire::Unicode,
        }),
        Recipe::Real(d) => g.real(if *d {
            RealPrecision::DOUBLE
        } else {
            RealPrecision::SINGLE
        }),
        Recipe::Record(cs) => {
            let kids = cs.iter().map(|c| build(g, c)).collect();
            g.record(kids)
        }
        Recipe::Choice(cs) => {
            let kids = cs.iter().map(|c| build(g, c)).collect();
            g.choice(kids)
        }
        Recipe::List(e) => {
            let elem = build(g, e);
            g.list_of(elem)
        }
        Recipe::Port(e) => {
            let p = build(g, e);
            g.port(p)
        }
    }
}

/// Builds an isomorphic variant: record children reversed and regrouped
/// pairwise, choice children reversed.
fn build_variant(g: &mut MtypeGraph, r: &Recipe) -> MtypeId {
    match r {
        Recipe::Record(cs) if cs.len() >= 2 => {
            let mut kids: Vec<MtypeId> = cs.iter().rev().map(|c| build_variant(g, c)).collect();
            // Regroup the first two into a nested record (associativity).
            let first_two = vec![kids.remove(0), kids.remove(0)];
            let grouped = g.record(first_two);
            let mut out = vec![grouped];
            out.extend(kids);
            g.record(out)
        }
        Recipe::Choice(cs) if cs.len() >= 2 => {
            let kids: Vec<MtypeId> = cs.iter().rev().map(|c| build_variant(g, c)).collect();
            g.choice(kids)
        }
        Recipe::Record(cs) => {
            let kids = cs.iter().map(|c| build_variant(g, c)).collect();
            g.record(kids)
        }
        Recipe::Choice(cs) => {
            let kids = cs.iter().map(|c| build_variant(g, c)).collect();
            g.choice(kids)
        }
        Recipe::List(e) => {
            let elem = build_variant(g, e);
            g.list_of(elem)
        }
        Recipe::Port(e) => {
            let p = build_variant(g, e);
            g.port(p)
        }
        leaf => build(g, leaf),
    }
}

/// A perturbed (non-isomorphic) variant: appends an extra boolean leaf to
/// the outermost record, or wraps a leaf in a record with an extra leaf.
fn build_perturbed(g: &mut MtypeGraph, r: &Recipe) -> MtypeId {
    match r {
        Recipe::Record(cs) => {
            let mut kids: Vec<MtypeId> = cs.iter().map(|c| build(g, c)).collect();
            let extra = g.integer(IntRange::boolean());
            kids.push(extra);
            g.record(kids)
        }
        other => {
            let base = build(g, other);
            let extra = g.integer(IntRange::boolean());
            g.record(vec![base, extra])
        }
    }
}

fn random_leaf(rng: &mut StdRng) -> Recipe {
    match rng.gen_range(0..3) {
        0 => Recipe::Int(rng.gen_range(0u8..=255)),
        1 => Recipe::Char(rng.gen_range(0u8..=255)),
        _ => Recipe::Real(rng.gen_bool(0.5)),
    }
}

fn random_recipe(rng: &mut StdRng, depth: usize) -> Recipe {
    if depth == 0 {
        return random_leaf(rng);
    }
    match rng.gen_range(0..5) {
        0 => {
            let n = rng.gen_range(0..4);
            Recipe::Record((0..n).map(|_| random_recipe(rng, depth - 1)).collect())
        }
        1 => {
            let n = rng.gen_range(1..4);
            Recipe::Choice((0..n).map(|_| random_recipe(rng, depth - 1)).collect())
        }
        2 => Recipe::List(Box::new(random_recipe(rng, depth - 1))),
        3 => Recipe::Port(Box::new(random_recipe(rng, depth - 1))),
        _ => random_leaf(rng),
    }
}

fn for_recipes(cases: u64, mut prop: impl FnMut(&Recipe)) {
    for seed in 0..cases {
        let mut rng = StdRng::seed_from_u64(seed);
        let depth = rng.gen_range(1usize..=3);
        let recipe = random_recipe(&mut rng, depth);
        prop(&recipe);
    }
}

#[test]
fn equivalence_is_reflexive() {
    for_recipes(64, |recipe| {
        let mut g = MtypeGraph::new();
        let a = build(&mut g, recipe);
        assert!(Comparer::new(&g, &g).equivalent(a, a));
        assert!(Comparer::with_rules(&g, &g, RuleSet::strict()).equivalent(a, a));
    });
}

#[test]
fn shuffled_regrouped_variant_stays_equivalent() {
    for_recipes(64, |recipe| {
        let mut g1 = MtypeGraph::new();
        let a = build(&mut g1, recipe);
        let mut g2 = MtypeGraph::new();
        let b = build_variant(&mut g2, recipe);
        assert!(
            Comparer::new(&g1, &g2).equivalent(a, b),
            "variant of {recipe:?} should match"
        );
    });
}

#[test]
fn equivalence_is_symmetric() {
    for_recipes(64, |recipe| {
        let mut g1 = MtypeGraph::new();
        let a = build(&mut g1, recipe);
        let mut g2 = MtypeGraph::new();
        let b = build_variant(&mut g2, recipe);
        let ab = Comparer::new(&g1, &g2).equivalent(a, b);
        let ba = Comparer::new(&g2, &g1).equivalent(b, a);
        assert_eq!(ab, ba);
    });
}

#[test]
fn perturbed_variant_is_rejected() {
    for_recipes(64, |recipe| {
        let mut g1 = MtypeGraph::new();
        let a = build(&mut g1, recipe);
        let mut g2 = MtypeGraph::new();
        let b = build_perturbed(&mut g2, recipe);
        assert!(
            !Comparer::new(&g1, &g2).equivalent(a, b),
            "perturbed variant of {recipe:?} must not match"
        );
    });
}

#[test]
fn equivalence_implies_mutual_subtyping() {
    for_recipes(64, |recipe| {
        let mut g1 = MtypeGraph::new();
        let a = build(&mut g1, recipe);
        let mut g2 = MtypeGraph::new();
        let b = build_variant(&mut g2, recipe);
        if Comparer::new(&g1, &g2).equivalent(a, b) {
            assert!(Comparer::new(&g1, &g2).subtype(a, b));
            assert!(Comparer::new(&g2, &g1).subtype(b, a));
        }
    });
}

#[test]
fn subtype_is_reflexive() {
    for_recipes(64, |recipe| {
        let mut g = MtypeGraph::new();
        let a = build(&mut g, recipe);
        assert!(Comparer::new(&g, &g).subtype(a, a));
    });
}

/// Asserts that a shared [`CompareCache`](crate::cache::CompareCache)
/// never changes an outcome: the uncached verdict, the cache-miss
/// verdict and the cache-hit verdict (a second comparer over the same
/// cache) must agree, down to mismatch reason and depth.
fn assert_cache_transparent(
    left: &MtypeGraph,
    right: &MtypeGraph,
    a: MtypeId,
    b: MtypeId,
    rules: &RuleSet,
    mode: crate::compare::Mode,
) {
    use std::sync::Arc;

    use crate::cache::CompareCache;

    let uncached = Comparer::with_rules(left, right, rules.clone()).compare(a, b, mode);
    let cache = Arc::new(CompareCache::new());
    let miss = Comparer::with_rules(left, right, rules.clone())
        .with_shared_cache(cache.clone())
        .compare(a, b, mode);
    let after_miss = cache.stats();
    let hit = Comparer::with_rules(left, right, rules.clone())
        .with_shared_cache(cache.clone())
        .compare(a, b, mode);
    let after_hit = cache.stats();

    for (label, got) in [("miss", &miss), ("hit", &hit)] {
        assert_eq!(
            uncached.is_ok(),
            got.is_ok(),
            "cache {label} flipped the verdict under {rules:?} {mode:?}"
        );
        if let (Err(want), Err(have)) = (&uncached, got) {
            assert_eq!(want.reason, have.reason, "cache {label} changed the reason");
            assert_eq!(want.depth, have.depth, "cache {label} changed the depth");
        }
    }
    // The first run populates the cache (unless the verdict was a
    // non-cacheable budget exhaustion); the second must then consume it.
    if after_miss.inserts > 0 {
        assert!(
            after_hit.hits > after_miss.hits,
            "second run did not hit the shared cache"
        );
    }
}

#[test]
fn shared_cache_is_transparent_for_matching_pairs() {
    use crate::compare::Mode;
    for_recipes(48, |recipe| {
        let mut g1 = MtypeGraph::new();
        let a = build(&mut g1, recipe);
        let mut g2 = MtypeGraph::new();
        let b = build_variant(&mut g2, recipe);
        for rules in [RuleSet::full(), RuleSet::strict()] {
            for mode in [Mode::Equivalence, Mode::Subtype] {
                assert_cache_transparent(&g1, &g2, a, b, &rules, mode);
            }
        }
    });
}

#[test]
fn shared_cache_is_transparent_for_mismatching_pairs() {
    use crate::compare::Mode;
    for_recipes(48, |recipe| {
        let mut g1 = MtypeGraph::new();
        let a = build(&mut g1, recipe);
        let mut g2 = MtypeGraph::new();
        let b = build_perturbed(&mut g2, recipe);
        for rules in [RuleSet::full(), RuleSet::strict()] {
            for mode in [Mode::Equivalence, Mode::Subtype] {
                assert_cache_transparent(&g1, &g2, a, b, &rules, mode);
            }
        }
    });
}

#[test]
fn cache_keys_do_not_collide_across_rule_sets_or_modes() {
    use std::sync::Arc;

    use crate::cache::CompareCache;
    use crate::compare::Mode;

    // A pair that matches under the full rules but not the strict ones:
    // nested vs flat record grouping.
    let mut g1 = MtypeGraph::new();
    let i = g1.integer(IntRange::signed_bits(16));
    let c = g1.character(Repertoire::Ascii);
    let r = g1.real(RealPrecision::DOUBLE);
    let flat = g1.record(vec![i, c, r]);
    let mut g2 = MtypeGraph::new();
    let i2 = g2.integer(IntRange::signed_bits(16));
    let c2 = g2.character(Repertoire::Ascii);
    let r2 = g2.real(RealPrecision::DOUBLE);
    let head = g2.record(vec![i2, c2]);
    let nested = g2.record(vec![head, r2]);

    let cache = Arc::new(CompareCache::new());
    // Warm the cache under the full rules, both modes.
    for mode in [Mode::Equivalence, Mode::Subtype] {
        assert!(Comparer::new(&g1, &g2)
            .with_shared_cache(cache.clone())
            .compare(flat, nested, mode)
            .is_ok());
    }
    // The strict comparer shares the cache object but must not see those
    // verdicts: its rule-set fingerprint (and rule-relative canonical
    // fingerprints) key different entries, so it still rejects the pair.
    for mode in [Mode::Equivalence, Mode::Subtype] {
        assert!(
            Comparer::with_rules(&g1, &g2, RuleSet::strict())
                .with_shared_cache(cache.clone())
                .compare(flat, nested, mode)
                .is_err(),
            "strict comparer consumed a full-rules verdict via the shared cache"
        );
    }
}

#[test]
fn strict_rules_accept_identical_construction() {
    for_recipes(64, |recipe| {
        let mut g1 = MtypeGraph::new();
        let a = build(&mut g1, recipe);
        let mut g2 = MtypeGraph::new();
        let b = build(&mut g2, recipe);
        assert!(Comparer::with_rules(&g1, &g2, RuleSet::strict()).equivalent(a, b));
    });
}
