//! Mismatch diagnostics.
//!
//! Paper §6: "Mockingbird ... needs more sophisticated diagnostics that
//! will aid a programmer in isolating mismatches between types." A
//! [`Mismatch`] reports the deepest failing sub-comparison together with
//! per-kind node summaries of both sides, which is usually enough to see
//! *which* annotation is missing (the iterative annotate-compare loop of
//! Fig. 6).

use std::fmt;

use mockingbird_mtype::canon::MtypeSummary;

/// Why and where a comparison failed.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Human-readable description of the deepest failing sub-comparison.
    pub reason: String,
    /// Depth (in nested constructors) at which the failure occurred.
    pub depth: usize,
    /// Rendering of the left root Mtype.
    pub left_display: String,
    /// Rendering of the right root Mtype.
    pub right_display: String,
    /// Node-kind census of the left Mtype.
    pub left_summary: MtypeSummary,
    /// Node-kind census of the right Mtype.
    pub right_summary: MtypeSummary,
}

impl Mismatch {
    /// A one-line hint comparing the two summaries, e.g.
    /// `"left has 3 Real leaves, right has 4"`.
    pub fn census_hint(&self) -> Option<String> {
        let l = &self.left_summary;
        let r = &self.right_summary;
        let checks = [
            (l.integers, r.integers, "Integer"),
            (l.characters, r.characters, "Character"),
            (l.reals, r.reals, "Real"),
            (l.ports, r.ports, "Port"),
            (l.recursives, r.recursives, "Recursive"),
        ];
        for (a, b, name) in checks {
            if a != b {
                return Some(format!("left has {a} {name} node(s), right has {b}"));
            }
        }
        None
    }
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "types do not match: {}", self.reason)?;
        writeln!(f, "  left:  {}", self.left_display)?;
        write!(f, "  right: {}", self.right_display)?;
        if let Some(hint) = self.census_hint() {
            write!(f, "\n  hint: {hint}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Mismatch {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_hint_spots_leaf_count_differences() {
        let l = MtypeSummary {
            reals: 3,
            ..MtypeSummary::default()
        };
        let r = MtypeSummary {
            reals: 4,
            ..MtypeSummary::default()
        };
        let m = Mismatch {
            reason: "x".into(),
            depth: 2,
            left_display: "L".into(),
            right_display: "R".into(),
            left_summary: l,
            right_summary: r,
        };
        assert_eq!(
            m.census_hint().unwrap(),
            "left has 3 Real node(s), right has 4"
        );
        let shown = m.to_string();
        assert!(shown.contains("types do not match"));
        assert!(shown.contains("hint"));
    }

    #[test]
    fn no_hint_when_censuses_agree() {
        let m = Mismatch {
            reason: "x".into(),
            depth: 0,
            left_display: "L".into(),
            right_display: "R".into(),
            left_summary: MtypeSummary::default(),
            right_summary: MtypeSummary::default(),
        };
        assert!(m.census_hint().is_none());
    }
}
