//! The comparison algorithm: Amadio–Cardelli coinduction plus
//! isomorphism rules.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use mockingbird_mtype::canon::{fingerprint, Canonizer, MtypeSummary};
use mockingbird_mtype::{MtypeGraph, MtypeId, MtypeKind};

use crate::cache::{CacheKey, CompareCache, Verdict};
use crate::correspondence::{Correspondence, Entry, PrimCoercion, RecordFlatten};
use crate::diagnose::Mismatch;
use crate::rules::RuleSet;

/// The relation being decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Two-way convertibility: the Mtypes are isomorphic.
    Equivalence,
    /// One-way convertibility: left is a subtype of right.
    Subtype,
}

/// The internal relation, tracking contravariant flips at Ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Rel {
    Eq,
    /// left ≤ right
    Sub,
    /// left ≥ right
    Sup,
}

impl Rel {
    fn flip(self) -> Rel {
        match self {
            Rel::Eq => Rel::Eq,
            Rel::Sub => Rel::Sup,
            Rel::Sup => Rel::Sub,
        }
    }
}

/// No coinductive assumption was used (an unconditional proof).
const NO_DEP: usize = usize::MAX;

/// Proof state that stays valid across `compare()` calls on the same
/// graph pair: proven/disproven pairs, fingerprints, record views.
/// Reusing one [`Comparer`] across many comparisons over a shared
/// declaration corpus (the batch pipelines of §5) amortises the whole
/// corpus proof to roughly linear total work.
#[derive(Default)]
struct Cache {
    /// Unconditionally proven pairs.
    proved: HashSet<(MtypeId, MtypeId, Rel)>,
    /// Structurally disproven pairs. Failures are monotone — extra
    /// coinductive assumptions can only create successes — so a failure
    /// observed under any assumption set holds absolutely.
    disproved: HashSet<(MtypeId, MtypeId, Rel)>,
    lfp: HashMap<MtypeId, u64>,
    rfp: HashMap<MtypeId, u64>,
    lviews: HashMap<MtypeId, std::rc::Rc<Vec<MtypeId>>>,
    rviews: HashMap<MtypeId, std::rc::Rc<Vec<MtypeId>>>,
}

/// Compares Mtypes from a left and a right graph (which may be the same
/// graph) under a [`RuleSet`].
pub struct Comparer<'l, 'r> {
    left: &'l MtypeGraph,
    right: &'r MtypeGraph,
    rules: RuleSet,
    cache: std::cell::RefCell<Cache>,
    /// Pairs the programmer declared semantically interconvertible
    /// (paper §6): the comparer accepts them as axioms and records
    /// [`Entry::Semantic`]; the coercion plan supplies the hand-written
    /// converter.
    semantic_bridges: HashSet<(MtypeId, MtypeId)>,
    /// Cross-comparer verdict/correspondence memo, consulted before any
    /// structural work. `None` keeps the historical one-shot behaviour.
    shared: Option<Arc<CompareCache>>,
    /// Per-side canonical-fingerprint engines backing `shared_key`:
    /// incremental, so keying many roots of one graph shares all common
    /// substructure. Lazily built — comparers without a shared cache
    /// never pay for them.
    lcanon: std::cell::RefCell<Option<Canonizer<'l>>>,
    rcanon: std::cell::RefCell<Option<Canonizer<'r>>>,
}

impl<'l, 'r> Comparer<'l, 'r> {
    /// A comparer with the paper's full rule set.
    pub fn new(left: &'l MtypeGraph, right: &'r MtypeGraph) -> Self {
        Self::with_rules(left, right, RuleSet::full())
    }

    /// A comparer with an explicit rule set (used by the ablation study).
    pub fn with_rules(left: &'l MtypeGraph, right: &'r MtypeGraph, rules: RuleSet) -> Self {
        Comparer {
            left,
            right,
            rules,
            cache: std::cell::RefCell::new(Cache::default()),
            semantic_bridges: HashSet::new(),
            shared: None,
            lcanon: std::cell::RefCell::new(None),
            rcanon: std::cell::RefCell::new(None),
        }
    }

    /// Attaches a shared [`CompareCache`]: verdicts (and, for holders of
    /// the same graph snapshots, correspondences) are looked up by
    /// canonical fingerprint before any structural comparison runs, and
    /// published afterwards. The cache is consulted only while no
    /// semantic bridges are declared — bridged verdicts are not
    /// structural facts and must not leak to comparers without the same
    /// bridges.
    pub fn with_shared_cache(mut self, cache: Arc<CompareCache>) -> Self {
        self.shared = Some(cache);
        self
    }

    /// Declares a semantic bridge: the (resolved) pair is accepted as
    /// matched without structural comparison, on the promise that the
    /// coercion plan will carry a hand-written converter for it
    /// (paper §6: "the programmer wishes to convert between the two
    /// representations ... hand-written conversions which are then
    /// integrated with the automated structural ones").
    pub fn with_semantic_bridge(mut self, left: MtypeId, right: MtypeId) -> Self {
        let l = Ctx::resolve(self.left, &self.rules, left);
        let r = Ctx::resolve(self.right, &self.rules, right);
        self.semantic_bridges.insert((l, r));
        self
    }

    /// Decides whether `lroot` (in the left graph) and `rroot` (in the
    /// right graph) are related under `mode`, returning the
    /// [`Correspondence`] on success.
    ///
    /// # Errors
    ///
    /// Returns a [`Mismatch`] describing the deepest failing
    /// sub-comparison when the types are not related (or when the
    /// comparer's documented incompleteness prevents it from proving
    /// that they are).
    #[allow(clippy::result_large_err)] // Mismatch carries full diagnostics by design
    pub fn compare(
        &self,
        lroot: MtypeId,
        rroot: MtypeId,
        mode: Mode,
    ) -> Result<Correspondence, Mismatch> {
        self.compare_arc(lroot, rroot, mode).map(|c| (*c).clone())
    }

    /// As [`compare`](Comparer::compare), but returning the
    /// [`Correspondence`] behind an `Arc` so shared-cache hits avoid
    /// cloning it. The batch compiler builds its `CoercionPlan`s from
    /// this entry point.
    ///
    /// # Errors
    ///
    /// As [`compare`](Comparer::compare).
    #[allow(clippy::result_large_err)]
    pub fn compare_arc(
        &self,
        lroot: MtypeId,
        rroot: MtypeId,
        mode: Mode,
    ) -> Result<Arc<Correspondence>, Mismatch> {
        // Semantic bridges make verdicts non-structural; bypass the
        // shared cache entirely in their presence.
        let Some(shared) = self
            .shared
            .as_ref()
            .filter(|_| self.semantic_bridges.is_empty())
        else {
            return self.run(lroot, rroot, mode).0.map(Arc::new);
        };
        let key = self.shared_key(lroot, rroot, mode);
        match shared.lookup(&key) {
            Some(Verdict::Mismatch { reason, depth }) => {
                // Resynthesize a diagnosis identical to the original
                // run's (displays and summaries are pure functions of the
                // roots; reason and depth come from the cache).
                Err(Mismatch {
                    reason,
                    depth,
                    left_display: self.left.display_capped(lroot, 640),
                    right_display: self.right.display_capped(rroot, 640),
                    left_summary: MtypeSummary::of(self.left, lroot),
                    right_summary: MtypeSummary::of(self.right, rroot),
                })
            }
            Some(Verdict::Match) => {
                if let Some(corr) = shared.lookup_correspondence(
                    &key,
                    self.left.uid(),
                    self.right.uid(),
                    lroot,
                    rroot,
                ) {
                    return Ok(corr);
                }
                // Verdict known, correspondence not transferable (other
                // graph snapshot): re-derive and publish it. If the live
                // run somehow disagrees with the cache, trust the run.
                let (res, _) = self.run(lroot, rroot, mode);
                res.map(|corr| {
                    let corr = Arc::new(corr);
                    shared.insert_correspondence(
                        key,
                        self.left.uid(),
                        self.right.uid(),
                        corr.clone(),
                    );
                    corr
                })
            }
            None => {
                let (res, budget_exhausted) = self.run(lroot, rroot, mode);
                match res {
                    Ok(corr) => {
                        let corr = Arc::new(corr);
                        shared.insert(key, Verdict::Match);
                        shared.insert_correspondence(
                            key,
                            self.left.uid(),
                            self.right.uid(),
                            corr.clone(),
                        );
                        Ok(corr)
                    }
                    Err(m) => {
                        // Budget-exhaustion failures are resource
                        // artifacts, not semantic facts (mirrors the
                        // internal negative-cache suppression).
                        if !budget_exhausted {
                            shared.insert(
                                key,
                                Verdict::Mismatch {
                                    reason: m.reason.clone(),
                                    depth: m.depth,
                                },
                            );
                        }
                        Err(m)
                    }
                }
            }
        }
    }

    /// The shared-cache key of a root pair under this comparer's rules:
    /// rule-relative canonical fingerprints plus the rule-set digest.
    fn shared_key(&self, lroot: MtypeId, rroot: MtypeId, mode: Mode) -> CacheKey {
        let opts = self.rules.canon_opts();
        let left_fp = self
            .lcanon
            .borrow_mut()
            .get_or_insert_with(|| Canonizer::new(self.left, opts))
            .fingerprint(lroot);
        // Session/batch comparers compare within one snapshot; ids are
        // graph-local, so when both sides are literally the same graph
        // the left engine (and its memoised tables) serves both.
        let same_graph = std::ptr::eq(
            std::ptr::from_ref(self.left).cast::<u8>(),
            std::ptr::from_ref(self.right).cast::<u8>(),
        );
        let right_fp = if same_graph {
            self.lcanon
                .borrow_mut()
                .as_mut()
                .expect("left engine initialised above")
                .fingerprint(rroot)
        } else {
            self.rcanon
                .borrow_mut()
                .get_or_insert_with(|| Canonizer::new(self.right, opts))
                .fingerprint(rroot)
        };
        CacheKey {
            left_fp,
            right_fp,
            mode,
            rules_fp: self.rules.fingerprint(),
        }
    }

    /// One full structural comparison; also reports whether the search
    /// budget ran out (failures under exhaustion are not cacheable).
    #[allow(clippy::result_large_err)]
    fn run(
        &self,
        lroot: MtypeId,
        rroot: MtypeId,
        mode: Mode,
    ) -> (Result<Correspondence, Mismatch>, bool) {
        let mut cache = self.cache.borrow_mut();
        let mut ctx = Ctx {
            l: self.left,
            r: self.right,
            rules: &self.rules,
            semantic_bridges: &self.semantic_bridges,
            fp_exact: self.rules.fingerprint_filter && self.semantic_bridges.is_empty(),
            stack: Vec::new(),
            stack_index: HashMap::new(),
            cache: &mut cache,
            cond_proved: HashMap::new(),
            budget_exhausted: false,
            entries: HashMap::new(),
            deepest_fail: None,
            budget: self.rules.search_budget,
        };
        let rel = match mode {
            Mode::Equivalence => Rel::Eq,
            Mode::Subtype => Rel::Sub,
        };
        let outcome = ctx.check(lroot, rroot, rel, 0);
        let budget_exhausted = ctx.budget_exhausted;
        let res = match outcome {
            Ok(_) => Ok(Correspondence {
                left_root: lroot,
                right_root: rroot,
                entries: ctx.entries,
            }),
            Err(()) => {
                let (depth, reason) = ctx
                    .deepest_fail
                    .unwrap_or((0, "no structural match found".to_string()));
                Err(Mismatch {
                    reason,
                    depth,
                    left_display: self.left.display_capped(lroot, 640),
                    right_display: self.right.display_capped(rroot, 640),
                    left_summary: MtypeSummary::of(self.left, lroot),
                    right_summary: MtypeSummary::of(self.right, rroot),
                })
            }
        };
        (res, budget_exhausted)
    }

    /// Convenience: are the two Mtypes equivalent?
    pub fn equivalent(&self, lroot: MtypeId, rroot: MtypeId) -> bool {
        self.compare(lroot, rroot, Mode::Equivalence).is_ok()
    }

    /// Convenience: is the left Mtype a subtype of the right?
    pub fn subtype(&self, lroot: MtypeId, rroot: MtypeId) -> bool {
        self.compare(lroot, rroot, Mode::Subtype).is_ok()
    }
}

/// Resolves through `Recursive` binders and (when the rule set enables
/// it) transparent singleton Choices — the same node normalisation the
/// comparer applies before recording [`Correspondence`] entries. The
/// coercion-plan interpreter uses this to look entries up consistently.
pub fn resolve_transparent(graph: &MtypeGraph, rules: &RuleSet, id: MtypeId) -> MtypeId {
    Ctx::resolve(graph, rules, id)
}

struct Ctx<'a> {
    l: &'a MtypeGraph,
    r: &'a MtypeGraph,
    rules: &'a RuleSet,
    semantic_bridges: &'a HashSet<(MtypeId, MtypeId)>,
    /// Whether fingerprints may be used as an *exact* rejection filter.
    /// Semantic bridges make structurally different pairs matchable, so
    /// their presence demotes fingerprints to a heuristic.
    fp_exact: bool,
    /// Stack of in-progress (coinductive) assumptions.
    stack: Vec<(MtypeId, MtypeId, Rel)>,
    stack_index: HashMap<(MtypeId, MtypeId, Rel), usize>,
    /// Persistent proof state shared across runs (see [`Cache`]).
    cache: &'a mut Cache,
    /// Pairs proven *conditionally* on the coinductive assumption at the
    /// stored stack index. Without this cache, strongly-connected
    /// declaration graphs recompute shared pairs exponentially within a
    /// single proof. Entries are promoted to `proved` when their
    /// assumption is discharged, re-tagged when it is itself conditional,
    /// and discarded when it fails.
    cond_proved: HashMap<(MtypeId, MtypeId, Rel), usize>,
    /// Set when the search budget ran out; suppresses negative caching
    /// from that point (those failures are resource artifacts).
    budget_exhausted: bool,
    entries: HashMap<(MtypeId, MtypeId), Entry>,
    deepest_fail: Option<(usize, String)>,
    budget: usize,
}

impl Ctx<'_> {
    fn fail(&mut self, depth: usize, reason: String) -> Result<usize, ()> {
        match &self.deepest_fail {
            Some((d, _)) if *d >= depth => {}
            _ => self.deepest_fail = Some((depth, reason)),
        }
        Err(())
    }

    fn fp_left(&mut self, id: MtypeId) -> u64 {
        if let Some(&h) = self.cache.lfp.get(&id) {
            return h;
        }
        let h = fingerprint(self.l, id);
        self.cache.lfp.insert(id, h);
        h
    }

    fn fp_right(&mut self, id: MtypeId) -> u64 {
        if let Some(&h) = self.cache.rfp.get(&id) {
            return h;
        }
        let h = fingerprint(self.r, id);
        self.cache.rfp.insert(id, h);
        h
    }

    /// Resolves through `Recursive` binders and (when enabled) transparent
    /// singleton Choices.
    fn resolve(graph: &MtypeGraph, rules: &RuleSet, id: MtypeId) -> MtypeId {
        let mut cur = graph.resolve(id);
        if !rules.singleton_choice {
            return cur;
        }
        let mut hops = 0usize;
        while let MtypeKind::Choice(_) = graph.kind(cur) {
            let alts = if rules.assoc {
                mockingbird_mtype::canon::flatten_choice(graph, cur)
            } else {
                graph.kind(cur).children().to_vec()
            };
            if alts.len() != 1 || alts[0] == cur {
                break;
            }
            cur = graph.resolve(alts[0]);
            hops += 1;
            if hops > graph.len() {
                break;
            }
        }
        cur
    }

    /// The coinductive entry point. Returns the smallest stack index of
    /// any assumption the proof depended on ([`NO_DEP`] if none).
    fn check(&mut self, a: MtypeId, b: MtypeId, rel: Rel, depth: usize) -> Result<usize, ()> {
        if depth > 10_000 {
            return self.fail(depth, "recursion limit exceeded".into());
        }
        let a = Self::resolve(self.l, self.rules, a);
        let b = Self::resolve(self.r, self.rules, b);
        let key = (a, b, rel);
        if self.semantic_bridges.contains(&(a, b)) {
            // Programmer-declared bridge: matched by fiat, converter
            // supplied out of band.
            self.entries.insert((a, b), Entry::Semantic);
            return Ok(NO_DEP);
        }
        if self.cache.proved.contains(&key) {
            return Ok(NO_DEP);
        }
        if self.cache.disproved.contains(&key) {
            // Cheap failure: diagnostics were produced when the pair was
            // first disproven.
            match &self.deepest_fail {
                Some((d, _)) if *d >= depth => {}
                _ => self.deepest_fail = Some((depth, "pair already disproven".to_string())),
            }
            return Err(());
        }
        if let Some(&d) = self.cond_proved.get(&key) {
            // Proven earlier in this run, conditional on a still-active
            // ancestor assumption: reuse, propagating the dependence.
            return Ok(d);
        }
        if let Some(&i) = self.stack_index.get(&key) {
            // Coinductive hit: assume the pair holds; record dependence.
            return Ok(i);
        }
        if rel == Rel::Eq && self.fp_exact && self.fp_left(a) != self.fp_right(b) {
            return self.fail(
                depth,
                format!(
                    "structural fingerprints differ: `{}` vs `{}`",
                    self.l.display_capped(a, 320),
                    self.r.display_capped(b, 320)
                ),
            );
        }
        let my_index = self.stack.len();
        self.stack.push(key);
        self.stack_index.insert(key, my_index);
        let result = self.check_structural(a, b, rel, depth);
        self.stack.pop();
        self.stack_index.remove(&key);
        match result {
            Ok(min_dep) => {
                if min_dep >= my_index {
                    // Self-contained (possibly via its own cycle): a valid
                    // greatest-fixed-point proof. Cache unconditionally,
                    // and discharge every proof that was conditional on
                    // this assumption.
                    self.cache.proved.insert(key);
                    let mut promote = Vec::new();
                    self.cond_proved.retain(|k, d| {
                        if *d == my_index {
                            promote.push(*k);
                            false
                        } else {
                            true
                        }
                    });
                    for k in promote {
                        self.cache.proved.insert(k);
                    }
                    Ok(NO_DEP)
                } else {
                    // This proof (and everything conditional on it) is
                    // now conditional on the outer assumption.
                    for d in self.cond_proved.values_mut() {
                        if *d == my_index {
                            *d = min_dep;
                        }
                    }
                    self.cond_proved.insert(key, min_dep);
                    Ok(min_dep)
                }
            }
            Err(()) => {
                // The assumption failed: everything that relied on it is
                // unproven. The failure itself is absolute (failures are
                // monotone in the assumption set), so cache it — unless
                // the budget ran out, which is a resource artifact.
                self.cond_proved.retain(|_, d| *d != my_index);
                if !self.budget_exhausted {
                    self.cache.disproved.insert(key);
                }
                Err(())
            }
        }
    }

    fn check_structural(
        &mut self,
        a: MtypeId,
        b: MtypeId,
        rel: Rel,
        depth: usize,
    ) -> Result<usize, ()> {
        use MtypeKind::*;
        let ka = self.l.kind(a).clone();
        let kb = self.r.kind(b).clone();

        // Dynamic absorbs anything on the supertype side.
        match (&ka, &kb, rel) {
            (Dynamic, Dynamic, _) => {
                self.entries
                    .insert((a, b), Entry::Prim(PrimCoercion::Dynamic));
                return Ok(NO_DEP);
            }
            (_, Dynamic, Rel::Sub) | (Dynamic, _, Rel::Sup) => {
                self.entries
                    .insert((a, b), Entry::Prim(PrimCoercion::IntoDynamic));
                return Ok(NO_DEP);
            }
            _ => {}
        }

        // Record-view path. With associativity enabled it also engages
        // cross-kind, letting a unary Record match its single child and
        // an empty Record match Unit; under strict rules both sides must
        // be Records.
        let l_rec = matches!(ka, Record(_));
        let r_rec = matches!(kb, Record(_));
        if l_rec && r_rec {
            // One-level fast path: when neither side regrouped, the
            // direct children match under permutation without unfolding
            // the (potentially huge) transitive value structure.
            let lv1 = one_level_view(self.l, self.rules, a);
            let rv1 = one_level_view(self.r, self.rules, b);
            if lv1.len() == rv1.len() {
                let snapshot_fail = self.deepest_fail.clone();
                match self.match_records(a, b, lv1, rv1, rel, depth, RecordFlatten::OneLevel) {
                    Ok(dep) => return Ok(dep),
                    Err(()) if self.rules.assoc => {
                        // Fall through to the full-flatten view.
                        self.deepest_fail = snapshot_fail;
                    }
                    Err(()) => return Err(()),
                }
            } else if !self.rules.assoc {
                return self.fail(
                    depth,
                    format!(
                        "record arity mismatch: {} vs {} fields",
                        lv1.len(),
                        rv1.len()
                    ),
                );
            }
        }
        if self.rules.assoc && (l_rec || r_rec) {
            let lv = self.record_view_left(a);
            let rv = self.record_view_right(b);
            return self.match_records(a, b, lv, rv, rel, depth, RecordFlatten::Full);
        }

        // Choice-view path; cross-kind only with singleton-choice
        // elimination enabled (resolve() has already collapsed true
        // singletons, so cross-kind arity mismatches fail below).
        let l_ch = matches!(ka, Choice(_));
        let r_ch = matches!(kb, Choice(_));
        if (l_ch && r_ch) || (self.rules.singleton_choice && (l_ch || r_ch)) {
            let lv = self.choice_view(self.l, a);
            let rv = self.choice_view(self.r, b);
            return self.match_choices(a, b, lv, rv, rel, depth);
        }

        match (&ka, &kb) {
            (Integer(x), Integer(y)) => {
                let ok = match rel {
                    Rel::Eq => x == y,
                    Rel::Sub => x.is_subrange_of(y),
                    Rel::Sup => y.is_subrange_of(x),
                };
                if ok {
                    self.entries.insert((a, b), Entry::Prim(PrimCoercion::Int));
                    Ok(NO_DEP)
                } else {
                    self.fail(depth, format!("integer ranges incompatible: {x} vs {y}"))
                }
            }
            (Character(x), Character(y)) => {
                let ok = match rel {
                    Rel::Eq => x == y,
                    Rel::Sub => x.is_subrepertoire_of(y),
                    Rel::Sup => y.is_subrepertoire_of(x),
                };
                if ok {
                    self.entries.insert((a, b), Entry::Prim(PrimCoercion::Char));
                    Ok(NO_DEP)
                } else {
                    self.fail(
                        depth,
                        format!("character repertoires incompatible: {x} vs {y}"),
                    )
                }
            }
            (Real(x), Real(y)) => {
                let ok = match rel {
                    Rel::Eq => x == y,
                    Rel::Sub => x.fits_in(y),
                    Rel::Sup => y.fits_in(x),
                };
                if ok {
                    let widen = y.mantissa_bits > x.mantissa_bits;
                    self.entries
                        .insert((a, b), Entry::Prim(PrimCoercion::Real { widen }));
                    Ok(NO_DEP)
                } else {
                    self.fail(depth, format!("real precisions incompatible: {x} vs {y}"))
                }
            }
            (Unit, Unit) => {
                self.entries.insert((a, b), Entry::Prim(PrimCoercion::Unit));
                Ok(NO_DEP)
            }
            (Port(x), Port(y)) => {
                // Ports are contravariant in their payload: a port
                // accepting τ serves wherever a port accepting σ ≤ τ is
                // expected.
                let dep = self.check(*x, *y, rel.flip(), depth + 1)?;
                self.entries.insert(
                    (a, b),
                    Entry::Port {
                        left_payload: *x,
                        right_payload: *y,
                    },
                );
                Ok(dep)
            }
            _ => self.fail(
                depth,
                format!("kind mismatch: {} vs {}", ka.tag(), kb.tag()),
            ),
        }
    }

    fn record_view_left(&mut self, id: MtypeId) -> Vec<MtypeId> {
        if let Some(v) = self.cache.lviews.get(&id) {
            return v.as_ref().clone();
        }
        let v = std::rc::Rc::new(Self::record_view_of(self.l, self.rules, id));
        self.cache.lviews.insert(id, v.clone());
        v.as_ref().clone()
    }

    fn record_view_right(&mut self, id: MtypeId) -> Vec<MtypeId> {
        if let Some(v) = self.cache.rviews.get(&id) {
            return v.as_ref().clone();
        }
        let v = std::rc::Rc::new(Self::record_view_of(self.r, self.rules, id));
        self.cache.rviews.insert(id, v.clone());
        v.as_ref().clone()
    }

    /// The flattened children a node contributes to a Record match.
    fn record_view_of(graph: &MtypeGraph, rules: &RuleSet, id: MtypeId) -> Vec<MtypeId> {
        match graph.kind(id) {
            MtypeKind::Record(cs) => {
                if rules.assoc {
                    // canon's flattening is binder-transparent and
                    // cycle-aware, matching the full rule set.
                    if rules.unit_elim {
                        mockingbird_mtype::canon::flatten_record(graph, id)
                    } else {
                        mockingbird_mtype::canon::flatten_record_keep_units(graph, id)
                    }
                } else if rules.unit_elim {
                    cs.iter()
                        .copied()
                        .filter(|&c| !matches!(graph.kind(graph.resolve(c)), MtypeKind::Unit))
                        .collect()
                } else {
                    cs.clone()
                }
            }
            MtypeKind::Unit if rules.unit_elim => vec![],
            _ => vec![id],
        }
    }

    /// The flattened alternatives a node contributes to a Choice match.
    fn choice_view(&self, graph: &MtypeGraph, id: MtypeId) -> Vec<MtypeId> {
        match graph.kind(id) {
            MtypeKind::Choice(cs) => {
                if self.rules.assoc {
                    mockingbird_mtype::canon::flatten_choice(graph, id)
                } else {
                    cs.clone()
                }
            }
            _ => vec![id],
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn match_records(
        &mut self,
        a: MtypeId,
        b: MtypeId,
        lv: Vec<MtypeId>,
        rv: Vec<MtypeId>,
        rel: Rel,
        depth: usize,
        policy: RecordFlatten,
    ) -> Result<usize, ()> {
        if lv.len() != rv.len() {
            return self.fail(
                depth,
                format!("record arity mismatch: {} vs {} fields", lv.len(), rv.len()),
            );
        }
        let n = rv.len();
        let mut perm = vec![usize::MAX; n];
        let min_dep = if self.rules.comm {
            // Fast path (equivalence with exact fingerprint grouping):
            // greedily pair each right child with an unused left child of
            // the same fingerprint; any pairing within a fingerprint class
            // is valid unless a hash collision slips through, in which
            // case fall back to backtracking search.
            let greedy = if rel == Rel::Eq && self.fp_exact {
                self.match_greedy(&lv, &rv, rel, depth, &mut perm)
            } else {
                None
            };
            match greedy {
                Some(dep) => dep,
                None => {
                    let mut used = vec![false; n];
                    perm.fill(usize::MAX);
                    self.match_perm(&lv, &rv, rel, depth, 0, &mut used, &mut perm)?
                }
            }
        } else {
            let mut dep = NO_DEP;
            for i in 0..n {
                dep = dep.min(self.check(lv[i], rv[i], rel, depth + 1)?);
                perm[i] = i;
            }
            dep
        };
        self.entries.insert(
            (a, b),
            Entry::Record {
                left_children: lv,
                right_children: rv,
                perm,
                policy,
            },
        );
        Ok(min_dep)
    }

    /// Greedy bijection by fingerprint class. Returns `Some(min_dep)` on
    /// success, `None` when the greedy pairing fails verification (hash
    /// collision) and backtracking must decide.
    fn match_greedy(
        &mut self,
        lv: &[MtypeId],
        rv: &[MtypeId],
        rel: Rel,
        depth: usize,
        perm: &mut [usize],
    ) -> Option<usize> {
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for (j, &l) in lv.iter().enumerate() {
            let fp = self.fp_left(l);
            buckets.entry(fp).or_default().push(j);
        }
        // Reverse so pop() hands indices out in left-to-right order.
        for b in buckets.values_mut() {
            b.reverse();
        }
        let snapshot_fail = self.deepest_fail.clone();
        let mut dep = NO_DEP;
        for (i, &r) in rv.iter().enumerate() {
            let fp = self.fp_right(r);
            let j = buckets.get_mut(&fp).and_then(Vec::pop)?;
            match self.check(lv[j], r, rel, depth + 1) {
                Ok(d) => {
                    dep = dep.min(d);
                    perm[i] = j;
                }
                Err(()) => {
                    // Collision: restore diagnostics and let the
                    // backtracking search decide.
                    self.deepest_fail = snapshot_fail;
                    return None;
                }
            }
        }
        Some(dep)
    }

    /// Backtracking bijection search: assign each right position a
    /// distinct left child, preferring fingerprint-identical candidates.
    #[allow(clippy::too_many_arguments)]
    fn match_perm(
        &mut self,
        lv: &[MtypeId],
        rv: &[MtypeId],
        rel: Rel,
        depth: usize,
        i: usize,
        used: &mut [bool],
        perm: &mut [usize],
    ) -> Result<usize, ()> {
        if i == rv.len() {
            return Ok(NO_DEP);
        }
        // Candidate ordering: same-fingerprint left children first. In
        // equivalence mode with the filter on this is exact; in subtype
        // mode it is only a heuristic.
        let target_fp = self.fp_right(rv[i]);
        let mut candidates: Vec<usize> = (0..lv.len()).filter(|&j| !used[j]).collect();
        candidates.sort_by_key(|&j| {
            let fp = self.cache.lfp.get(&lv[j]).copied();
            match fp {
                Some(h) if h == target_fp => 0,
                _ => 1,
            }
        });
        if rel == Rel::Eq && self.fp_exact {
            // Exact grouping: only fingerprint-equal children can match.
            candidates.retain(|&j| self.fp_left(lv[j]) == target_fp);
        }
        for j in candidates {
            if self.budget == 0 {
                self.budget_exhausted = true;
                return self.fail(depth, "commutative matching search budget exhausted".into());
            }
            self.budget -= 1;
            let snapshot_fail = self.deepest_fail.clone();
            match self.check(lv[j], rv[i], rel, depth + 1) {
                Ok(dep_child) => {
                    used[j] = true;
                    perm[i] = j;
                    match self.match_perm(lv, rv, rel, depth, i + 1, used, perm) {
                        Ok(dep_rest) => return Ok(dep_child.min(dep_rest)),
                        Err(()) => {
                            used[j] = false;
                            perm[i] = usize::MAX;
                        }
                    }
                }
                Err(()) => {
                    // Restore: failures inside a rejected branch are not
                    // the overall diagnosis.
                    self.deepest_fail = snapshot_fail;
                }
            }
        }
        self.fail(
            depth,
            format!(
                "no child of the left record matches right child `{}`",
                self.r.display_capped(rv[i], 240)
            ),
        )
    }

    fn match_choices(
        &mut self,
        a: MtypeId,
        b: MtypeId,
        lv: Vec<MtypeId>,
        rv: Vec<MtypeId>,
        rel: Rel,
        depth: usize,
    ) -> Result<usize, ()> {
        match rel {
            Rel::Eq => {
                if lv.len() != rv.len() {
                    return self.fail(
                        depth,
                        format!(
                            "choice arity mismatch: {} vs {} alternatives",
                            lv.len(),
                            rv.len()
                        ),
                    );
                }
                let n = rv.len();
                let mut perm = vec![usize::MAX; n];
                let min_dep = if self.rules.comm {
                    let mut used = vec![false; n];
                    self.match_perm(&lv, &rv, rel, depth, 0, &mut used, &mut perm)?
                } else {
                    let mut dep = NO_DEP;
                    for i in 0..n {
                        dep = dep.min(self.check(lv[i], rv[i], rel, depth + 1)?);
                        perm[i] = i;
                    }
                    dep
                };
                // perm maps right index -> left index; invert for alt_map
                // (left alternative -> right alternative).
                let mut alt_map = vec![usize::MAX; n];
                for (right_i, &left_j) in perm.iter().enumerate() {
                    alt_map[left_j] = right_i;
                }
                self.entries.insert(
                    (a, b),
                    Entry::Choice {
                        left_alts: lv,
                        right_alts: rv,
                        alt_map,
                    },
                );
                Ok(min_dep)
            }
            Rel::Sub | Rel::Sup => {
                // Covariant width subtyping on alternatives: every
                // alternative of the "smaller" side must convert to some
                // alternative of the larger. Alternatives are independent
                // (no bijection needed).
                let (small, large, small_is_left) = match rel {
                    Rel::Sub => (&lv, &rv, true),
                    _ => (&rv, &lv, false),
                };
                let mut map = vec![usize::MAX; small.len()];
                let mut dep = NO_DEP;
                'alts: for (i, &s) in small.iter().enumerate() {
                    for (j, &t) in large.iter().enumerate() {
                        if self.budget == 0 {
                            self.budget_exhausted = true;
                            return self
                                .fail(depth, "choice matching search budget exhausted".into());
                        }
                        self.budget -= 1;
                        let snapshot_fail = self.deepest_fail.clone();
                        let attempt = if small_is_left {
                            self.check(s, t, rel, depth + 1)
                        } else {
                            self.check(t, s, rel, depth + 1)
                        };
                        match attempt {
                            Ok(d) => {
                                dep = dep.min(d);
                                map[i] = j;
                                continue 'alts;
                            }
                            Err(()) => self.deepest_fail = snapshot_fail,
                        }
                    }
                    return self.fail(
                        depth,
                        format!(
                            "choice alternative `{}` has no counterpart",
                            if small_is_left {
                                self.l.display_capped(s, 240)
                            } else {
                                self.r.display_capped(s, 240)
                            }
                        ),
                    );
                }
                // Express alt_map uniformly as left-alt -> right-alt.
                let alt_map = if small_is_left {
                    map
                } else {
                    // map: right index -> left index; invert (may be
                    // partial on the left side: unmapped left alts keep
                    // usize::MAX, they are never produced by conversion).
                    let mut inv = vec![usize::MAX; lv.len()];
                    for (right_i, &left_j) in map.iter().enumerate() {
                        if left_j != usize::MAX {
                            inv[left_j] = right_i;
                        }
                    }
                    inv
                };
                self.entries.insert(
                    (a, b),
                    Entry::Choice {
                        left_alts: lv,
                        right_alts: rv,
                        alt_map,
                    },
                );
                Ok(dep)
            }
        }
    }
}

/// The direct (binder-resolved) children of a Record node, `Unit`s
/// dropped when unit elimination is active. Children keep their original
/// ids.
fn one_level_view(graph: &MtypeGraph, rules: &RuleSet, id: MtypeId) -> Vec<MtypeId> {
    match graph.kind(id) {
        MtypeKind::Record(cs) => cs
            .iter()
            .copied()
            .filter(|&c| {
                !(rules.unit_elim && matches!(graph.kind(graph.resolve(c)), MtypeKind::Unit))
            })
            .collect(),
        _ => vec![id],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_mtype::{IntRange, RealPrecision, Repertoire};

    fn graph() -> MtypeGraph {
        MtypeGraph::new()
    }

    #[test]
    fn primitive_equivalence_and_subtyping() {
        let mut g = graph();
        let short = g.integer(IntRange::signed_bits(16));
        let int = g.integer(IntRange::signed_bits(32));
        let cmp = Comparer::new(&g, &g);
        assert!(cmp.equivalent(short, short));
        assert!(!cmp.equivalent(short, int));
        assert!(cmp.subtype(short, int));
        assert!(!cmp.subtype(int, short));

        let f32_ = g.real(RealPrecision::SINGLE);
        let f64_ = g.real(RealPrecision::DOUBLE);
        let cmp = Comparer::new(&g, &g);
        assert!(cmp.subtype(f32_, f64_));
        assert!(!cmp.subtype(f64_, f32_));

        let latin = g.character(Repertoire::Latin1);
        let uni = g.character(Repertoire::Unicode);
        let cmp = Comparer::new(&g, &g);
        assert!(cmp.subtype(latin, uni));
        assert!(!cmp.subtype(uni, latin));
        assert!(!cmp.equivalent(latin, uni));
    }

    #[test]
    fn paper_associativity_commutativity_example() {
        // Record(Integer, Record(Real, Character)) ≡
        // Record(Character, Real, Integer)   (paper §4)
        let mut g = graph();
        let i = g.integer(IntRange::signed_bits(32));
        let r = g.real(RealPrecision::SINGLE);
        let c = g.character(Repertoire::Unicode);
        let inner = g.record(vec![r, c]);
        let nested = g.record(vec![i, inner]);
        let flat = g.record(vec![c, r, i]);
        let corr = Comparer::new(&g, &g)
            .compare(nested, flat, Mode::Equivalence)
            .unwrap();
        let Entry::Record {
            perm,
            left_children,
            right_children,
            ..
        } = corr.entry(nested, flat).unwrap()
        else {
            panic!("expected a Record entry");
        };
        assert_eq!(left_children, &vec![i, r, c]);
        assert_eq!(right_children, &vec![c, r, i]);
        assert_eq!(perm, &vec![2, 1, 0]);
    }

    #[test]
    fn strict_rules_reject_reordering() {
        let mut g = graph();
        let i = g.integer(IntRange::signed_bits(32));
        let r = g.real(RealPrecision::SINGLE);
        let ab = g.record(vec![i, r]);
        let ba = g.record(vec![r, i]);
        assert!(Comparer::new(&g, &g).equivalent(ab, ba));
        assert!(!Comparer::with_rules(&g, &g, RuleSet::strict()).equivalent(ab, ba));
        // Strict rules still accept identical structure.
        assert!(Comparer::with_rules(&g, &g, RuleSet::strict()).equivalent(ab, ab));
    }

    #[test]
    fn line_matches_four_floats_via_associativity() {
        // Paper §3: "a Line might match anything with four float values".
        let mut g = graph();
        let r = g.real(RealPrecision::SINGLE);
        let point = g.record(vec![r, r]);
        let line = g.record(vec![point, point]);
        let four = g.record(vec![r, r, r, r]);
        assert!(Comparer::new(&g, &g).equivalent(line, four));
    }

    #[test]
    fn unit_elimination() {
        let mut g = graph();
        let i = g.integer(IntRange::boolean());
        let u = g.unit();
        let with_unit = g.record(vec![i, u]);
        let without = g.record(vec![i]);
        assert!(Comparer::new(&g, &g).equivalent(with_unit, without));
        assert!(
            Comparer::new(&g, &g).equivalent(with_unit, i),
            "unary record collapses"
        );
        let mut strict = RuleSet::strict();
        strict.assoc = false;
        assert!(!Comparer::with_rules(&g, &g, strict).equivalent(with_unit, without));
    }

    #[test]
    fn recursive_lists_are_equivalent_across_graphs() {
        // Fig. 8: a Java linked list and a C float[] (runtime length)
        // share the canonical recursive Mtype.
        let mut g1 = graph();
        let r1 = g1.real(RealPrecision::SINGLE);
        let list1 = g1.list_of(r1);

        let mut g2 = graph();
        let _pad = g2.unit();
        let r2 = g2.real(RealPrecision::SINGLE);
        let list2 = g2.list_of(r2);

        let corr = Comparer::new(&g1, &g2)
            .compare(list1, list2, Mode::Equivalence)
            .unwrap();
        assert!(!corr.is_empty());
        // Element type mismatch is caught.
        let mut g3 = graph();
        let d = g3.real(RealPrecision::DOUBLE);
        let list3 = g3.list_of(d);
        assert!(!Comparer::new(&g1, &g3).equivalent(list1, list3));
    }

    #[test]
    fn mutually_recursive_types_compare() {
        // Rec X. Record(Int, Choice(Unit, X)) built two different ways.
        let mut g = graph();
        let i = g.integer(IntRange::signed_bits(32));
        let t1 = g.recursive(|g, me| {
            let tail = g.nullable(me);
            g.record(vec![i, tail])
        });
        // Unrolled once: Record(Int, Choice(Unit, Rec X. Record(Int, Choice(Unit, X))))
        let t2 = {
            let inner = g.recursive(|g, me| {
                let tail = g.nullable(me);
                g.record(vec![i, tail])
            });
            let tail = g.nullable(inner);
            g.record(vec![i, tail])
        };
        assert!(
            Comparer::new(&g, &g).equivalent(t1, t2),
            "a recursive type equals its unrolling (Amadio–Cardelli)"
        );
    }

    #[test]
    fn port_payloads_are_contravariant() {
        let mut g = graph();
        let small = g.integer(IntRange::signed_bits(16));
        let big = g.integer(IntRange::signed_bits(32));
        let p_small = g.port(small);
        let p_big = g.port(big);
        let cmp = Comparer::new(&g, &g);
        // A port accepting big ints serves where a port accepting small
        // ints is required.
        assert!(cmp.subtype(p_big, p_small));
        assert!(!cmp.subtype(p_small, p_big));
        assert!(cmp.equivalent(p_big, p_big));
    }

    #[test]
    fn choice_subtyping_is_width_and_depth() {
        let mut g = graph();
        let i1 = g.integer(IntRange::new(0, 5));
        let i2 = g.integer(IntRange::new(0, 100));
        let r = g.real(RealPrecision::SINGLE);
        let narrow = g.choice(vec![i1, r]);
        let wide = g.choice(vec![r, i2]);
        let cmp = Comparer::new(&g, &g);
        assert!(cmp.subtype(narrow, wide), "0..5 ≤ 0..100 and Real ≤ Real");
        assert!(!cmp.subtype(wide, narrow));

        // Width: fewer alternatives is a subtype of more.
        let u = g.unit();
        let wider = g.choice(vec![r, i2, u]);
        let cmp = Comparer::new(&g, &g);
        assert!(cmp.subtype(narrow, wider));
        assert!(!cmp.subtype(wider, narrow));
    }

    #[test]
    fn singleton_choice_is_transparent() {
        let mut g = graph();
        let i = g.integer(IntRange::boolean());
        let single = g.choice(vec![i]);
        assert!(Comparer::new(&g, &g).equivalent(single, i));
        assert!(!Comparer::with_rules(&g, &g, RuleSet::strict()).equivalent(single, i));
    }

    #[test]
    fn dynamic_absorbs_in_subtype_mode() {
        let mut g = graph();
        let d = g.dynamic();
        let i = g.integer(IntRange::boolean());
        let rec = g.record(vec![i, i]);
        let cmp = Comparer::new(&g, &g);
        assert!(cmp.subtype(i, d));
        assert!(cmp.subtype(rec, d));
        assert!(!cmp.subtype(d, i));
        assert!(cmp.equivalent(d, d));
        assert!(!cmp.equivalent(d, i));
    }

    #[test]
    fn mismatch_diagnostics_are_informative() {
        let mut g = graph();
        let r = g.real(RealPrecision::SINGLE);
        let three = g.record(vec![r, r, r]);
        let four = g.record(vec![r, r, r, r]);
        let err = Comparer::new(&g, &g)
            .compare(three, four, Mode::Equivalence)
            .unwrap_err();
        let text = err.to_string();
        assert!(text.contains("types do not match"), "{text}");
        // Either the fingerprint filter or the arity check fires; both
        // name the structural problem.
        assert!(
            err.reason.contains("arity") || err.reason.contains("fingerprint"),
            "{}",
            err.reason
        );
    }

    #[test]
    fn function_parameter_reordering_matches() {
        // port(Record(Int, Real, port(...))) vs port(Record(Real, Int, port(...)))
        let mut g = graph();
        let i = g.integer(IntRange::signed_bits(32));
        let r = g.real(RealPrecision::SINGLE);
        let f1 = g.function(vec![i, r], vec![i]);
        let f2 = g.function(vec![r, i], vec![i]);
        assert!(Comparer::new(&g, &g).equivalent(f1, f2));
        // But not when an output type differs.
        let f3 = g.function(vec![r, i], vec![r]);
        assert!(!Comparer::new(&g, &g).equivalent(f1, f3));
    }

    #[test]
    fn nested_grouping_with_mixed_leaves() {
        // Record(Record(Int, Real), Record(Char, Int)) ≡
        // Record(Int, Record(Real, Char), Int)
        let mut g = graph();
        let i = g.integer(IntRange::signed_bits(32));
        let r = g.real(RealPrecision::SINGLE);
        let c = g.character(Repertoire::Unicode);
        let left = {
            let a = g.record(vec![i, r]);
            let b = g.record(vec![c, i]);
            g.record(vec![a, b])
        };
        let right = {
            let m = g.record(vec![r, c]);
            g.record(vec![i, m, i])
        };
        assert!(Comparer::new(&g, &g).equivalent(left, right));
    }

    #[test]
    fn subtype_record_depth() {
        let mut g = graph();
        let small = g.integer(IntRange::signed_bits(16));
        let big = g.integer(IntRange::signed_bits(32));
        let r = g.real(RealPrecision::SINGLE);
        let left = g.record(vec![small, r]);
        let right = g.record(vec![big, r]);
        let cmp = Comparer::new(&g, &g);
        assert!(cmp.subtype(left, right));
        assert!(!cmp.subtype(right, left));
        assert!(!cmp.equivalent(left, right));
    }

    #[test]
    fn shared_cache_preserves_verdicts_and_counts() {
        use crate::cache::CompareCache;
        let mut g = graph();
        let i = g.integer(IntRange::signed_bits(32));
        let r = g.real(RealPrecision::SINGLE);
        let left = g.record(vec![i, r]);
        let right = g.record(vec![r, i]); // comm-equivalent
        let bad = g.record(vec![r, r]);

        let cache = std::sync::Arc::new(CompareCache::new());
        let baseline = Comparer::new(&g, &g);
        let cold = Comparer::new(&g, &g).with_shared_cache(cache.clone());
        let ok_cold = cold.compare(left, right, Mode::Equivalence).unwrap();
        let err_cold = cold.compare(left, bad, Mode::Equivalence).unwrap_err();
        assert!(baseline.equivalent(left, right));

        // A *fresh* comparer over the same graph hits the shared cache.
        let warm = Comparer::new(&g, &g).with_shared_cache(cache.clone());
        let ok_warm = warm.compare(left, right, Mode::Equivalence).unwrap();
        let err_warm = warm.compare(left, bad, Mode::Equivalence).unwrap_err();
        assert_eq!(ok_cold.left_root, ok_warm.left_root);
        assert_eq!(ok_cold.entries.len(), ok_warm.entries.len());
        assert_eq!(err_cold.reason, err_warm.reason);
        assert_eq!(err_cold.depth, err_warm.depth);
        assert_eq!(err_cold.left_display, err_warm.left_display);

        let s = cache.stats();
        assert_eq!(s.hits, 2, "both warm lookups hit");
        assert_eq!(s.misses, 2, "both cold lookups missed");
        assert!(s.inserts >= 2);
        // Same graph object, same roots: the correspondence itself is
        // reused, not just the verdict.
        assert_eq!(s.corr_hits, 1);
    }

    #[test]
    fn shared_cache_is_bypassed_with_semantic_bridges() {
        use crate::cache::CompareCache;
        let mut g = graph();
        let i = g.integer(IntRange::signed_bits(32));
        let r = g.real(RealPrecision::SINGLE);
        let cache = std::sync::Arc::new(CompareCache::new());
        let bridged = Comparer::new(&g, &g)
            .with_shared_cache(cache.clone())
            .with_semantic_bridge(i, r);
        assert!(bridged.equivalent(i, r), "bridge axiom accepted");
        assert_eq!(
            cache.stats().hits + cache.stats().misses,
            0,
            "bridged comparisons must never consult the shared cache"
        );
        // And a bridge-free comparer still decides the pair honestly.
        let plain = Comparer::new(&g, &g).with_shared_cache(cache.clone());
        assert!(!plain.equivalent(i, r));
    }

    #[test]
    fn equivalence_entries_cover_the_proof() {
        let mut g = graph();
        let r = g.real(RealPrecision::SINGLE);
        let point = g.record(vec![r, r]);
        let list_l = g.list_of(point);
        let list_r = g.list_of(point);
        let corr = Comparer::new(&g, &g)
            .compare(list_l, list_r, Mode::Equivalence)
            .unwrap();
        // The cons-cell Record, the Choice, the element Record and leaves
        // all have entries reachable from the resolved roots.
        let lroot = g.resolve(list_l);
        let rroot = g.resolve(list_r);
        assert!(corr.entry(lroot, rroot).is_some());
    }
}
