//! The Mockingbird *Comparer* (paper §3, §4).
//!
//! Given two Mtypes, the Comparer decides whether they are **equivalent**
//! (a two-way converter can be generated) or whether one is a **subtype**
//! of the other (a one-way converter can be generated). The core is the
//! Amadio–Cardelli coinductive algorithm for recursive types, extended
//! with *isomorphism rules*:
//!
//! - **associativity** of `Record` and `Choice` — nested aggregates
//!   flatten, so `Record(Integer, Record(Real, Character))` matches
//!   `Record(Character, Real, Integer)`;
//! - **commutativity** of `Record` and `Choice` — children match under
//!   permutation (recorded in the [`Correspondence`] so stubs reorder
//!   values);
//! - **unit elimination** — `Unit` children of Records vanish;
//! - **singleton choice elimination** — `Choice(τ)` is transparent.
//!
//! Successful comparisons produce a [`Correspondence`]: the structural
//! matching (permutations, alternative maps, leaf coercions) the Stub
//! Generator compiles into a coercion plan. Failures produce a
//! [`Mismatch`] with diagnostics.
//!
//! The paper leaves completeness and decidability of comparison under
//! rich isomorphism sets open (§6 and [3] therein); like the prototype,
//! this comparer is *sound but deliberately incomplete*: a fingerprint
//! pre-filter may reject exotic equivalences involving structurally
//! equal but unshared alternatives inside cycles.
//!
//! # Example
//!
//! ```
//! use mockingbird_mtype::{MtypeGraph, IntRange, RealPrecision, Repertoire};
//! use mockingbird_comparer::{Comparer, Mode, RuleSet};
//!
//! let mut g = MtypeGraph::new();
//! let i = g.integer(IntRange::signed_bits(32));
//! let r = g.real(RealPrecision::SINGLE);
//! let c = g.character(Repertoire::Unicode);
//! let inner = g.record(vec![r, c]);
//! let nested = g.record(vec![i, inner]);
//! let flat = g.record(vec![c, r, i]);
//!
//! let corr = Comparer::new(&g, &g)
//!     .compare(nested, flat, Mode::Equivalence)
//!     .expect("assoc+comm make these isomorphic");
//! assert_eq!(corr.entries.len(), 4); // the record pair + three leaf pairs
//!
//! // With the isomorphism rules disabled (pure Amadio–Cardelli), the
//! // same pair is rejected:
//! assert!(Comparer::with_rules(&g, &g, RuleSet::strict())
//!     .compare(nested, flat, Mode::Equivalence)
//!     .is_err());
//! ```

pub mod cache;
pub mod compare;
pub mod correspondence;
pub mod diagnose;
pub mod rules;

pub use cache::{CacheKey, CacheStats, CompareCache, PersistedVerdict, Verdict};
pub use compare::{resolve_transparent, Comparer, Mode};
pub use correspondence::{Correspondence, Entry, PrimCoercion, RecordFlatten};
pub use diagnose::Mismatch;
pub use rules::RuleSet;

#[cfg(test)]
mod proptests;
