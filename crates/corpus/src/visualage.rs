//! E1: the VisualAge-style corpus.
//!
//! "A substantial trial of Mockingbird involving a research prototype of
//! a new version of the IBM Visual Age C++ Compiler ... The interface
//! between the two parts consists of 500 highly inter-related classes
//! with a total of several thousand methods. Mockingbird was first used
//! to build a miniature version of the system with twelve carefully
//! chosen classes ..." (paper §5)
//!
//! The interface between the Java development environment and the C++
//! compilation engine is an *API*: classes passed by reference whose
//! method structure crosses the boundary (paper §3.3,
//! `port(Choice(methods))`). [`visualage`] generates a matched pair of
//! universes: the C++ side (methods whose class-typed parameters and
//! returns are references, never null) and the Java side (the same
//! classes re-declared as a Java programmer would — members permuted,
//! references nullable until the batch annotation script marks them
//! `non-null`, the paper's §5 scripting technique).

use mockingbird_rng::{SliceRandom, StdRng};

use mockingbird_stype::ann::PassMode;
use mockingbird_stype::ast::{Decl, Field, Lang, Method, Param, Signature, Stype, Universe};

/// A generated corpus pair plus its batch annotation script.
#[derive(Debug, Clone)]
pub struct CorpusPair {
    /// The C++-side declarations.
    pub cxx: Universe,
    /// The Java-side declarations (members permuted, refs nullable).
    pub java: Universe,
    /// The batch annotation script that makes the two sides match.
    pub script: String,
    /// Names of the generated classes (identical on both sides).
    pub class_names: Vec<String>,
    /// Total number of methods across all classes.
    pub method_count: usize,
}

fn prim_pool() -> Vec<Stype> {
    vec![
        Stype::i32(),
        Stype::f32(),
        Stype::f64(),
        Stype::boolean(),
        Stype::i64(),
    ]
}

/// Generates a VisualAge-style corpus of `n_classes` inter-related API
/// classes (~8 methods each, so 500 classes ≈ 4000 methods, the paper's
/// "several thousand"). Deterministic in `seed`.
pub fn visualage(n_classes: usize, seed: u64) -> CorpusPair {
    assert!(
        n_classes >= 2,
        "corpus needs at least two classes to inter-relate"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let prims = prim_pool();
    let class_names: Vec<String> = (0..n_classes).map(|i| format!("Ast{i:03}")).collect();

    let mut cxx = Universe::new();
    let mut java = Universe::new();
    let mut script = String::from("# VisualAge batch annotations (paper §5 scripting technique)\n");
    let mut method_count = 0usize;

    for (i, name) in class_names.iter().enumerate() {
        // A couple of implementation fields (ignored by the by-reference
        // lowering, kept for realism).
        let fields = vec![
            Field::new("handle", Stype::i64()),
            Field::new("flags", Stype::i32()),
        ];

        // Methods: ~8 each, heavily referencing other classes ("highly
        // inter-related"): parameters and returns are object references.
        let n_methods = rng.gen_range(6..=10);
        method_count += n_methods;
        let mut methods_cxx = Vec::new();
        let mut java_anns: Vec<String> = Vec::new();
        for m in 0..n_methods {
            let n_params = rng.gen_range(0..=3);
            let mut params = Vec::new();
            let mut ref_params: Vec<String> = Vec::new();
            for p in 0..n_params {
                let pname = format!("a{p}");
                let ty = if rng.gen_bool(0.35) && n_classes > 1 {
                    let mut target = rng.gen_range(0..n_classes);
                    if target == i {
                        target = (target + 1) % n_classes;
                    }
                    ref_params.push(pname.clone());
                    // C++ side: a reference parameter (never null).
                    Stype::pointer(Stype::named(class_names[target].clone()))
                        .with_ann(|a| a.non_null = true)
                } else {
                    prims[rng.gen_range(0..prims.len())].clone()
                };
                params.push(Param::new(pname, ty));
            }
            let (ret, ret_is_ref) = if rng.gen_bool(0.3) && n_classes > 1 {
                let mut target = rng.gen_range(0..n_classes);
                if target == i {
                    target = (target + 1) % n_classes;
                }
                (
                    Stype::pointer(Stype::named(class_names[target].clone()))
                        .with_ann(|a| a.non_null = true),
                    true,
                )
            } else if rng.gen_bool(0.5) {
                (prims[rng.gen_range(0..prims.len())].clone(), false)
            } else {
                (Stype::void(), false)
            };
            let mname = format!("m{m}");
            for p in &ref_params {
                java_anns.push(format!(
                    "annotate {name}.method({mname}).param({p}) non-null"
                ));
            }
            if ret_is_ref {
                java_anns.push(format!("annotate {name}.method({mname}).ret non-null"));
            }
            methods_cxx.push(Method::new(mname, Signature::new(params, ret)));
        }

        // Java side: same methods, order permuted (the Java programmer's
        // preferred grouping), references nullable until annotated.
        let mut methods_java: Vec<Method> = methods_cxx
            .iter()
            .map(|m| {
                let params = m
                    .sig
                    .params
                    .iter()
                    .map(|p| {
                        let mut ty = p.ty.clone();
                        ty.ann.non_null = false;
                        Param::new(p.name.clone(), ty)
                    })
                    .collect();
                let mut ret = (*m.sig.ret).clone();
                ret.ann.non_null = false;
                Method::new(m.name.clone(), Signature::new(params, ret))
            })
            .collect();
        methods_java.shuffle(&mut rng);
        let mut fields_java = fields.clone();
        fields_java.reverse();

        for line in &java_anns {
            script.push_str(line);
            script.push('\n');
        }

        cxx.insert(Decl::new(
            name.clone(),
            Lang::Cxx,
            Stype::class(fields.clone(), methods_cxx)
                .with_ann(|a| a.pass_mode = Some(PassMode::ByReference)),
        ))
        .expect("generated names are unique");
        java.insert(Decl::new(
            name.clone(),
            Lang::Java,
            Stype::class(fields_java, methods_java)
                .with_ann(|a| a.pass_mode = Some(PassMode::ByReference)),
        ))
        .expect("generated names are unique");
    }

    CorpusPair {
        cxx,
        java,
        script,
        class_names,
        method_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_comparer::{Comparer, Mode};
    use mockingbird_mtype::MtypeGraph;
    use mockingbird_stype::lower::Lowerer;
    use mockingbird_stype::script::apply_script;

    #[test]
    fn corpus_is_deterministic() {
        let a = visualage(12, 7);
        let b = visualage(12, 7);
        assert_eq!(a.script, b.script);
        assert_eq!(a.method_count, b.method_count);
        let c = visualage(12, 8);
        assert!(a.script != c.script || a.method_count != c.method_count);
    }

    #[test]
    fn miniature_system_matches_after_annotation() {
        // The paper's 12-class miniature: every class pair must compare
        // equivalent once the batch script is applied.
        let mut pair = visualage(12, 42);
        apply_script(&mut pair.java, &pair.script).unwrap();
        let mut g = MtypeGraph::new();
        let mut pairs = Vec::new();
        for name in &pair.class_names {
            let cxx_m = Lowerer::new(&pair.cxx, &mut g).lower_named(name).unwrap();
            let java_m = Lowerer::new(&pair.java, &mut g).lower_named(name).unwrap();
            pairs.push((name.clone(), cxx_m, java_m));
        }
        let cmp = Comparer::new(&g, &g);
        let mut matched = 0;
        for (name, cxx_m, java_m) in pairs {
            assert!(
                cmp.compare(cxx_m, java_m, Mode::Equivalence).is_ok(),
                "class {name} must match after annotation"
            );
            matched += 1;
        }
        assert_eq!(matched, 12);
    }

    #[test]
    fn unannotated_referencing_classes_do_not_match() {
        let pair = visualage(12, 42);
        // Find a class whose script needed annotations (has a ref param).
        let needs_ann: Vec<&str> = pair
            .script
            .lines()
            .filter_map(|l| l.strip_prefix("annotate ")?.split('.').next())
            .collect();
        if let Some(name) = needs_ann.first() {
            let mut g = MtypeGraph::new();
            let cxx_m = Lowerer::new(&pair.cxx, &mut g).lower_named(name).unwrap();
            let java_m = Lowerer::new(&pair.java, &mut g).lower_named(name).unwrap();
            assert!(
                !Comparer::new(&g, &g).equivalent(cxx_m, java_m),
                "without annotations the nullable Java ref cannot match the C++ reference"
            );
        }
    }

    #[test]
    fn full_scale_shape() {
        let pair = visualage(500, 1);
        assert_eq!(pair.class_names.len(), 500);
        assert!(
            pair.method_count >= 3000,
            "several thousand methods (got {})",
            pair.method_count
        );
    }
}
