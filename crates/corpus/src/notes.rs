//! E2: the Lotus-Notes-style API corpus.
//!
//! "Mockingbird has also been used in an experiment to develop a Java
//! interface to part of the C++ programming API of Lotus Notes. ... this
//! limited prototype covered a small, but representative, set of 30
//! classes." (paper §5)
//!
//! The generator declares a fixed, deterministic 30-class groupware API
//! twice: once as the C++ vendor API and once as the Java interface the
//! team wanted, with the member orderings a Java programmer would pick.

use mockingbird_stype::ann::PassMode;
use mockingbird_stype::ast::{Decl, Lang, Method, Param, Signature, Stype, Universe};

/// The 30 class names of the representative Notes API subset.
pub const NOTES_CLASSES: [&str; 30] = [
    "NotesSession",
    "NotesDatabase",
    "NotesDocument",
    "NotesItem",
    "NotesView",
    "NotesViewEntry",
    "NotesViewColumn",
    "NotesAgent",
    "NotesACL",
    "NotesACLEntry",
    "NotesDateTime",
    "NotesDateRange",
    "NotesName",
    "NotesRichTextItem",
    "NotesRichTextStyle",
    "NotesEmbeddedObject",
    "NotesForm",
    "NotesOutline",
    "NotesOutlineEntry",
    "NotesReplication",
    "NotesRegistration",
    "NotesLog",
    "NotesNewsletter",
    "NotesTimer",
    "NotesMimeEntity",
    "NotesMimeHeader",
    "NotesStream",
    "NotesDxlExporter",
    "NotesDxlImporter",
    "NotesColorObject",
];

/// A Notes-style API pair plus annotation script.
#[derive(Debug, Clone)]
pub struct NotesPair {
    /// The vendor's C++ API declarations.
    pub cxx: Universe,
    /// The desired Java interface declarations.
    pub java: Universe,
    /// The batch annotation script aligning the two.
    pub script: String,
    /// Total number of methods declared per side.
    pub method_count: usize,
}

/// Method recipes per class index: (name, param prims, returns_ref_to).
fn methods_for(index: usize) -> Vec<(String, Vec<Stype>, Option<usize>)> {
    // Deterministic pseudo-structure: each class gets 3 + (index % 4)
    // methods; some return references to the "next" classes, modelling
    // the API's factory style (Session opens Databases, Databases open
    // Documents, ...).
    let n = 3 + index % 4;
    (0..n)
        .map(|m| {
            let name = match m {
                0 => format!("get{}", ["Name", "Title", "Count", "Id"][index % 4]),
                1 => "isValid".to_string(),
                2 => format!("open{}", ["Child", "Entry", "Item", "Handle"][index % 4]),
                _ => format!("op{m}"),
            };
            let params = match m % 3 {
                0 => vec![],
                1 => vec![Stype::i32()],
                _ => vec![Stype::string(), Stype::boolean()],
            };
            let returns_ref = if m == 2 && index + 1 < NOTES_CLASSES.len() {
                Some(index + 1)
            } else {
                None
            };
            (name, params, returns_ref)
        })
        .collect()
}

/// Builds the deterministic 30-class Notes API pair.
pub fn notes_api() -> NotesPair {
    let mut cxx = Universe::new();
    let mut java = Universe::new();
    let mut script = String::from("# Notes API annotations\n");
    let mut method_count = 0usize;

    for (i, name) in NOTES_CLASSES.iter().enumerate() {
        let recipes = methods_for(i);
        method_count += recipes.len();
        let build_methods = |reverse: bool, nullable_returns: bool| -> Vec<Method> {
            let mut ms: Vec<Method> = recipes
                .iter()
                .map(|(mname, params, returns_ref)| {
                    let params: Vec<Param> = params
                        .iter()
                        .enumerate()
                        .map(|(k, ty)| Param::new(format!("a{k}"), ty.clone()))
                        .collect();
                    let ret = match returns_ref {
                        Some(t) => {
                            let mut ty = Stype::pointer(Stype::named(NOTES_CLASSES[*t]));
                            ty.ann.non_null = !nullable_returns;
                            ty
                        }
                        None => match mname.as_str() {
                            "isValid" => Stype::boolean(),
                            n if n.starts_with("get") => Stype::string(),
                            _ => Stype::void(),
                        },
                    };
                    Method::new(mname.clone(), Signature::new(params, ret))
                })
                .collect();
            if reverse {
                ms.reverse();
            }
            ms
        };

        // These are API classes: objects passed by reference, so their
        // method structure (not fields) is what crosses the boundary
        // (paper §3.3: port(Choice(methods))).
        cxx.insert(Decl::new(
            name.to_string(),
            Lang::Cxx,
            Stype::class(vec![], build_methods(false, false))
                .with_ann(|a| a.pass_mode = Some(PassMode::ByReference)),
        ))
        .expect("unique");
        java.insert(Decl::new(
            name.to_string(),
            Lang::Java,
            Stype::class(vec![], build_methods(true, true))
                .with_ann(|a| a.pass_mode = Some(PassMode::ByReference)),
        ))
        .expect("unique");

        // The factory methods return nullable refs on the Java side;
        // annotate them non-null to match the C++ references.
        for (mname, _, returns_ref) in &recipes {
            if returns_ref.is_some() {
                script.push_str(&format!("annotate {name}.method({mname}).ret non-null\n"));
            }
        }
    }

    NotesPair {
        cxx,
        java,
        script,
        method_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_comparer::{Comparer, Mode};
    use mockingbird_mtype::MtypeGraph;
    use mockingbird_stype::lower::Lowerer;
    use mockingbird_stype::script::apply_script;

    #[test]
    fn thirty_classes_with_methods() {
        let pair = notes_api();
        assert_eq!(pair.cxx.len(), 30);
        assert_eq!(pair.java.len(), 30);
        assert!(pair.method_count >= 90);
    }

    #[test]
    fn every_class_matches_after_annotation() {
        let mut pair = notes_api();
        apply_script(&mut pair.java, &pair.script).unwrap();
        let mut g = MtypeGraph::new();
        let mut pairs = Vec::new();
        for name in NOTES_CLASSES {
            let c = Lowerer::new(&pair.cxx, &mut g).lower_named(name).unwrap();
            let j = Lowerer::new(&pair.java, &mut g).lower_named(name).unwrap();
            pairs.push((name, c, j));
        }
        let cmp = Comparer::new(&g, &g);
        for (name, c, j) in pairs {
            assert!(
                cmp.compare(c, j, Mode::Equivalence).is_ok(),
                "{name} must match (method order is permuted but commutativity covers it)"
            );
        }
    }

    #[test]
    fn factory_chain_classes_need_the_script() {
        let pair = notes_api();
        // NotesSession.openChild returns a ref: nullable on the Java side
        // until annotated.
        let mut g = MtypeGraph::new();
        let c = Lowerer::new(&pair.cxx, &mut g)
            .lower_named("NotesSession")
            .unwrap();
        let j = Lowerer::new(&pair.java, &mut g)
            .lower_named("NotesSession")
            .unwrap();
        assert!(!Comparer::new(&g, &g).equivalent(c, j));
    }
}
