//! Seeded random Mtypes and values for benchmarks and fuzzing.

use mockingbird_rng::StdRng;

use mockingbird_mtype::{IntRange, MtypeGraph, MtypeId, MtypeKind, RealPrecision, Repertoire};
use mockingbird_values::mvalue::list_element_type;
use mockingbird_values::MValue;

/// Generates a random Mtype of roughly the given `depth` into `g`.
/// Deterministic in the RNG state.
pub fn random_mtype(g: &mut MtypeGraph, rng: &mut StdRng, depth: usize) -> MtypeId {
    if depth == 0 {
        return match rng.gen_range(0..4) {
            0 => g.integer(IntRange::signed_bits(rng.gen_range(1..=63))),
            1 => g.real(if rng.gen_bool(0.5) {
                RealPrecision::SINGLE
            } else {
                RealPrecision::DOUBLE
            }),
            2 => g.character(match rng.gen_range(0..3) {
                0 => Repertoire::Ascii,
                1 => Repertoire::Latin1,
                _ => Repertoire::Unicode,
            }),
            _ => g.integer(IntRange::boolean()),
        };
    }
    match rng.gen_range(0..10) {
        0..=4 => {
            let n = rng.gen_range(1..=4);
            let kids = (0..n).map(|_| random_mtype(g, rng, depth - 1)).collect();
            g.record(kids)
        }
        5..=6 => {
            let n = rng.gen_range(2..=3);
            let kids = (0..n).map(|_| random_mtype(g, rng, depth - 1)).collect();
            g.choice(kids)
        }
        7 => {
            let elem = random_mtype(g, rng, depth - 1);
            g.list_of(elem)
        }
        8 => {
            let payload = random_mtype(g, rng, depth - 1);
            g.port(payload)
        }
        _ => random_mtype(g, rng, 0),
    }
}

/// Builds a structurally isomorphic variant of `id` in `out`: record and
/// choice children reversed, and the first two children of wide records
/// regrouped into a nested record (exercising commutativity and
/// associativity).
pub fn isomorphic_variant(src: &MtypeGraph, id: MtypeId, out: &mut MtypeGraph) -> MtypeId {
    variant_rec(src, id, out, &mut Vec::new())
}

fn variant_rec(
    src: &MtypeGraph,
    id: MtypeId,
    out: &mut MtypeGraph,
    in_progress: &mut Vec<(MtypeId, MtypeId)>,
) -> MtypeId {
    if let Some(&(_, mapped)) = in_progress.iter().find(|(s, _)| *s == id) {
        return mapped;
    }
    match src.kind(id).clone() {
        MtypeKind::Integer(r) => out.integer(r),
        MtypeKind::Character(rep) => out.character(rep),
        MtypeKind::Real(p) => out.real(p),
        MtypeKind::Unit => out.unit(),
        MtypeKind::Dynamic => out.dynamic(),
        MtypeKind::Record(cs) => {
            let mut kids: Vec<MtypeId> = cs
                .iter()
                .rev()
                .map(|&c| variant_rec(src, c, out, in_progress))
                .collect();
            if kids.len() >= 3 {
                let grouped = out.record(vec![kids[0], kids[1]]);
                let mut regrouped = vec![grouped];
                regrouped.extend_from_slice(&kids[2..]);
                kids = regrouped;
            }
            out.record(kids)
        }
        MtypeKind::Choice(cs) => {
            let kids: Vec<MtypeId> = cs
                .iter()
                .rev()
                .map(|&c| variant_rec(src, c, out, in_progress))
                .collect();
            out.choice(kids)
        }
        MtypeKind::Port(p) => {
            let payload = variant_rec(src, p, out, in_progress);
            out.port(payload)
        }
        MtypeKind::Recursive(body) => {
            let binder = out.recursive(|_, me| me);
            in_progress.push((id, binder));
            let new_body = variant_rec(src, body, out, in_progress);
            in_progress.pop();
            out.patch_recursive(binder, new_body);
            binder
        }
    }
}

/// Builds a *non*-isomorphic perturbation: a boolean leaf is appended to
/// the outermost record (or wrapped around the root).
pub fn perturbed_variant(src: &MtypeGraph, id: MtypeId, out: &mut MtypeGraph) -> MtypeId {
    let base = out.import(src, id);
    let extra = out.integer(IntRange::boolean());
    match out.kind(base).clone() {
        MtypeKind::Record(mut cs) => {
            cs.push(extra);
            out.record(cs)
        }
        _ => out.record(vec![base, extra]),
    }
}

/// Samples a value inhabiting the Mtype rooted at `ty`. `list_len`
/// bounds generated collection sizes.
pub fn sample_value(g: &MtypeGraph, ty: MtypeId, rng: &mut StdRng, list_len: usize) -> MValue {
    sample_at(g, ty, rng, list_len, 0)
}

fn sample_at(
    g: &MtypeGraph,
    ty: MtypeId,
    rng: &mut StdRng,
    list_len: usize,
    depth: usize,
) -> MValue {
    let ty = g.resolve(ty);
    if depth > 64 {
        // Cut recursion off at nil/zero values.
        return match g.kind(ty) {
            MtypeKind::Choice(_) if list_element_type(g, ty).is_some() => MValue::List(vec![]),
            _ => MValue::Unit,
        };
    }
    match g.kind(ty) {
        MtypeKind::Integer(r) => {
            let lo = r.lo.max(-(1 << 62));
            let hi = r.hi.min(1 << 62);
            MValue::Int(rng.gen_range(lo..=hi))
        }
        MtypeKind::Character(rep) => MValue::Char(match rep {
            Repertoire::Ascii => rng.gen_range(b'a'..=b'z') as char,
            Repertoire::Latin1 => rng.gen_range(b' '..=b'~') as char,
            _ => ['α', '日', 'Z', 'é'][rng.gen_range(0..4usize)],
        }),
        MtypeKind::Real(p) => {
            let x: f64 = rng.gen_range(-1000.0..1000.0);
            // Values of a single-precision Real must be exactly
            // representable at that precision (the wire is f32).
            if *p == mockingbird_mtype::RealPrecision::SINGLE {
                MValue::Real((x as f32) as f64)
            } else {
                MValue::Real(x)
            }
        }
        MtypeKind::Unit => MValue::Unit,
        MtypeKind::Dynamic => MValue::Dynamic {
            tag: "Int{0..=1}".into(),
            value: Box::new(MValue::Int(rng.gen_range(0..=1))),
        },
        MtypeKind::Record(cs) => MValue::Record(
            cs.clone()
                .iter()
                .map(|&c| sample_at(g, c, rng, list_len, depth + 1))
                .collect(),
        ),
        MtypeKind::Choice(alts) => {
            if let Some(elem) = list_element_type(g, ty) {
                let n = rng.gen_range(0..=list_len);
                return MValue::List(
                    (0..n)
                        .map(|_| sample_at(g, elem, rng, list_len, depth + 1))
                        .collect(),
                );
            }
            let alts = alts.clone();
            let index = rng.gen_range(0..alts.len());
            MValue::Choice {
                index,
                value: Box::new(sample_at(g, alts[index], rng, list_len, depth + 1)),
            }
        }
        MtypeKind::Port(_) => MValue::Port(mockingbird_values::PortRef(rng.gen_range(1..1000))),
        MtypeKind::Recursive(_) => unreachable!("resolved above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_comparer::Comparer;
    use mockingbird_values::mvalue::typecheck;

    #[test]
    fn random_types_validate_and_sample() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let mut g = MtypeGraph::new();
            let ty = random_mtype(&mut g, &mut rng, 3);
            g.validate().unwrap();
            let v = sample_value(&g, ty, &mut rng, 4);
            typecheck(&g, ty, &v).unwrap();
        }
    }

    #[test]
    fn variants_are_isomorphic_and_perturbations_are_not() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..20 {
            let mut g = MtypeGraph::new();
            let ty = random_mtype(&mut g, &mut rng, 3);
            let mut h = MtypeGraph::new();
            let var = isomorphic_variant(&g, ty, &mut h);
            h.validate().unwrap();
            assert!(Comparer::new(&g, &h).equivalent(ty, var));
            let mut p = MtypeGraph::new();
            let bad = perturbed_variant(&g, ty, &mut p);
            assert!(!Comparer::new(&g, &p).equivalent(ty, bad));
        }
    }

    #[test]
    fn determinism() {
        let mut g1 = MtypeGraph::new();
        let t1 = random_mtype(&mut g1, &mut StdRng::seed_from_u64(5), 3);
        let mut g2 = MtypeGraph::new();
        let t2 = random_mtype(&mut g2, &mut StdRng::seed_from_u64(5), 3);
        assert_eq!(g1.display(t1).to_string(), g2.display(t2).to_string());
    }
}
