//! Deterministic corpora for the paper's §5 experience studies.
//!
//! The paper's trials used proprietary code bases (the VisualAge C++
//! compiler interface, the Lotus Notes C++ API, a collaboration
//! framework). These generators synthesise corpora with the quoted
//! shapes — class counts, interconnection density, method volumes — so
//! the scaling and feasibility studies can run (DESIGN.md §2):
//!
//! - [`visualage`] — E1: "500 highly inter-related classes with a total
//!   of several thousand methods", and the "miniature version ... with
//!   twelve carefully chosen classes";
//! - [`notes_api`] — E2: "a small, but representative, set of 30
//!   classes" of a C++ groupware API, paired with the desired Java
//!   interface declarations;
//! - [`collaboration`] — E3: "the 21 message types they needed as Java
//!   classes that indirectly incorporated 22 other application-specific
//!   Java classes";
//! - [`random`] — seeded random Mtypes, isomorphic variants and
//!   perturbations, and value sampling for the comparer and wire
//!   benchmarks.

pub mod collab;
pub mod marshal;
pub mod notes;
pub mod random;
pub mod visualage;

pub use collab::collaboration;
pub use marshal::{
    choice_heavy_pair, deep_list_pair, fitter_pair, marshal_corpus, property_pair, MarshalCorpus,
};
pub use notes::notes_api;
pub use random::{isomorphic_variant, perturbed_variant, random_mtype, sample_value};
pub use visualage::visualage;
