//! E3: the collaboration-framework corpus.
//!
//! "Our colleagues declared the 21 message types they needed as Java
//! classes that indirectly incorporated 22 other application-specific
//! Java classes. Mockingbird generated custom 'send' and 'receive'
//! stubs for these messages, allowing our colleagues to implement their
//! collaborative objects completely in Java ..." (paper §5)
//!
//! [`collaboration`] declares a deterministic replica of that shape: 22
//! application classes (users, shapes, timestamps, ...) and 21 message
//! types over them, plus the annotation script the send/receive stubs
//! need.

use mockingbird_stype::ast::{Decl, Field, Lang, Stype, Universe};
use mockingbird_stype::lower::JAVA_VECTOR;

/// The 22 application-specific classes the messages incorporate.
pub const APP_CLASSES: [&str; 22] = [
    "UserId",
    "SiteId",
    "SessionId",
    "Timestamp",
    "VectorClock",
    "Color",
    "Pointt",
    "Rect",
    "Transform",
    "ShapeId",
    "ShapeState",
    "TextRun",
    "CaretPosition",
    "SelectionRange",
    "LockToken",
    "Capability",
    "ErrorInfo",
    "Checksum",
    "Payload",
    "Attachment",
    "PresenceInfo",
    "UndoRecord",
];

/// The 21 message types.
pub const MESSAGE_TYPES: [&str; 21] = [
    "JoinSession",
    "LeaveSession",
    "PresenceUpdate",
    "CursorMoved",
    "SelectionChanged",
    "ShapeCreated",
    "ShapeMoved",
    "ShapeResized",
    "ShapeDeleted",
    "ShapeLocked",
    "ShapeUnlocked",
    "TextInserted",
    "TextDeleted",
    "StyleApplied",
    "UndoRequested",
    "RedoRequested",
    "StateSnapshot",
    "StateRequest",
    "AckUpdate",
    "ConflictDetected",
    "SessionTerminated",
];

/// The generated collaboration corpus.
#[derive(Debug, Clone)]
pub struct CollabCorpus {
    /// All declarations: application classes plus message types.
    pub java: Universe,
    /// The annotation script (non-null message fields, collection
    /// element types).
    pub script: String,
}

fn app_class(i: usize) -> Stype {
    // Small value classes: 1–3 primitive fields, deterministic by index.
    let fields = match i % 4 {
        0 => vec![Field::new("value", Stype::i64())],
        1 => vec![Field::new("x", Stype::f64()), Field::new("y", Stype::f64())],
        2 => vec![
            Field::new("site", Stype::i32()),
            Field::new("counter", Stype::i64()),
            Field::new("wall", Stype::i64()),
        ],
        _ => vec![
            Field::new("name", Stype::string()),
            Field::new("code", Stype::i32()),
        ],
    };
    Stype::class(fields, vec![])
}

/// Builds the deterministic collaboration corpus: 22 application
/// classes, 21 message types, and the annotation script.
pub fn collaboration() -> CollabCorpus {
    let mut java = Universe::new();
    let mut script = String::from("# Collaboration message annotations\n");

    for (i, name) in APP_CLASSES.iter().enumerate() {
        java.insert(Decl::new(name.to_string(), Lang::Java, app_class(i)))
            .expect("unique");
    }

    for (i, name) in MESSAGE_TYPES.iter().enumerate() {
        // Each message carries: the sender, a timestamp, and 1–3
        // payload fields drawn from the app classes (so all 22 end up
        // "indirectly incorporated").
        let mut fields = vec![
            Field::new("sender", Stype::pointer(Stype::named("UserId"))),
            Field::new("when", Stype::pointer(Stype::named("Timestamp"))),
        ];
        let n_extra = 1 + i % 3;
        for k in 0..n_extra {
            let app = APP_CLASSES[(i * 3 + k) % APP_CLASSES.len()];
            fields.push(Field::new(
                format!("p{k}"),
                Stype::pointer(Stype::named(app)),
            ));
        }
        if i % 5 == 0 {
            // Some messages carry a vector of shape states.
            fields.push(Field::new(
                "batch",
                Stype::pointer(Stype::named("StateList")),
            ));
        }
        let field_names: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
        java.insert(Decl::new(
            name.to_string(),
            Lang::Java,
            Stype::class(fields, vec![]),
        ))
        .expect("unique");
        for f in field_names {
            script.push_str(&format!("annotate {name}.field({f}) non-null no-alias\n"));
        }
    }

    // The shared collection type used by batch messages.
    java.insert(Decl::new(
        "StateList",
        Lang::Java,
        Stype::class_extending(vec![], vec![], JAVA_VECTOR).with_ann(|a| {
            a.element = Some("ShapeState".into());
            a.non_null = true;
        }),
    ))
    .expect("unique");

    CollabCorpus { java, script }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_mtype::MtypeGraph;
    use mockingbird_stype::lower::Lowerer;
    use mockingbird_stype::script::apply_script;

    #[test]
    fn corpus_has_the_quoted_shape() {
        let c = collaboration();
        // 22 app classes + 21 messages + the shared collection.
        assert_eq!(c.java.len(), 22 + 21 + 1);
        for m in MESSAGE_TYPES {
            assert!(c.java.get(m).is_some(), "{m}");
        }
    }

    #[test]
    fn all_messages_lower_after_annotation() {
        let mut c = collaboration();
        apply_script(&mut c.java, &c.script).unwrap();
        let mut g = MtypeGraph::new();
        for m in MESSAGE_TYPES {
            let mut lw = Lowerer::new(&c.java, &mut g);
            let id = lw.lower_named(m).unwrap();
            assert!(g.validate().is_ok());
            let shown = g.display(id).to_string();
            assert!(shown.starts_with("Record("), "{m}: {shown}");
        }
    }

    #[test]
    fn annotation_strips_nullability() {
        // The same message lowers with strictly fewer Choice nodes once
        // the non-null annotations are applied.
        let bare = {
            let c = collaboration();
            let mut g = MtypeGraph::new();
            let id = Lowerer::new(&c.java, &mut g)
                .lower_named("LeaveSession")
                .unwrap();
            mockingbird_mtype::canon::MtypeSummary::of(&g, id).choices
        };
        let annotated = {
            let mut c = collaboration();
            apply_script(&mut c.java, &c.script).unwrap();
            let mut g = MtypeGraph::new();
            let id = Lowerer::new(&c.java, &mut g)
                .lower_named("LeaveSession")
                .unwrap();
            mockingbird_mtype::canon::MtypeSummary::of(&g, id).choices
        };
        assert!(annotated < bare, "annotated {annotated} vs bare {bare}");
    }
}
