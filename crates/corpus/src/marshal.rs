//! Canonical fixtures for the fused/native data plane.
//!
//! The X6/X11 marshal experiments, `mbc emit-stubs`, and the three-way
//! differential property suite must all agree on the *same* type pairs:
//! native stubs are compiled into binaries ahead of time and resolved by
//! nominal fingerprint, so every consumer has to reconstruct the exact
//! corpus the emitter saw. These constructors are that single source of
//! truth — all deterministic, all seed-pinned.

use std::sync::Arc;

use mockingbird_mtype::{IntRange, MtypeGraph, MtypeId, RealPrecision, Repertoire};
use mockingbird_rng::StdRng;

use crate::random::{isomorphic_variant, random_mtype};

/// The X6 marshal corpus: `classes` random message Mtypes and their
/// comm/assoc-permuted isomorphic variants, imported into one shared
/// graph. The returned RNG continues the deterministic stream, so value
/// sampling that follows corpus construction replays identically
/// everywhere (`report x6`, `report x11`, `mbc emit-stubs`).
pub struct MarshalCorpus {
    /// Frozen shared graph holding both sides of every pair.
    pub graph: Arc<MtypeGraph>,
    /// `(left, right)` roots, in generation order.
    pub pairs: Vec<(MtypeId, MtypeId)>,
    /// The RNG state after corpus construction.
    pub rng: StdRng,
}

/// Builds the marshal corpus for `classes` classes under `seed`
/// (X6/X11 pin `classes = 200`, `seed = 42`).
#[must_use]
pub fn marshal_corpus(classes: usize, seed: u64) -> MarshalCorpus {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = MtypeGraph::new();
    let mut pairs = Vec::with_capacity(classes);
    for _ in 0..classes {
        let mut scratch = MtypeGraph::new();
        let ty = random_mtype(&mut scratch, &mut rng, 3);
        let left = g.import(&scratch, ty);
        let right = isomorphic_variant(&scratch, ty, &mut g);
        pairs.push((left, right));
    }
    MarshalCorpus {
        graph: g.snapshot(),
        pairs,
        rng,
    }
}

/// One pair of the 64-seed differential property stream: a random Mtype
/// under `seed` and its isomorphic variant, each in its own graph (the
/// shape the fused-program property suite has always used). The
/// returned RNG continues the stream for value sampling.
#[must_use]
pub fn property_pair(seed: u64) -> (MtypeGraph, MtypeGraph, MtypeId, MtypeId, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = MtypeGraph::new();
    let ty = random_mtype(&mut g, &mut rng, 3);
    let mut h = MtypeGraph::new();
    let var = isomorphic_variant(&g, ty, &mut h);
    (g, h, ty, var, rng)
}

/// A deliberately choice-heavy pair: nested choices on both sides, with
/// the right side flattened relative to the left (exercising the
/// dispatch-tree arms of the compiled and emitted code).
#[must_use]
pub fn choice_heavy_pair() -> (MtypeGraph, MtypeGraph, MtypeId, MtypeId) {
    let mut g = MtypeGraph::new();
    let i = g.integer(IntRange::signed_bits(32));
    let r = g.real(RealPrecision::DOUBLE);
    let c = g.character(Repertoire::Ascii);
    let b = g.integer(IntRange::boolean());
    let inner = g.choice(vec![i, r]);
    let rec = g.record(vec![b, c]);
    let ty = g.choice(vec![inner, rec, c]);
    let mut h = MtypeGraph::new();
    let var = isomorphic_variant(&g, ty, &mut h);
    (g, h, ty, var)
}

/// A recursive list-of-self pair (`T = list(T)`): values nest
/// arbitrarily deep, so both the opcode VM and emitted native code hit
/// the shared depth bound on hostile inputs — the property suite checks
/// they fail *identically*.
#[must_use]
pub fn deep_list_pair() -> (MtypeGraph, MtypeGraph, MtypeId, MtypeId) {
    let mut g = MtypeGraph::new();
    let ty = g.recursive(|g, me| g.list_of(me));
    let mut h = MtypeGraph::new();
    let var = isomorphic_variant(&g, ty, &mut h);
    (g, h, ty, var)
}

/// The paper's fitter pair at the Mtype level, in one shared graph:
/// Java-style `(list) -> (line)` on the left, C-style
/// `(list) -> (point, point)` on the right. `mbc emit-stubs` compiles
/// its invocation/result programs into native stubs; `RemoteStub`
/// resolves them back by nominal fingerprint.
pub fn fitter_pair(g: &mut MtypeGraph) -> (MtypeId, MtypeId) {
    let r = g.real(RealPrecision::SINGLE);
    let point = g.record(vec![r, r]);
    let line = g.record(vec![point, point]);
    let jlist = g.list_of(point);
    let java = g.function(vec![jlist], vec![line]);
    let clist = g.list_of(point);
    let cfun = g.function(vec![clist], vec![point, point]);
    (java, cfun)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marshal_corpus_is_deterministic() {
        let a = marshal_corpus(8, 42);
        let b = marshal_corpus(8, 42);
        assert_eq!(a.pairs.len(), 8);
        for (&(al, ar), &(bl, br)) in a.pairs.iter().zip(&b.pairs) {
            assert_eq!(
                a.graph.display(al).to_string(),
                b.graph.display(bl).to_string()
            );
            assert_eq!(
                a.graph.display(ar).to_string(),
                b.graph.display(br).to_string()
            );
        }
    }

    #[test]
    fn property_pairs_are_isomorphic() {
        use mockingbird_comparer::Comparer;
        for seed in 0..4 {
            let (g, h, ty, var, _) = property_pair(seed);
            assert!(Comparer::new(&g, &h).equivalent(ty, var), "seed {seed}");
        }
        let (g, h, ty, var) = choice_heavy_pair();
        assert!(Comparer::new(&g, &h).equivalent(ty, var));
        let (g, h, ty, var) = deep_list_pair();
        assert!(Comparer::new(&g, &h).equivalent(ty, var));
    }
}
