//! Native stub registry + the support runtime for emitted stubs.
//!
//! The second Futamura projection: `stubgen`'s emitter compiles each
//! cached wire program into straight-line Rust source (no opcode
//! fetch/decode loop, no path navigation, constant-width primitive
//! copies). The generated functions are registered here under the same
//! nominal fingerprints the [`ProgramCache`](crate::ProgramCache) uses,
//! so call sites resolve native → opcode VM → interpretive oracle in
//! that order at dispatch time.
//!
//! The `#[inline]` helpers in this module are the generated code's
//! vocabulary: every helper is the body of one VM opcode with the
//! opcode dispatch, path navigation, and size dispatch already
//! specialised away (the `const N` widths make alignment masks and copy
//! lengths compile-time constants).

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

use mockingbird_comparer::{CacheKey, Mode};
use mockingbird_values::{Endian, MValue, PortRef};

use crate::cdr::{CdrError, CdrReader, CdrWriter};
use crate::MAX_NESTING_DEPTH;

/// Which program shape a native function was emitted for. Value
/// programs and invocation programs of the same pair have different
/// opcode streams (the reply child is elided), so they register under
/// distinct keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NativeProgramKind {
    /// A whole-value program (`encode_value`/`decode_value`).
    Value,
    /// An invocation program eliding the destination reply child.
    Invocation { reply_child: u32 },
}

/// Registry key: the program cache's nominal `(left_fp, right_fp,
/// mode, rules_fp)` key plus the program kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NativeKey {
    /// The nominal pair key (same derivation as the opcode cache).
    pub pair: CacheKey,
    /// Value vs invocation shape.
    pub kind: NativeProgramKind,
}

/// Builds a value-program registry key from raw fingerprint parts —
/// the generated code's compact constructor (keeps emitted source to
/// one call instead of three nested struct literals).
#[must_use]
pub const fn value_key(
    left_fp: u128,
    right_fp: u128,
    equivalence: bool,
    rules_fp: u64,
) -> NativeKey {
    NativeKey {
        pair: CacheKey {
            left_fp,
            right_fp,
            mode: if equivalence {
                Mode::Equivalence
            } else {
                Mode::Subtype
            },
            rules_fp,
        },
        kind: NativeProgramKind::Value,
    }
}

/// Builds an invocation-program registry key from raw fingerprint
/// parts (see [`value_key`]).
#[must_use]
pub const fn invocation_key(
    left_fp: u128,
    right_fp: u128,
    equivalence: bool,
    rules_fp: u64,
    reply_child: u32,
) -> NativeKey {
    NativeKey {
        pair: CacheKey {
            left_fp,
            right_fp,
            mode: if equivalence {
                Mode::Equivalence
            } else {
                Mode::Subtype
            },
            rules_fp,
        },
        kind: NativeProgramKind::Invocation { reply_child },
    }
}

/// An emitted-stub node function for the encode direction (internal
/// linkage between generated scopes; `depth` is the nesting guard).
pub type EncNodeFn = fn(&mut CdrWriter, &MValue, usize) -> Result<(), CdrError>;

/// An emitted-stub node function for the decode direction.
pub type DecNodeFn = fn(&mut CdrReader<'_>, usize) -> Result<MValue, CdrError>;

/// An emitted stub's value-encode entry point.
pub type NativeEncodeFn = fn(&mut CdrWriter, &MValue) -> Result<(), CdrError>;

/// An emitted stub's invocation-encode entry point (marshals straight
/// from the borrowed input slice; see `WireProgram::encode_invocation`).
pub type NativeEncodeInvocationFn = fn(&mut CdrWriter, &[MValue], usize) -> Result<(), CdrError>;

/// An emitted stub's decode entry point.
pub type NativeDecodeFn = fn(&mut CdrReader<'_>) -> Result<MValue, CdrError>;

/// The resolved entry points of one emitted stub.
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeStub {
    /// Fused native marshal: source value → destination CDR bytes.
    pub encode: Option<NativeEncodeFn>,
    /// Fused native invocation marshal straight from the borrowed
    /// input slice (see `WireProgram::encode_invocation`).
    pub encode_invocation: Option<NativeEncodeInvocationFn>,
    /// Fused native unmarshal: destination CDR bytes → source value.
    pub decode: Option<NativeDecodeFn>,
}

/// A process-wide table of emitted stubs, keyed by nominal fingerprint.
/// Generated modules register themselves once at startup; encoders
/// probe it per call (one read-lock + hash lookup) before falling back
/// to the opcode VM.
#[derive(Debug, Default)]
pub struct NativeStubRegistry {
    map: RwLock<HashMap<NativeKey, NativeStub>>,
}

impl NativeStubRegistry {
    /// An empty registry (tests; production code uses
    /// [`NativeStubRegistry::global`]).
    #[must_use]
    pub fn new() -> Self {
        NativeStubRegistry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static NativeStubRegistry {
        static GLOBAL: OnceLock<NativeStubRegistry> = OnceLock::new();
        GLOBAL.get_or_init(NativeStubRegistry::default)
    }

    /// Registers (or replaces) the stub for `key`.
    pub fn register(&self, key: NativeKey, stub: NativeStub) {
        self.map.write().unwrap().insert(key, stub);
    }

    /// The stub registered for `key`, if any.
    pub fn lookup(&self, key: &NativeKey) -> Option<NativeStub> {
        self.map.read().unwrap().get(key).copied()
    }

    /// Number of registered stubs.
    pub fn len(&self) -> usize {
        self.map.read().unwrap().len()
    }

    /// Whether no stubs are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// Support runtime for emitted code
// ---------------------------------------------------------------------

#[inline]
fn err<T>(m: impl Into<String>) -> Result<T, CdrError> {
    Err(CdrError(m.into()))
}

/// Depth guard at each generated scope entry (mirrors the VM's
/// per-node check, so hostile recursion depths fail identically).
#[inline]
pub fn check_depth(depth: usize) -> Result<(), CdrError> {
    if depth > MAX_NESTING_DEPTH {
        return err("value nesting exceeds supported depth");
    }
    Ok(())
}

/// Decode-side depth guard (the VM's message differs by one word).
#[inline]
pub fn check_depth_dec(depth: usize) -> Result<(), CdrError> {
    if depth > MAX_NESTING_DEPTH {
        return err("type nesting exceeds supported depth");
    }
    Ok(())
}

/// One nominal-record path step.
#[inline]
pub fn field(v: &MValue, i: usize) -> Result<&MValue, CdrError> {
    let MValue::Record(items) = v else {
        return err(format!("expected a record value, got {v}"));
    };
    items
        .get(i)
        .ok_or_else(|| CdrError(format!("record value lacks field {i}")))
}

/// One transparent singleton-wrapper step (`STEP_CHOICE0` semantics):
/// `Choice {{ index: 0 }}` unwraps, any other index errors, a
/// non-choice value passes through (the interpreter's lenient unwrap).
#[inline]
pub fn unwrap0(v: &MValue) -> Result<&MValue, CdrError> {
    match v {
        MValue::Choice { index: 0, value } => Ok(value),
        MValue::Choice { index, .. } => err(format!("choice index {index} out of 1")),
        other => Ok(other),
    }
}

/// The first path step of an invocation scope: field `i` of the
/// virtual invocation record, reading from the borrowed input slice
/// with the reply-port hole filled by a placeholder.
#[inline]
pub fn arg(inputs: &[MValue], reply_index: usize, i: usize) -> Result<&MValue, CdrError> {
    static PLACEHOLDER_REPLY: MValue = MValue::Port(PortRef(0));
    if i == reply_index {
        return Ok(&PLACEHOLDER_REPLY);
    }
    let idx = if i > reply_index { i - 1 } else { i };
    inputs
        .get(idx)
        .ok_or_else(|| CdrError(format!("invocation lacks input for field {i}")))
}

#[inline]
fn le_bytes<const N: usize>(v: u64) -> [u8; N] {
    let b = v.to_le_bytes();
    let mut out = [0u8; N];
    out.copy_from_slice(&b[..N]);
    out
}

#[inline]
fn be_bytes<const N: usize>(v: u64) -> [u8; N] {
    let b = v.to_be_bytes();
    let mut out = [0u8; N];
    out.copy_from_slice(&b[8 - N..]);
    out
}

#[inline]
fn raw_uint<const N: usize>(r: &mut CdrReader<'_>) -> Result<u64, CdrError> {
    let b = r.get_fixed::<N>()?;
    Ok(match r.endian() {
        Endian::Little => {
            let mut x = [0u8; 8];
            x[..N].copy_from_slice(&b);
            u64::from_le_bytes(x)
        }
        Endian::Big => {
            let mut x = [0u8; 8];
            x[8 - N..].copy_from_slice(&b);
            u64::from_be_bytes(x)
        }
    })
}

#[inline]
const fn mask_n<const N: usize>() -> u64 {
    if N >= 8 {
        u64::MAX
    } else {
        (1u64 << (8 * N)) - 1
    }
}

/// Range-checked fixed-width integer write (the `EncOp::UInt` body
/// with a compile-time width).
#[inline]
pub fn put_int<const N: usize>(
    w: &mut CdrWriter,
    v: &MValue,
    lo: i128,
    hi: i128,
) -> Result<(), CdrError> {
    let MValue::Int(x) = v else {
        return err("expected an integer value");
    };
    if *x < lo || *x > hi {
        return err(format!("integer {x} outside range {lo}..={hi}"));
    }
    let raw = *x as u64 & mask_n::<N>();
    w.put_fixed::<N>(le_bytes::<N>(raw), be_bytes::<N>(raw));
    Ok(())
}

/// IEEE real write; `SINGLE` selects the 4-byte representation.
#[inline]
pub fn put_real<const SINGLE: bool>(w: &mut CdrWriter, v: &MValue) -> Result<(), CdrError> {
    let MValue::Real(x) = v else {
        return err("expected a real value");
    };
    if SINGLE {
        let raw = (*x as f32).to_bits() as u64;
        w.put_fixed::<4>(le_bytes::<4>(raw), be_bytes::<4>(raw));
    } else {
        let raw = x.to_bits();
        w.put_fixed::<8>(le_bytes::<8>(raw), be_bytes::<8>(raw));
    }
    Ok(())
}

/// Character write in a 1- or 4-byte repertoire.
#[inline]
pub fn put_char<const N: usize>(w: &mut CdrWriter, v: &MValue) -> Result<(), CdrError> {
    let MValue::Char(c) = v else {
        return err("expected a character value");
    };
    let code = *c as u32;
    if N == 1 && code > 0xFF {
        return err(format!(
            "character {c:?} not representable in 1-byte repertoire"
        ));
    }
    w.put_fixed::<N>(le_bytes::<N>(code as u64), be_bytes::<N>(code as u64));
    Ok(())
}

/// Unit check: writes nothing, but the value must be `Unit`.
#[inline]
pub fn expect_unit(v: &MValue) -> Result<(), CdrError> {
    let MValue::Unit = v else {
        return err("expected a unit value");
    };
    Ok(())
}

/// 64-bit port-reference write.
#[inline]
pub fn put_port(w: &mut CdrWriter, v: &MValue) -> Result<(), CdrError> {
    let MValue::Port(PortRef(id)) = v else {
        return err("expected a port reference");
    };
    w.put_fixed::<8>(le_bytes::<8>(*id), be_bytes::<8>(*id));
    Ok(())
}

/// Compile-time-constant `u32` discriminant write (transparent
/// singleton wrappers, choice tag chains).
#[inline]
pub fn put_tag(w: &mut CdrWriter, value: u32) {
    w.put_fixed::<4>(le_bytes::<4>(value as u64), be_bytes::<4>(value as u64));
}

/// Dynamic passthrough write: tag string + MBP payload.
#[inline]
pub fn put_dynamic(w: &mut CdrWriter, v: &MValue) -> Result<(), CdrError> {
    let MValue::Dynamic { tag, value } = v else {
        return err("expected a dynamic value");
    };
    w.put_bytes(tag.as_bytes());
    w.put_prefixed(|buf| crate::mbp::encode_into(buf, value));
    Ok(())
}

/// `IntoDynamic` write: inject any value under a compile-time tag.
#[inline]
pub fn put_into_dynamic(w: &mut CdrWriter, tag: &str, v: &MValue) {
    w.put_bytes(tag.as_bytes());
    w.put_prefixed(|buf| crate::mbp::encode_into(buf, v));
}

/// Sequence write: `u32` count then elements through `elem`. Accepts
/// native `List` values and cons-cell Choice chains exactly like the
/// VM (count walk + emit walk, no allocation).
pub fn encode_seq(
    w: &mut CdrWriter,
    v: &MValue,
    elem: EncNodeFn,
    depth: usize,
) -> Result<(), CdrError> {
    match v {
        MValue::List(items) => {
            put_tag(w, items.len() as u32);
            for item in items {
                elem(w, item, depth + 1)?;
            }
            Ok(())
        }
        MValue::Choice { .. } => {
            let mut n = 0u32;
            let mut cur = v;
            loop {
                match cur {
                    MValue::Choice { index: 0, .. } => break,
                    MValue::Choice { index: 1, value } => match value.as_ref() {
                        MValue::Record(cell) if cell.len() == 2 => {
                            n += 1;
                            cur = &cell[1];
                        }
                        other => return err(format!("malformed list cons cell: {other}")),
                    },
                    other => return err(format!("malformed list spine: {other}")),
                }
            }
            put_tag(w, n);
            let mut cur = v;
            loop {
                match cur {
                    MValue::Choice { index: 0, .. } => return Ok(()),
                    MValue::Choice { index: 1, value } => match value.as_ref() {
                        MValue::Record(cell) if cell.len() == 2 => {
                            elem(w, &cell[0], depth + 1)?;
                            cur = &cell[1];
                        }
                        other => return err(format!("malformed list cons cell: {other}")),
                    },
                    other => return err(format!("malformed list spine: {other}")),
                }
            }
        }
        other => err(format!("expected a list value, got {other}")),
    }
}

/// Destructures a choice value into `(index, payload)` for the
/// emitted `match` dispatch.
#[inline]
pub fn choice_parts(v: &MValue) -> Result<(usize, &MValue), CdrError> {
    let MValue::Choice { index, value } = v else {
        return err("expected a choice value");
    };
    Ok((*index, value))
}

/// The error for a source choice index past the dispatch table.
#[inline]
pub fn bad_choice_index(index: usize, arity: usize) -> CdrError {
    CdrError(format!("choice index {index} out of {arity}"))
}

/// The error for an alternative the comparer left unmatched.
#[inline]
pub fn unmatched_alternative(index: usize) -> CdrError {
    CdrError(format!(
        "alternative {index} was not matched by the comparer"
    ))
}

// -- decode direction --------------------------------------------------

/// Range-checked fixed-width integer read.
#[inline]
pub fn get_int<const N: usize, const SIGNED: bool>(
    r: &mut CdrReader<'_>,
    lo: i128,
    hi: i128,
) -> Result<MValue, CdrError> {
    let raw = raw_uint::<N>(r)?;
    let v: i128 = if SIGNED {
        crate::cdr::sign_extend(raw, N) as i128
    } else {
        raw as i128
    };
    if v < lo || v > hi {
        return err(format!("decoded integer {v} outside range {lo}..={hi}"));
    }
    Ok(MValue::Int(v))
}

/// IEEE real read.
#[inline]
pub fn get_real<const SINGLE: bool>(r: &mut CdrReader<'_>) -> Result<MValue, CdrError> {
    Ok(if SINGLE {
        MValue::Real(f32::from_bits(raw_uint::<4>(r)? as u32) as f64)
    } else {
        MValue::Real(f64::from_bits(raw_uint::<8>(r)?))
    })
}

/// Character read in a 1- or 4-byte repertoire.
#[inline]
pub fn get_char<const N: usize>(r: &mut CdrReader<'_>) -> Result<MValue, CdrError> {
    let code = raw_uint::<N>(r)? as u32;
    match char::from_u32(code) {
        Some(c) => Ok(MValue::Char(c)),
        None => err(format!("invalid character code {code}")),
    }
}

/// 64-bit port-reference read.
#[inline]
pub fn get_port(r: &mut CdrReader<'_>) -> Result<MValue, CdrError> {
    Ok(MValue::Port(PortRef(raw_uint::<8>(r)?)))
}

/// Wire discriminant read (choice dispatch).
#[inline]
pub fn get_disc(r: &mut CdrReader<'_>) -> Result<usize, CdrError> {
    Ok(raw_uint::<4>(r)? as usize)
}

/// The error for a wire discriminant past the dispatch table.
#[inline]
pub fn bad_disc(disc: usize, arity: usize) -> CdrError {
    CdrError(format!("choice discriminant {disc} out of {arity}"))
}

/// The error for a wire alternative with no backward counterpart.
#[inline]
pub fn unmatched_disc(disc: usize) -> CdrError {
    CdrError(format!("alternative {disc} has no backward counterpart"))
}

/// Constant wire discriminant check (transparent singleton wrappers).
#[inline]
pub fn expect_tag(r: &mut CdrReader<'_>, expect: u32) -> Result<(), CdrError> {
    let disc = raw_uint::<4>(r)? as u32;
    if disc != expect {
        return err(format!(
            "wire discriminant {disc} where the singleton wrapper requires {expect}"
        ));
    }
    Ok(())
}

/// Dynamic passthrough read: tag + MBP payload.
#[inline]
pub fn get_dynamic(r: &mut CdrReader<'_>) -> Result<MValue, CdrError> {
    let tag = String::from_utf8_lossy(r.get_bytes()?).into_owned();
    let payload = r.get_bytes()?;
    let value =
        crate::mbp::decode(payload).map_err(|e| CdrError(format!("dynamic payload: {e}")))?;
    Ok(MValue::Dynamic {
        tag,
        value: Box::new(value),
    })
}

/// Backward `IntoDynamic` read: parse the wire Dynamic, then re-tag it
/// with the compile-time destination tag.
#[inline]
pub fn get_into_dynamic(r: &mut CdrReader<'_>, tag: &str) -> Result<MValue, CdrError> {
    let inner = get_dynamic(r)?;
    Ok(MValue::Dynamic {
        tag: tag.to_string(),
        value: Box::new(inner),
    })
}

/// Sequence read: `u32` count then elements through `elem`.
pub fn decode_seq(
    r: &mut CdrReader<'_>,
    elem: DecNodeFn,
    depth: usize,
) -> Result<MValue, CdrError> {
    let count = raw_uint::<4>(r)? as usize;
    if count > 1 << 28 {
        return err(format!("implausible sequence length {count}"));
    }
    let mut items = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        items.push(elem(r, depth + 1)?);
    }
    Ok(MValue::List(items))
}

/// One destination choice wrapper (decode rebuild).
#[inline]
pub fn wrap(index: u32, value: MValue) -> MValue {
    MValue::Choice {
        index: index as usize,
        value: Box::new(value),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trips_stubs() {
        use mockingbird_comparer::Mode;
        fn enc(_: &mut CdrWriter, _: &MValue) -> Result<(), CdrError> {
            Ok(())
        }
        let reg = NativeStubRegistry::new();
        let key = NativeKey {
            pair: CacheKey {
                left_fp: 1,
                right_fp: 2,
                mode: Mode::Equivalence,
                rules_fp: 3,
            },
            kind: NativeProgramKind::Value,
        };
        assert!(reg.lookup(&key).is_none());
        reg.register(
            key,
            NativeStub {
                encode: Some(enc),
                ..NativeStub::default()
            },
        );
        let found = reg.lookup(&key).expect("registered");
        assert!(found.encode.is_some() && found.decode.is_none());
        // A different kind is a different slot.
        let inv = NativeKey {
            kind: NativeProgramKind::Invocation { reply_child: 1 },
            ..key
        };
        assert!(reg.lookup(&inv).is_none());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn fixed_width_prims_match_the_generic_path() {
        for endian in [Endian::Little, Endian::Big] {
            let mut a = CdrWriter::new(endian);
            a.put_uint(1, 0xAB);
            a.put_uint(4, 0x1234_5678);
            a.put_uint(8, 0xDEAD_BEEF_0102_0304);
            let mut b = CdrWriter::new(endian);
            put_int::<1>(&mut b, &MValue::Int(0xAB), 0, 0xFF).unwrap();
            put_int::<4>(&mut b, &MValue::Int(0x1234_5678), 0, u32::MAX as i128).unwrap();
            put_int::<8>(
                &mut b,
                &MValue::Int(0xDEAD_BEEF_0102_0304u64 as i64 as i128),
                i64::MIN as i128,
                i64::MAX as i128,
            )
            .unwrap();
            let bytes = a.into_bytes();
            assert_eq!(bytes, b.into_bytes());
            let mut r = CdrReader::new(&bytes, endian);
            assert_eq!(
                get_int::<1, false>(&mut r, 0, 0xFF).unwrap(),
                MValue::Int(0xAB)
            );
            assert_eq!(
                get_int::<4, false>(&mut r, 0, u32::MAX as i128).unwrap(),
                MValue::Int(0x1234_5678)
            );
            assert_eq!(
                get_int::<8, true>(&mut r, i64::MIN as i128, i64::MAX as i128).unwrap(),
                MValue::Int(0xDEAD_BEEF_0102_0304u64 as i64 as i128)
            );
        }
    }
}
