//! Mtype-guided CDR encoding.
//!
//! CDR (the GIOP/IIOP data representation) aligns every primitive to its
//! own size *relative to the start of the stream* and supports both byte
//! orders (the receiver byte-swaps if it must). Aggregates are encoded
//! field-by-field; sequences carry a `u32` length; unions carry a `u32`
//! discriminant.
//!
//! Both ends must agree on the Mtype; the Mtype plays the role the IDL
//! type plays in GIOP.

use std::fmt;

use mockingbird_mtype::{IntRange, MtypeGraph, MtypeId, MtypeKind, RealPrecision, Repertoire};
use mockingbird_values::mvalue::list_element_type;
use mockingbird_values::{Endian, MValue, PortRef};

/// Errors from CDR encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CdrError(pub String);

impl fmt::Display for CdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CDR error: {}", self.0)
    }
}

impl std::error::Error for CdrError {}

fn err<T>(m: impl Into<String>) -> Result<T, CdrError> {
    Err(CdrError(m.into()))
}

/// How many bytes an Integer Mtype occupies on the wire, and whether the
/// encoding is signed.
fn int_repr(r: &IntRange) -> Result<(usize, bool), CdrError> {
    if r.lo >= 0 {
        let hi = r.hi;
        Ok(if hi <= u8::MAX as i128 {
            (1, false)
        } else if hi <= u16::MAX as i128 {
            (2, false)
        } else if hi <= u32::MAX as i128 {
            (4, false)
        } else if hi <= u64::MAX as i128 {
            (8, false)
        } else {
            return err(format!("integer range {r} exceeds 64 bits"));
        })
    } else {
        Ok(if r.lo >= i8::MIN as i128 && r.hi <= i8::MAX as i128 {
            (1, true)
        } else if r.lo >= i16::MIN as i128 && r.hi <= i16::MAX as i128 {
            (2, true)
        } else if r.lo >= i32::MIN as i128 && r.hi <= i32::MAX as i128 {
            (4, true)
        } else if r.lo >= i64::MIN as i128 && r.hi <= i64::MAX as i128 {
            (8, true)
        } else {
            return err(format!("integer range {r} exceeds 64 bits"));
        })
    }
}

fn char_repr(rep: &Repertoire) -> usize {
    match rep {
        Repertoire::Ascii | Repertoire::Latin1 => 1,
        // GIOP 1.1 wchar is 16-bit; we widen to 32 so supplementary-plane
        // glyphs survive (structural, not certified interop).
        Repertoire::Unicode | Repertoire::Custom(_) => 4,
    }
}

/// A CDR output stream.
#[derive(Debug)]
pub struct CdrWriter {
    buf: Vec<u8>,
    endian: Endian,
}

impl CdrWriter {
    /// Creates a writer with the given byte order.
    pub fn new(endian: Endian) -> Self {
        CdrWriter {
            buf: Vec::new(),
            endian,
        }
    }

    /// Creates a writer over an existing (pooled) buffer, reusing its
    /// capacity. The buffer is cleared; the alignment origin is offset 0.
    pub fn from_vec(mut buf: Vec<u8>, endian: Endian) -> Self {
        buf.clear();
        CdrWriter { buf, endian }
    }

    /// The byte order in use.
    pub fn endian(&self) -> Endian {
        self.endian
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length (the alignment origin is offset 0).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Current buffer capacity (pool observability).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Resets the stream to empty, keeping the allocated capacity — the
    /// basis of buffer reuse on the fused marshal path.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    fn align(&mut self, n: usize) {
        while !self.buf.len().is_multiple_of(n) {
            self.buf.push(0);
        }
    }

    pub(crate) fn put_uint(&mut self, size: usize, v: u64) {
        self.align(size);
        match self.endian {
            Endian::Little => {
                for i in 0..size {
                    self.buf.push((v >> (8 * i)) as u8);
                }
            }
            Endian::Big => {
                for i in (0..size).rev() {
                    self.buf.push((v >> (8 * i)) as u8);
                }
            }
        }
    }

    /// Writes a raw `u32` (used by framing).
    pub fn put_u32(&mut self, v: u32) {
        self.put_uint(4, v as u64);
    }

    /// Reserves capacity for at least `n` more bytes (native stubs
    /// pre-size fixed spans so a whole shape encodes without regrowth).
    #[inline]
    pub fn reserve(&mut self, n: usize) {
        self.buf.reserve(n);
    }

    /// Fixed-width primitive write: align to `N`, then append the
    /// byte-order-selected image in one bulk copy. The `const N` makes
    /// the alignment mask and the copy length compile-time constants on
    /// the emitted-stub path (no per-byte loop, no size dispatch).
    #[inline]
    pub fn put_fixed<const N: usize>(&mut self, le: [u8; N], be: [u8; N]) {
        self.align(N);
        match self.endian {
            Endian::Little => self.buf.extend_from_slice(&le),
            Endian::Big => self.buf.extend_from_slice(&be),
        }
    }

    /// Appends raw bytes with no alignment (pre-aligned bulk spans).
    #[inline]
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a `u32`-length-prefixed byte sequence (used by framing).
    pub fn put_bytes(&mut self, data: &[u8]) {
        self.put_u32(data.len() as u32);
        self.buf.extend_from_slice(data);
    }

    /// Writes a `u32`-length-prefixed region produced in place by `f`
    /// (no intermediate buffer): aligns, reserves the length slot, runs
    /// `f` against the underlying buffer, then backpatches the length.
    pub(crate) fn put_prefixed(&mut self, f: impl FnOnce(&mut Vec<u8>)) {
        self.align(4);
        let slot = self.buf.len();
        self.buf.extend_from_slice(&[0u8; 4]);
        f(&mut self.buf);
        let len = (self.buf.len() - slot - 4) as u32;
        let bytes = match self.endian {
            Endian::Little => len.to_le_bytes(),
            Endian::Big => len.to_be_bytes(),
        };
        self.buf[slot..slot + 4].copy_from_slice(&bytes);
    }

    /// Encodes `value` at the Mtype rooted at `ty`.
    ///
    /// # Errors
    ///
    /// Returns [`CdrError`] if the value does not inhabit the Mtype or
    /// the Mtype has no wire representation.
    pub fn put_value(
        &mut self,
        graph: &MtypeGraph,
        ty: MtypeId,
        value: &MValue,
    ) -> Result<(), CdrError> {
        self.put_value_at(graph, ty, value, 0)
    }

    fn put_value_at(
        &mut self,
        graph: &MtypeGraph,
        ty: MtypeId,
        value: &MValue,
        depth: usize,
    ) -> Result<(), CdrError> {
        if depth > crate::MAX_NESTING_DEPTH {
            return err("value nesting exceeds supported depth");
        }
        let ty = graph.resolve(ty);
        match (graph.kind(ty), value) {
            (MtypeKind::Integer(r), MValue::Int(v)) => {
                if !r.contains(*v) {
                    return err(format!("integer {v} outside range {r}"));
                }
                let (size, _signed) = int_repr(r)?;
                self.put_uint(size, *v as u64 & mask(size));
                Ok(())
            }
            (MtypeKind::Character(rep), MValue::Char(c)) => {
                let size = char_repr(rep);
                let code = *c as u32;
                if size == 1 && code > 0xFF {
                    return err(format!(
                        "character {c:?} not representable in 1-byte repertoire"
                    ));
                }
                self.put_uint(size, code as u64);
                Ok(())
            }
            (MtypeKind::Real(p), MValue::Real(v)) => {
                if *p == RealPrecision::SINGLE {
                    self.put_uint(4, (*v as f32).to_bits() as u64);
                } else {
                    self.put_uint(8, v.to_bits());
                }
                Ok(())
            }
            (MtypeKind::Unit, MValue::Unit) => Ok(()),
            (MtypeKind::Record(children), MValue::Record(items)) => {
                if children.len() != items.len() {
                    return err(format!(
                        "record arity: value has {}, type has {}",
                        items.len(),
                        children.len()
                    ));
                }
                for (c, item) in children.clone().iter().zip(items) {
                    self.put_value_at(graph, *c, item, depth + 1)?;
                }
                Ok(())
            }
            (MtypeKind::Choice(_), _) => {
                // Canonical collections encode as u32-prefixed sequences;
                // a Choice-chain value at a list node is normalised first.
                if let Some(elem) = list_element_type(graph, ty) {
                    let items = collect_list(value)?;
                    self.put_uint(4, items.len() as u64);
                    for item in items {
                        self.put_value_at(graph, elem, item, depth + 1)?;
                    }
                    return Ok(());
                }
                let MValue::Choice { index, value } = value else {
                    return err(format!("expected a choice value, got {value}"));
                };
                let MtypeKind::Choice(alts) = graph.kind(ty) else {
                    unreachable!()
                };
                let alts = alts.clone();
                let Some(&alt) = alts.get(*index) else {
                    return err(format!("choice index {index} out of {}", alts.len()));
                };
                self.put_uint(4, *index as u64);
                self.put_value_at(graph, alt, value, depth + 1)
            }
            (MtypeKind::Port(_), MValue::Port(PortRef(id))) => {
                self.put_uint(8, *id);
                Ok(())
            }
            (MtypeKind::Dynamic, MValue::Dynamic { tag, value }) => {
                // Tag string, then a self-describing MBP payload.
                self.put_bytes(tag.as_bytes());
                let payload = crate::mbp::encode(value);
                self.put_bytes(&payload);
                Ok(())
            }
            (kind, value) => err(format!(
                "value {value} does not inhabit {} Mtype on the wire",
                kind.tag()
            )),
        }
    }
}

pub(crate) fn mask(size: usize) -> u64 {
    if size >= 8 {
        u64::MAX
    } else {
        (1u64 << (8 * size)) - 1
    }
}

/// Normalises a list-typed value (native `List` or a Choice chain) into
/// its items.
fn collect_list(value: &MValue) -> Result<Vec<&MValue>, CdrError> {
    match value {
        MValue::List(items) => Ok(items.iter().collect()),
        MValue::Choice { .. } => {
            let mut out = Vec::new();
            let mut cur = value;
            loop {
                match cur {
                    MValue::Choice { index: 0, .. } => return Ok(out),
                    MValue::Choice { index: 1, value } => match value.as_ref() {
                        MValue::Record(cell) if cell.len() == 2 => {
                            out.push(&cell[0]);
                            cur = &cell[1];
                        }
                        other => return err(format!("malformed list cons cell: {other}")),
                    },
                    other => return err(format!("malformed list spine: {other}")),
                }
            }
        }
        other => err(format!("expected a list value, got {other}")),
    }
}

/// A CDR input stream.
#[derive(Debug)]
pub struct CdrReader<'a> {
    data: &'a [u8],
    pos: usize,
    endian: Endian,
}

impl<'a> CdrReader<'a> {
    /// Creates a reader over `data` with the sender's byte order.
    pub fn new(data: &'a [u8], endian: Endian) -> Self {
        CdrReader {
            data,
            pos: 0,
            endian,
        }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn align(&mut self, n: usize) {
        while !self.pos.is_multiple_of(n) {
            self.pos += 1;
        }
    }

    pub(crate) fn get_uint(&mut self, size: usize) -> Result<u64, CdrError> {
        self.align(size);
        if self.pos + size > self.data.len() {
            return err("truncated CDR stream");
        }
        let bytes = &self.data[self.pos..self.pos + size];
        self.pos += size;
        let mut v = 0u64;
        match self.endian {
            Endian::Little => {
                for (i, b) in bytes.iter().enumerate() {
                    v |= (*b as u64) << (8 * i);
                }
            }
            Endian::Big => {
                for b in bytes {
                    v = (v << 8) | *b as u64;
                }
            }
        }
        Ok(v)
    }

    /// Reads a raw `u32` (used by framing).
    ///
    /// # Errors
    ///
    /// Returns [`CdrError`] on truncation.
    pub fn get_u32(&mut self) -> Result<u32, CdrError> {
        Ok(self.get_uint(4)? as u32)
    }

    /// The sender's byte order.
    #[inline]
    pub fn endian(&self) -> Endian {
        self.endian
    }

    /// Fixed-width primitive read: align to `N`, bounds-check once, and
    /// return the `N`-byte image (the caller applies
    /// `uN::from_le_bytes`/`from_be_bytes`). Compile-time `N` keeps the
    /// emitted-stub path free of size dispatch.
    ///
    /// # Errors
    ///
    /// Returns [`CdrError`] on truncation.
    #[inline]
    pub fn get_fixed<const N: usize>(&mut self) -> Result<[u8; N], CdrError> {
        self.align(N);
        if self.pos + N > self.data.len() {
            return err("truncated CDR stream");
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.pos..self.pos + N]);
        self.pos += N;
        Ok(out)
    }

    /// Reads a `u32`-length-prefixed byte sequence.
    ///
    /// # Errors
    ///
    /// Returns [`CdrError`] on truncation.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CdrError> {
        let len = self.get_u32()? as usize;
        if self.pos + len > self.data.len() {
            return err("truncated CDR byte sequence");
        }
        let out = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Decodes a value of the Mtype rooted at `ty`.
    ///
    /// # Errors
    ///
    /// Returns [`CdrError`] on truncation or range violations.
    pub fn get_value(&mut self, graph: &MtypeGraph, ty: MtypeId) -> Result<MValue, CdrError> {
        self.get_value_at(graph, ty, 0)
    }

    fn get_value_at(
        &mut self,
        graph: &MtypeGraph,
        ty: MtypeId,
        depth: usize,
    ) -> Result<MValue, CdrError> {
        if depth > crate::MAX_NESTING_DEPTH {
            return err("type nesting exceeds supported depth");
        }
        let ty = graph.resolve(ty);
        match graph.kind(ty) {
            MtypeKind::Integer(r) => {
                let (size, signed) = int_repr(r)?;
                let raw = self.get_uint(size)?;
                let v: i128 = if signed {
                    sign_extend(raw, size) as i128
                } else {
                    raw as i128
                };
                if !r.contains(v) {
                    return err(format!("decoded integer {v} outside range {r}"));
                }
                Ok(MValue::Int(v))
            }
            MtypeKind::Character(rep) => {
                let size = char_repr(rep);
                let code = self.get_uint(size)? as u32;
                match char::from_u32(code) {
                    Some(c) => Ok(MValue::Char(c)),
                    None => err(format!("invalid character code {code}")),
                }
            }
            MtypeKind::Real(p) => {
                if *p == RealPrecision::SINGLE {
                    Ok(MValue::Real(f32::from_bits(self.get_uint(4)? as u32) as f64))
                } else {
                    Ok(MValue::Real(f64::from_bits(self.get_uint(8)?)))
                }
            }
            MtypeKind::Unit => Ok(MValue::Unit),
            MtypeKind::Record(children) => {
                let children = children.clone();
                let mut items = Vec::with_capacity(children.len());
                for c in children {
                    items.push(self.get_value_at(graph, c, depth + 1)?);
                }
                Ok(MValue::Record(items))
            }
            MtypeKind::Choice(alts) => {
                if let Some(elem) = list_element_type(graph, ty) {
                    let n = self.get_uint(4)? as usize;
                    if n > 1 << 28 {
                        return err(format!("implausible sequence length {n}"));
                    }
                    let mut items = Vec::with_capacity(n.min(1 << 16));
                    for _ in 0..n {
                        items.push(self.get_value_at(graph, elem, depth + 1)?);
                    }
                    return Ok(MValue::List(items));
                }
                let alts = alts.clone();
                let index = self.get_uint(4)? as usize;
                let Some(&alt) = alts.get(index) else {
                    return err(format!("choice discriminant {index} out of {}", alts.len()));
                };
                let value = self.get_value_at(graph, alt, depth + 1)?;
                Ok(MValue::Choice {
                    index,
                    value: Box::new(value),
                })
            }
            MtypeKind::Port(_) => Ok(MValue::Port(PortRef(self.get_uint(8)?))),
            MtypeKind::Dynamic => {
                let tag = String::from_utf8_lossy(self.get_bytes()?).into_owned();
                let payload = self.get_bytes()?;
                let value = crate::mbp::decode(payload)
                    .map_err(|e| CdrError(format!("dynamic payload: {e}")))?;
                Ok(MValue::Dynamic {
                    tag,
                    value: Box::new(value),
                })
            }
            MtypeKind::Recursive(_) => unreachable!("resolve() removes binders"),
        }
    }
}

pub(crate) fn sign_extend(raw: u64, size: usize) -> i64 {
    let shift = 64 - 8 * size as u32;
    ((raw << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_mtype::MtypeGraph;

    fn round_trip(graph: &MtypeGraph, ty: MtypeId, v: &MValue, endian: Endian) -> MValue {
        let mut w = CdrWriter::new(endian);
        w.put_value(graph, ty, v).unwrap();
        let bytes = w.into_bytes();
        let mut r = CdrReader::new(&bytes, endian);
        let out = r.get_value(graph, ty).unwrap();
        assert_eq!(r.remaining(), 0, "whole stream consumed");
        out
    }

    #[test]
    fn primitive_round_trips_both_endians() {
        let mut g = MtypeGraph::new();
        let i8_ = g.integer(IntRange::signed_bits(8));
        let u16_ = g.integer(IntRange::unsigned_bits(16));
        let i32_ = g.integer(IntRange::signed_bits(32));
        let i64_ = g.integer(IntRange::signed_bits(64));
        let f = g.real(RealPrecision::SINGLE);
        let d = g.real(RealPrecision::DOUBLE);
        let c1 = g.character(Repertoire::Latin1);
        let cu = g.character(Repertoire::Unicode);
        for endian in [Endian::Little, Endian::Big] {
            assert_eq!(
                round_trip(&g, i8_, &MValue::Int(-100), endian),
                MValue::Int(-100)
            );
            assert_eq!(
                round_trip(&g, u16_, &MValue::Int(50000), endian),
                MValue::Int(50000)
            );
            assert_eq!(
                round_trip(&g, i32_, &MValue::Int(-123456), endian),
                MValue::Int(-123456)
            );
            assert_eq!(
                round_trip(&g, i64_, &MValue::Int(-(1 << 40)), endian),
                MValue::Int(-(1 << 40))
            );
            assert_eq!(
                round_trip(&g, f, &MValue::Real(1.5), endian),
                MValue::Real(1.5)
            );
            assert_eq!(
                round_trip(&g, d, &MValue::Real(-2.25), endian),
                MValue::Real(-2.25)
            );
            assert_eq!(
                round_trip(&g, c1, &MValue::Char('A'), endian),
                MValue::Char('A')
            );
            assert_eq!(
                round_trip(&g, cu, &MValue::Char('日'), endian),
                MValue::Char('日')
            );
        }
    }

    #[test]
    fn alignment_inserts_padding() {
        // Record(i8, i32): the i32 must start at offset 4.
        let mut g = MtypeGraph::new();
        let a = g.integer(IntRange::signed_bits(8));
        let b = g.integer(IntRange::signed_bits(32));
        let rec = g.record(vec![a, b]);
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(
            &g,
            rec,
            &MValue::Record(vec![MValue::Int(1), MValue::Int(2)]),
        )
        .unwrap();
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 8);
        assert_eq!(&bytes[..4], &[1, 0, 0, 0], "3 padding bytes after the i8");
        assert_eq!(&bytes[4..], &[2, 0, 0, 0]);
    }

    #[test]
    fn big_endian_byte_order_on_the_wire() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::unsigned_bits(32));
        let mut w = CdrWriter::new(Endian::Big);
        w.put_value(&g, i, &MValue::Int(0x0102_0304)).unwrap();
        assert_eq!(w.into_bytes(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn record_choice_and_port_round_trip() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let r = g.real(RealPrecision::SINGLE);
        let ch = g.choice(vec![i, r]);
        let p = g.port(i);
        let rec = g.record(vec![ch, p]);
        let v = MValue::Record(vec![
            MValue::Choice {
                index: 1,
                value: Box::new(MValue::Real(2.5)),
            },
            MValue::Port(PortRef(42)),
        ]);
        assert_eq!(round_trip(&g, rec, &v, Endian::Little), v);
        assert_eq!(round_trip(&g, rec, &v, Endian::Big), v);
    }

    #[test]
    fn lists_encode_as_sequences() {
        let mut g = MtypeGraph::new();
        let r = g.real(RealPrecision::SINGLE);
        let point = g.record(vec![r, r]);
        let list = g.list_of(point);
        let v = MValue::List(vec![
            MValue::Record(vec![MValue::Real(1.0), MValue::Real(2.0)]),
            MValue::Record(vec![MValue::Real(3.0), MValue::Real(4.0)]),
        ]);
        assert_eq!(round_trip(&g, list, &v, Endian::Little), v);
        // Wire size: u32 count + 4 floats = 4 + 16.
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(&g, list, &v).unwrap();
        assert_eq!(w.into_bytes().len(), 20);
    }

    #[test]
    fn choice_chain_lists_are_normalised() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(8));
        let list = g.list_of(i);
        // Build [7] as an explicit Choice chain.
        let chain = MValue::some(MValue::Record(vec![MValue::Int(7), MValue::null()]));
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(&g, list, &chain).unwrap();
        let bytes = w.into_bytes();
        let mut r = CdrReader::new(&bytes, Endian::Little);
        assert_eq!(
            r.get_value(&g, list).unwrap(),
            MValue::List(vec![MValue::Int(7)])
        );
    }

    #[test]
    fn nullable_round_trip() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let n = g.nullable(i);
        assert_eq!(
            round_trip(&g, n, &MValue::null(), Endian::Little),
            MValue::null()
        );
        assert_eq!(
            round_trip(&g, n, &MValue::some(MValue::Int(3)), Endian::Big),
            MValue::some(MValue::Int(3))
        );
    }

    #[test]
    fn strings_round_trip() {
        let mut g = MtypeGraph::new();
        let c = g.character(Repertoire::Unicode);
        let s = g.list_of(c);
        let v = MValue::string("héllo, wörld");
        assert_eq!(round_trip(&g, s, &v, Endian::Little), v);
    }

    #[test]
    fn dynamic_round_trip() {
        let mut g = MtypeGraph::new();
        let d = g.dynamic();
        let v = MValue::Dynamic {
            tag: "Record(Int{0..=1})".into(),
            value: Box::new(MValue::Record(vec![MValue::Int(1)])),
        };
        assert_eq!(round_trip(&g, d, &v, Endian::Little), v);
    }

    #[test]
    fn decode_errors_on_truncation_and_bad_discriminants() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let mut r = CdrReader::new(&[1, 2], Endian::Little);
        assert!(r.get_value(&g, i).is_err());

        let ch = g.choice(vec![i, i]);
        let mut w = CdrWriter::new(Endian::Little);
        w.put_u32(9); // bad discriminant
        w.put_u32(0);
        let bytes = w.into_bytes();
        let mut r = CdrReader::new(&bytes, Endian::Little);
        assert!(r.get_value(&g, ch).is_err());
    }

    #[test]
    fn hostile_deeply_nested_buffer_is_rejected_not_overflowed() {
        // Nullable(T) is Choice(Unit, T); Nullable(Nullable(...)) lets a
        // hostile peer express unbounded *value* nesting in a tiny type.
        // A buffer of 3000 `some(...)` discriminants must hit the depth
        // guard and return CdrError instead of exhausting the stack.
        let mut g = MtypeGraph::new();
        let n = g.recursive(|g, slf| {
            let u = g.unit();
            g.choice(vec![u, slf])
        });
        let hostile: Vec<u8> = (0..3000).flat_map(|_| [1u8, 0, 0, 0]).collect();
        let mut r = CdrReader::new(&hostile, Endian::Little);
        let err = r.get_value(&g, n).unwrap_err();
        assert!(err.0.contains("depth"), "{err}");
        // A depth well under the guard still decodes.
        let mut w = CdrWriter::new(Endian::Little);
        let mut v = MValue::Choice {
            index: 0,
            value: Box::new(MValue::Unit),
        };
        for _ in 0..100 {
            v = MValue::Choice {
                index: 1,
                value: Box::new(v),
            };
        }
        w.put_value(&g, n, &v).unwrap();
        let bytes = w.into_bytes();
        let mut r = CdrReader::new(&bytes, Endian::Little);
        assert_eq!(r.get_value(&g, n).unwrap(), v);
    }

    #[test]
    fn encode_rejects_out_of_range() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::boolean());
        let mut w = CdrWriter::new(Endian::Little);
        assert!(w.put_value(&g, i, &MValue::Int(2)).is_err());
    }
}
