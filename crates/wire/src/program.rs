//! Fused wire programs: coercion plans compiled to flat opcode buffers.
//!
//! The paper's central claim is that the comparer's recorded
//! correspondence plus the concrete wire representations *determine* the
//! coercion, so stubs can run straight-line marshalling code instead of
//! interpreting the plan per call. This module is that compilation step
//! (the first Futamura projection of the plan interpreter): a
//! [`CoercionPlan`] pair is lowered **once** into a [`WireProgram`] — a
//! flat `Vec` of opcodes per program node — and each call then makes a
//! *single pass* over the native value, writing CDR bytes directly
//! (`marshal(native) → bytes`) or parsing bytes directly back into the
//! destination-side value (`bytes → unmarshal(native)`), with **no
//! intermediate `MValue` tree** on the fused path.
//!
//! Soundness posture: the interpretive pipeline
//! (`CoercionPlan::convert` + `CdrWriter::put_value` /
//! `CdrReader::get_value` + `convert_back`) remains the oracle. The
//! compiler only emits a program when it can replicate the interpreter's
//! behaviour exactly; anything it is not certain about — semantic
//! bridges, transparent singleton `Choice`s, nested-choice flattening
//! that diverges from the nominal alternatives — returns
//! [`Unsupported`] and the caller falls back to the oracle. Equivalence
//! is enforced by proptests in `tests/fused_programs.rs`.
//!
//! Program shape: a program is a vector of nodes; node 0 is the root.
//! Each node covers one matched `(left, right)` pair whose value is a
//! fresh *scope* (the whole message, one choice payload, one sequence
//! element). Record nesting is compiled away: leaf opcodes carry the
//! access path into the source value, and the emit order *is* the wire
//! order, so records cost nothing at run time. `Choice` opcodes carry a
//! dispatch table of arms; `Seq` opcodes reference the element node.
//! Recursive types tie the knot through the node table (a choice arm or
//! sequence element may reference an enclosing node), and the executors
//! carry a bounded recursion frame ([`crate::MAX_NESTING_DEPTH`]).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use mockingbird_artifact::{ArtifactKind, ArtifactStore};
use mockingbird_comparer::{
    resolve_transparent, CacheKey, Entry, PrimCoercion, RecordFlatten, RuleSet,
};
use mockingbird_mtype::canon::flatten_choice;
use mockingbird_mtype::{IntRange, MtypeGraph, MtypeId, MtypeKind, RealPrecision, Repertoire};
use mockingbird_plan::CoercionPlan;
use mockingbird_values::mvalue::list_element_type;
use mockingbird_values::{MValue, PortRef};

use crate::cdr::{mask, sign_extend, CdrError, CdrReader, CdrWriter};
use crate::MAX_NESTING_DEPTH;

/// Why the program compiler declined a pair. Every decline carries one
/// of these classes so batch pipelines can attribute interpretive
/// fallbacks instead of reporting an opaque count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum FallbackKind {
    /// Semantic bridges run hand-written converters.
    Semantic,
    /// A transparent singleton-choice chain the compiler cannot replay
    /// (e.g. a dedup-collapsed singleton with several nominal children).
    TransparentChoice,
    /// The comparer's flattened choice view cannot be reconciled with
    /// the nominal alternative tree.
    ChoiceShape,
    /// A list spine matched against a non-list choice.
    ListShape,
    /// A record cycle with no intervening choice (cannot be inlined).
    RecordCycle,
    /// An integer range wider than 64 bits.
    WideInt,
    /// The program would exceed the node-table budget.
    NodeBudget,
    /// Record nesting exceeds the supported depth.
    DepthBound,
    /// The correspondence entry has a shape the compiler cannot replay
    /// (flatten/permutation divergence, unresolved binders, ...).
    EntryShape,
}

impl FallbackKind {
    /// Number of known kinds (sizing per-kind counter arrays).
    pub const COUNT: usize = 9;

    /// Dense index of this kind inside [`FallbackKind::all`].
    #[must_use]
    pub fn index(self) -> usize {
        FallbackKind::all()
            .iter()
            .position(|&k| k == self)
            .expect("every kind appears in all()")
    }

    /// Stable snake_case label (log lines, JSON reports).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FallbackKind::Semantic => "semantic_bridge",
            FallbackKind::TransparentChoice => "transparent_choice",
            FallbackKind::ChoiceShape => "choice_shape",
            FallbackKind::ListShape => "list_shape",
            FallbackKind::RecordCycle => "record_cycle",
            FallbackKind::WideInt => "wide_int",
            FallbackKind::NodeBudget => "node_budget",
            FallbackKind::DepthBound => "depth_bound",
            FallbackKind::EntryShape => "entry_shape",
        }
    }

    /// Every kind, in label order (for zero-filled breakdowns).
    #[must_use]
    pub fn all() -> &'static [FallbackKind] {
        &[
            FallbackKind::Semantic,
            FallbackKind::TransparentChoice,
            FallbackKind::ChoiceShape,
            FallbackKind::ListShape,
            FallbackKind::RecordCycle,
            FallbackKind::WideInt,
            FallbackKind::NodeBudget,
            FallbackKind::DepthBound,
            FallbackKind::EntryShape,
        ]
    }
}

impl fmt::Display for FallbackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The compiler declined this pair; callers fall back to the
/// interpretive oracle. Carries the decline class ([`FallbackKind`])
/// plus a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unsupported {
    /// The decline class, for fallback attribution.
    pub kind: FallbackKind,
    /// Human-readable detail.
    pub reason: String,
}

impl Unsupported {
    /// A new decline with an explicit class.
    pub fn new(kind: FallbackKind, reason: impl Into<String>) -> Self {
        Unsupported {
            kind,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for Unsupported {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan not compilable to a wire program: {}", self.reason)
    }
}

impl std::error::Error for Unsupported {}

fn unsup<T>(kind: FallbackKind, m: impl Into<String>) -> Result<T, Unsupported> {
    Err(Unsupported::new(kind, m))
}

fn err<T>(m: impl Into<String>) -> Result<T, CdrError> {
    Err(CdrError(m.into()))
}

/// A nominal-record access path into the source value (child indexes).
/// [`STEP_CHOICE0`] entries step through a transparent singleton-choice
/// wrapper instead of a record field.
pub type Path = Box<[u16]>;

/// Path sentinel: descend through a `Choice { index: 0 }` wrapper (a
/// transparent singleton layer the comparer resolved through). Values
/// produced against the collapsed view pass through unchanged, matching
/// the interpreter's lenient unwrap.
pub const STEP_CHOICE0: u16 = u16::MAX;

/// One encode-side opcode: fetch the source sub-value at `path` (record
/// child indexes from the node's scope value) and write it in the
/// destination representation. Ops run in wire order.
#[derive(Debug, Clone, PartialEq)]
pub enum EncOp {
    /// Fixed-width integer in the destination's representation, with the
    /// destination's range check (mirrors `CdrWriter::put_value`).
    UInt {
        size: u8,
        lo: i128,
        hi: i128,
        path: Path,
    },
    /// IEEE real; `single` selects the 4-byte representation.
    Real { single: bool, path: Path },
    /// Character code in a 1- or 4-byte repertoire.
    Char { size: u8, path: Path },
    /// Unit: writes nothing, but the value must be `Unit`.
    Unit { path: Path },
    /// 64-bit port reference.
    Port { path: Path },
    /// Dynamic passthrough: tag string + MBP payload, written in place.
    Dynamic { path: Path },
    /// Inject an arbitrary value into a Dynamic target with a
    /// compile-time tag (subtype mode's `IntoDynamic` coercion).
    IntoDynamic { tag: Arc<str>, path: Path },
    /// `u32` count + elements, each through the element node.
    Seq { elem: u32, path: Path },
    /// Destination discriminant(s) + payload through the arm's node.
    /// Arms are indexed by the *source* nominal choice index; nested
    /// arms replay flattened-through inner choices.
    Choice { arms: Box<[EncArm]>, path: Path },
    /// A compile-time constant `u32` discriminant (a transparent
    /// singleton wrapper the destination side re-adds). Reads nothing
    /// from the source value.
    Tag { value: u32 },
}

/// One encode dispatch-table arm, indexed by the source value's nominal
/// choice index at its level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncArm {
    /// The comparer left this alternative unmatched; taking it errors,
    /// like the oracle.
    Unmatched,
    /// A matched alternative: write the destination's nominal
    /// discriminant chain (`tags`, outermost first), then the payload
    /// through `node`.
    Leaf { tags: Box<[u32]>, node: u32 },
    /// A nested choice the comparer's flatten descended through:
    /// dispatch again on the inner value without consuming wire bytes.
    Nested { arms: Box<[EncArm]> },
}

/// One decode-side opcode: parse bytes in wire order and store the
/// (already destination-side) value into a slot of the node frame.
#[derive(Debug, Clone, PartialEq)]
pub enum DecOp {
    UInt {
        size: u8,
        signed: bool,
        lo: i128,
        hi: i128,
        slot: u32,
    },
    Real {
        single: bool,
        slot: u32,
    },
    Char {
        size: u8,
        slot: u32,
    },
    Port {
        slot: u32,
    },
    /// Dynamic passthrough: tag + MBP payload.
    Dynamic {
        slot: u32,
    },
    /// Backward `IntoDynamic`: parse the wire Dynamic, then wrap it with
    /// the compile-time destination tag (replicating the oracle).
    IntoDynamic {
        tag: Arc<str>,
        slot: u32,
    },
    Seq {
        elem: u32,
        slot: u32,
    },
    /// Arms indexed by the wire discriminant(s).
    Choice {
        arms: Box<[DecArm]>,
        slot: u32,
    },
    /// A constant wire discriminant (a transparent singleton wrapper on
    /// the wire side): read a `u32` and require it to equal `expect`.
    Tag {
        expect: u32,
    },
}

/// One decode dispatch-table arm, indexed by the wire discriminant at
/// its level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecArm {
    /// A wire alternative with no backward counterpart; erroring, like
    /// the oracle.
    Unmatched,
    /// A matched alternative: parse the payload through `node`, then
    /// wrap it in the destination's nominal choice chain (`wraps`,
    /// outermost first).
    Leaf { wraps: Box<[u32]>, node: u32 },
    /// A nested wire choice flattened through by the comparer: read
    /// another discriminant and dispatch again.
    Nested { arms: Box<[DecArm]> },
}

/// Post-order value builder: after a node's `DecOp`s fill the slot
/// frame, these reconstruct the destination-side nominal value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildOp {
    /// Push the slot's value.
    Slot(u32),
    /// Push `Unit` (a unit-eliminated or leaf unit position).
    Unit,
    /// Pop `arity` values, push a `Record` of them in push order.
    Record { arity: u32 },
    /// Pop one value, push `Choice { index, value }` (re-adding a
    /// transparent singleton wrapper the comparer resolved through).
    Wrap { index: u32 },
}

/// One compiled scope: a matched pair's opcode buffers.
#[derive(Debug, Clone, Default, PartialEq)]
struct Node {
    enc: Vec<EncOp>,
    dec: Vec<DecOp>,
    build: Vec<BuildOp>,
    slots: u32,
}

/// A compiled wire program for one matched pair of a plan (or one type,
/// for the identity case): encode runs source value → destination CDR
/// bytes in one pass; decode runs wire bytes → source-side value in one
/// pass (equivalence plans only).
#[derive(Debug, Clone, PartialEq)]
pub struct WireProgram {
    nodes: Vec<Node>,
    /// Whether the decode direction was compiled (false for subtype
    /// plans and reply-port-elided argument programs).
    two_way: bool,
}

impl WireProgram {
    /// Compiles the plan at its roots. See [`WireProgram::compile_pair`].
    ///
    /// # Errors
    ///
    /// Returns [`Unsupported`] when the pair needs the interpreter.
    pub fn compile(plan: &CoercionPlan) -> Result<WireProgram, Unsupported> {
        Self::compile_pair(plan, plan.left_root(), plan.right_root())
    }

    /// Compiles the plan at an interior matched pair: encode converts a
    /// left-side value and writes the right-side CDR bytes; decode (for
    /// equivalence plans) parses right-side bytes back into a left-side
    /// value.
    ///
    /// # Errors
    ///
    /// Returns [`Unsupported`] when the pair needs the interpreter.
    pub fn compile_pair(
        plan: &CoercionPlan,
        l: MtypeId,
        r: MtypeId,
    ) -> Result<WireProgram, Unsupported> {
        Compiler::new(Source::Planned(plan)).finish(l, r, None)
    }

    /// As [`WireProgram::compile_pair`] for an invocation-record pair,
    /// eliding the destination child at `skip_right_child` (the reply
    /// port, which never crosses the wire). The result is encode-only.
    ///
    /// # Errors
    ///
    /// Returns [`Unsupported`] when the pair needs the interpreter.
    pub fn compile_invocation(
        plan: &CoercionPlan,
        l: MtypeId,
        r: MtypeId,
        skip_right_child: usize,
    ) -> Result<WireProgram, Unsupported> {
        Compiler::new(Source::Planned(plan)).finish(l, r, Some(skip_right_child))
    }

    /// Compiles the identity program for one type: the fused equivalent
    /// of `put_value`/`get_value` with no coercion (the runtime's
    /// `WireOp` path, where both ends share the Mtype).
    ///
    /// # Errors
    ///
    /// Returns [`Unsupported`] for types the compiler declines (e.g.
    /// record cycles with no intervening choice).
    pub fn identity(graph: &MtypeGraph, ty: MtypeId) -> Result<WireProgram, Unsupported> {
        Compiler::new(Source::Identity(graph)).finish(ty, ty, None)
    }

    /// Whether the decode direction is available.
    pub fn two_way(&self) -> bool {
        self.two_way
    }

    /// Number of compiled scopes (root + choice arms + sequence
    /// elements).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total opcode count across all scopes and directions.
    pub fn op_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.enc.len() + n.dec.len() + n.build.len())
            .sum()
    }

    /// One-pass fused marshal: writes the destination-side CDR bytes of
    /// the source-side `value`. Allocation-free once the writer's buffer
    /// has warmed to the message size.
    ///
    /// # Errors
    ///
    /// Returns [`CdrError`] when the value does not inhabit the source
    /// type or an unmatched alternative is taken.
    pub fn encode_value(&self, w: &mut CdrWriter, value: &MValue) -> Result<(), CdrError> {
        self.run_enc(0, Scope::Value(value), w, 0)
    }

    /// One-pass fused marshal for an invocation program (see
    /// [`WireProgram::compile_invocation`]): encodes straight from the
    /// borrowed input slice, treating it as the source invocation record
    /// with a placeholder reply port at `reply_index` — no values are
    /// cloned or assembled.
    ///
    /// # Errors
    ///
    /// As [`encode_value`](WireProgram::encode_value).
    pub fn encode_invocation(
        &self,
        w: &mut CdrWriter,
        inputs: &[MValue],
        reply_index: usize,
    ) -> Result<(), CdrError> {
        self.run_enc(
            0,
            Scope::Invocation {
                inputs,
                reply_index,
            },
            w,
            0,
        )
    }

    /// One-pass fused unmarshal: parses destination-side CDR bytes into
    /// the source-side value.
    ///
    /// # Errors
    ///
    /// Returns [`CdrError`] on truncation, range violations, or when the
    /// program was compiled one-way.
    pub fn decode_value(&self, r: &mut CdrReader<'_>) -> Result<MValue, CdrError> {
        if !self.two_way {
            return err("this wire program was compiled one-way (encode only)");
        }
        self.run_dec(0, r, 0)
    }

    fn run_enc(
        &self,
        node: u32,
        scope: Scope<'_>,
        w: &mut CdrWriter,
        depth: usize,
    ) -> Result<(), CdrError> {
        if depth > MAX_NESTING_DEPTH {
            return err("value nesting exceeds supported depth");
        }
        for op in &self.nodes[node as usize].enc {
            match op {
                EncOp::UInt { size, lo, hi, path } => {
                    let MValue::Int(v) = scope.nav(path)? else {
                        return err("expected an integer value");
                    };
                    if *v < *lo || *v > *hi {
                        return err(format!("integer {v} outside range {lo}..={hi}"));
                    }
                    w.put_uint(*size as usize, *v as u64 & mask(*size as usize));
                }
                EncOp::Real { single, path } => {
                    let MValue::Real(v) = scope.nav(path)? else {
                        return err("expected a real value");
                    };
                    if *single {
                        w.put_uint(4, (*v as f32).to_bits() as u64);
                    } else {
                        w.put_uint(8, v.to_bits());
                    }
                }
                EncOp::Char { size, path } => {
                    let MValue::Char(c) = scope.nav(path)? else {
                        return err("expected a character value");
                    };
                    let code = *c as u32;
                    if *size == 1 && code > 0xFF {
                        return err(format!(
                            "character {c:?} not representable in 1-byte repertoire"
                        ));
                    }
                    w.put_uint(*size as usize, code as u64);
                }
                EncOp::Unit { path } => {
                    let MValue::Unit = scope.nav(path)? else {
                        return err("expected a unit value");
                    };
                }
                EncOp::Port { path } => {
                    let MValue::Port(PortRef(id)) = scope.nav(path)? else {
                        return err("expected a port reference");
                    };
                    w.put_uint(8, *id);
                }
                EncOp::Dynamic { path } => {
                    let MValue::Dynamic { tag, value } = scope.nav(path)? else {
                        return err("expected a dynamic value");
                    };
                    w.put_bytes(tag.as_bytes());
                    w.put_prefixed(|buf| crate::mbp::encode_into(buf, value));
                }
                EncOp::IntoDynamic { tag, path } => {
                    let v = scope.nav(path)?;
                    w.put_bytes(tag.as_bytes());
                    w.put_prefixed(|buf| crate::mbp::encode_into(buf, v));
                }
                EncOp::Seq { elem, path } => {
                    let v = scope.nav(path)?;
                    match v {
                        MValue::List(items) => {
                            w.put_uint(4, items.len() as u64);
                            for item in items {
                                self.run_enc(*elem, Scope::Value(item), w, depth + 1)?;
                            }
                        }
                        // Choice-chain spines are accepted like
                        // `put_value`: count, then emit — two walks, no
                        // allocation.
                        MValue::Choice { .. } => {
                            let n = chain_len(v)?;
                            w.put_uint(4, n as u64);
                            let mut cur = v;
                            loop {
                                match cur {
                                    MValue::Choice { index: 0, .. } => break,
                                    MValue::Choice { index: 1, value } => match value.as_ref() {
                                        MValue::Record(cell) if cell.len() == 2 => {
                                            self.run_enc(
                                                *elem,
                                                Scope::Value(&cell[0]),
                                                w,
                                                depth + 1,
                                            )?;
                                            cur = &cell[1];
                                        }
                                        other => {
                                            return err(format!(
                                                "malformed list cons cell: {other}"
                                            ))
                                        }
                                    },
                                    other => return err(format!("malformed list spine: {other}")),
                                }
                            }
                        }
                        other => return err(format!("expected a list value, got {other}")),
                    }
                }
                EncOp::Choice { arms, path } => {
                    self.enc_choice(arms, scope.nav(path)?, w, depth)?;
                }
                EncOp::Tag { value } => {
                    w.put_uint(4, *value as u64);
                }
            }
        }
        Ok(())
    }

    /// Dispatches one (possibly nested) encode choice: the value's
    /// nominal index selects an arm; nested arms descend into inner
    /// choice wrappers the comparer's flatten collapsed.
    fn enc_choice(
        &self,
        arms: &[EncArm],
        v: &MValue,
        w: &mut CdrWriter,
        depth: usize,
    ) -> Result<(), CdrError> {
        let MValue::Choice { index, value } = v else {
            return err("expected a choice value");
        };
        let Some(arm) = arms.get(*index) else {
            return err(format!("choice index {index} out of {}", arms.len()));
        };
        match arm {
            EncArm::Unmatched => err(format!(
                "alternative {index} was not matched by the comparer"
            )),
            EncArm::Leaf { tags, node } => {
                for t in tags.iter() {
                    w.put_uint(4, *t as u64);
                }
                self.run_enc(*node, Scope::Value(value), w, depth + 1)
            }
            EncArm::Nested { arms } => self.enc_choice(arms, value, w, depth),
        }
    }

    fn run_dec(&self, node: u32, r: &mut CdrReader<'_>, depth: usize) -> Result<MValue, CdrError> {
        if depth > MAX_NESTING_DEPTH {
            return err("type nesting exceeds supported depth");
        }
        let n = &self.nodes[node as usize];
        let mut slots: Vec<MValue> = vec![MValue::Unit; n.slots as usize];
        for op in &n.dec {
            match op {
                DecOp::UInt {
                    size,
                    signed,
                    lo,
                    hi,
                    slot,
                } => {
                    let raw = r.get_uint(*size as usize)?;
                    let v: i128 = if *signed {
                        sign_extend(raw, *size as usize) as i128
                    } else {
                        raw as i128
                    };
                    if v < *lo || v > *hi {
                        return err(format!("decoded integer {v} outside range {lo}..={hi}"));
                    }
                    slots[*slot as usize] = MValue::Int(v);
                }
                DecOp::Real { single, slot } => {
                    slots[*slot as usize] = if *single {
                        MValue::Real(f32::from_bits(r.get_uint(4)? as u32) as f64)
                    } else {
                        MValue::Real(f64::from_bits(r.get_uint(8)?))
                    };
                }
                DecOp::Char { size, slot } => {
                    let code = r.get_uint(*size as usize)? as u32;
                    let Some(c) = char::from_u32(code) else {
                        return err(format!("invalid character code {code}"));
                    };
                    slots[*slot as usize] = MValue::Char(c);
                }
                DecOp::Port { slot } => {
                    slots[*slot as usize] = MValue::Port(PortRef(r.get_uint(8)?));
                }
                DecOp::Dynamic { slot } => {
                    slots[*slot as usize] = parse_dynamic(r)?;
                }
                DecOp::IntoDynamic { tag, slot } => {
                    let inner = parse_dynamic(r)?;
                    slots[*slot as usize] = MValue::Dynamic {
                        tag: tag.to_string(),
                        value: Box::new(inner),
                    };
                }
                DecOp::Seq { elem, slot } => {
                    let count = r.get_uint(4)? as usize;
                    if count > 1 << 28 {
                        return err(format!("implausible sequence length {count}"));
                    }
                    let mut items = Vec::with_capacity(count.min(1 << 16));
                    for _ in 0..count {
                        items.push(self.run_dec(*elem, r, depth + 1)?);
                    }
                    slots[*slot as usize] = MValue::List(items);
                }
                DecOp::Choice { arms, slot } => {
                    slots[*slot as usize] = self.dec_choice(arms, r, depth)?;
                }
                DecOp::Tag { expect } => {
                    let disc = r.get_uint(4)? as u32;
                    if disc != *expect {
                        return err(format!(
                            "wire discriminant {disc} where the singleton wrapper requires {expect}"
                        ));
                    }
                }
            }
        }
        let mut stack: Vec<MValue> = Vec::with_capacity(8);
        for op in &n.build {
            match op {
                BuildOp::Slot(s) => {
                    stack.push(std::mem::replace(&mut slots[*s as usize], MValue::Unit))
                }
                BuildOp::Unit => stack.push(MValue::Unit),
                BuildOp::Record { arity } => {
                    let at = stack
                        .len()
                        .checked_sub(*arity as usize)
                        .ok_or_else(|| CdrError("malformed build program".into()))?;
                    let items: Vec<MValue> = stack.drain(at..).collect();
                    stack.push(MValue::Record(items));
                }
                BuildOp::Wrap { index } => {
                    let inner = stack
                        .pop()
                        .ok_or_else(|| CdrError("malformed build program".into()))?;
                    stack.push(MValue::Choice {
                        index: *index as usize,
                        value: Box::new(inner),
                    });
                }
            }
        }
        match (stack.pop(), stack.is_empty()) {
            (Some(v), true) => Ok(v),
            _ => err("malformed build program"),
        }
    }

    /// Dispatches one (possibly nested) decode choice: wire
    /// discriminants select arms level by level; the leaf's payload is
    /// re-wrapped in the destination's nominal choice chain.
    fn dec_choice(
        &self,
        arms: &[DecArm],
        r: &mut CdrReader<'_>,
        depth: usize,
    ) -> Result<MValue, CdrError> {
        let disc = r.get_uint(4)? as usize;
        let Some(arm) = arms.get(disc) else {
            return err(format!("choice discriminant {disc} out of {}", arms.len()));
        };
        match arm {
            DecArm::Unmatched => err(format!("alternative {disc} has no backward counterpart")),
            DecArm::Leaf { wraps, node } => {
                let value = self.run_dec(*node, r, depth + 1)?;
                Ok(wraps.iter().rev().fold(value, |acc, &i| MValue::Choice {
                    index: i as usize,
                    value: Box::new(acc),
                }))
            }
            DecArm::Nested { arms } => self.dec_choice(arms, r, depth),
        }
    }
}

/// What an encode node's paths navigate from: a materialized value, or
/// a virtual invocation record over a borrowed input slice with the
/// reply-port hole filled by a placeholder. The latter lets client stubs
/// marshal straight from `&[MValue]` inputs without cloning them into a
/// temporary record.
#[derive(Clone, Copy)]
enum Scope<'v> {
    Value(&'v MValue),
    Invocation {
        inputs: &'v [MValue],
        reply_index: usize,
    },
}

static PLACEHOLDER_REPLY: MValue = MValue::Port(PortRef(0));

impl<'v> Scope<'v> {
    fn nav(self, path: &[u16]) -> Result<&'v MValue, CdrError> {
        match self {
            Scope::Value(v) => nav(v, path),
            Scope::Invocation {
                inputs,
                reply_index,
            } => {
                let Some((&first, rest)) = path.split_first() else {
                    return err("invocation scope reached without a field path");
                };
                let i = first as usize;
                let v = if i == reply_index {
                    &PLACEHOLDER_REPLY
                } else {
                    let idx = if i > reply_index { i - 1 } else { i };
                    inputs
                        .get(idx)
                        .ok_or_else(|| CdrError(format!("invocation lacks input for field {i}")))?
                };
                nav(v, rest)
            }
        }
    }
}

/// Navigates a nominal record path from the scope value.
/// [`STEP_CHOICE0`] steps descend through transparent singleton-choice
/// wrappers: a `Choice { index: 0 }` is unwrapped, any other index
/// errors (the wrapper has exactly one alternative), and a non-choice
/// value passes through unchanged — the interpreter's lenient unwrap
/// for values produced against the collapsed view.
fn nav<'v>(scope: &'v MValue, path: &[u16]) -> Result<&'v MValue, CdrError> {
    let mut cur = scope;
    for &i in path {
        if i == STEP_CHOICE0 {
            match cur {
                MValue::Choice { index: 0, value } => cur = value,
                MValue::Choice { index, .. } => {
                    return err(format!("choice index {index} out of 1"));
                }
                _ => {}
            }
            continue;
        }
        let MValue::Record(items) = cur else {
            return err(format!("expected a record value, got {cur}"));
        };
        cur = items
            .get(i as usize)
            .ok_or_else(|| CdrError(format!("record value lacks field {i}")))?;
    }
    Ok(cur)
}

fn chain_len(v: &MValue) -> Result<usize, CdrError> {
    let mut n = 0usize;
    let mut cur = v;
    loop {
        match cur {
            MValue::Choice { index: 0, .. } => return Ok(n),
            MValue::Choice { index: 1, value } => match value.as_ref() {
                MValue::Record(cell) if cell.len() == 2 => {
                    n += 1;
                    cur = &cell[1];
                }
                other => return err(format!("malformed list cons cell: {other}")),
            },
            other => return err(format!("malformed list spine: {other}")),
        }
    }
}

fn parse_dynamic(r: &mut CdrReader<'_>) -> Result<MValue, CdrError> {
    let tag = String::from_utf8_lossy(r.get_bytes()?).into_owned();
    let payload = r.get_bytes()?;
    let value =
        crate::mbp::decode(payload).map_err(|e| CdrError(format!("dynamic payload: {e}")))?;
    Ok(MValue::Dynamic {
        tag,
        value: Box::new(value),
    })
}

fn int_repr(r: &IntRange) -> Result<(u8, bool), Unsupported> {
    if r.lo >= 0 {
        Ok(if r.hi <= u8::MAX as i128 {
            (1, false)
        } else if r.hi <= u16::MAX as i128 {
            (2, false)
        } else if r.hi <= u32::MAX as i128 {
            (4, false)
        } else if r.hi <= u64::MAX as i128 {
            (8, false)
        } else {
            return unsup(FallbackKind::WideInt, "integer range exceeds 64 bits");
        })
    } else {
        Ok(if r.lo >= i8::MIN as i128 && r.hi <= i8::MAX as i128 {
            (1, true)
        } else if r.lo >= i16::MIN as i128 && r.hi <= i16::MAX as i128 {
            (2, true)
        } else if r.lo >= i32::MIN as i128 && r.hi <= i32::MAX as i128 {
            (4, true)
        } else if r.lo >= i64::MIN as i128 && r.hi <= i64::MAX as i128 {
            (8, true)
        } else {
            return unsup(FallbackKind::WideInt, "integer range exceeds 64 bits");
        })
    }
}

fn char_size(rep: &Repertoire) -> u8 {
    match rep {
        Repertoire::Ascii | Repertoire::Latin1 => 1,
        Repertoire::Unicode | Repertoire::Custom(_) => 4,
    }
}

/// What the compiler specializes against.
enum Source<'p> {
    /// A coercion plan: the pair's entries drive the lowering.
    Planned(&'p CoercionPlan),
    /// No coercion: both ends share the graph and type.
    Identity(&'p MtypeGraph),
}

struct Compiler<'p> {
    source: Source<'p>,
    nodes: Vec<Node>,
    memo: HashMap<(MtypeId, MtypeId), u32>,
    /// Record pairs currently being inlined; re-entering one means a
    /// record cycle with no intervening choice, which we decline.
    inline_stack: Vec<(MtypeId, MtypeId)>,
    two_way: bool,
}

impl<'p> Compiler<'p> {
    fn new(source: Source<'p>) -> Self {
        let two_way = match &source {
            Source::Planned(p) => p.mode() == mockingbird_comparer::Mode::Equivalence,
            Source::Identity(_) => true,
        };
        Compiler {
            source,
            nodes: Vec::new(),
            memo: HashMap::new(),
            inline_stack: Vec::new(),
            two_way,
        }
    }

    fn rules(&self) -> RuleSet {
        match &self.source {
            Source::Planned(p) => p.rules().clone(),
            Source::Identity(_) => RuleSet::full(),
        }
    }

    fn finish(
        mut self,
        l: MtypeId,
        r: MtypeId,
        skip_right_child: Option<usize>,
    ) -> Result<WireProgram, Unsupported> {
        if skip_right_child.is_some() {
            // Eliding a destination child leaves the decode direction
            // without a source for that slot; the program is encode-only.
            self.two_way = false;
        }
        self.nodes.push(Node::default());
        let build = self.emit_pair(l, r, &mut Vec::new(), 0, skip_right_child)?;
        self.nodes[0].build = build;
        Ok(WireProgram {
            nodes: self.nodes,
            two_way: self.two_way,
        })
    }

    /// Compiles `(l, r)` as a fresh scope, memoized so recursive types
    /// tie back into the node table.
    fn compile_node(&mut self, l: MtypeId, r: MtypeId) -> Result<u32, Unsupported> {
        let key = (self.left_graph().resolve(l), self.right_graph().resolve(r));
        if let Some(&id) = self.memo.get(&key) {
            return Ok(id);
        }
        let id = self.nodes.len() as u32;
        if id as usize > MAX_NODES {
            return unsup(
                FallbackKind::NodeBudget,
                "program node table exceeds 4096 scopes",
            );
        }
        self.nodes.push(Node::default());
        self.memo.insert(key, id);
        let build = self.emit_pair(l, r, &mut Vec::new(), id, None)?;
        self.nodes[id as usize].build = build;
        Ok(id)
    }

    fn left_graph(&self) -> &MtypeGraph {
        match &self.source {
            Source::Planned(p) => p.left_graph(),
            Source::Identity(g) => g,
        }
    }

    fn right_graph(&self) -> &MtypeGraph {
        match &self.source {
            Source::Planned(p) => p.right_graph(),
            Source::Identity(g) => g,
        }
    }

    fn slot(&mut self, node: u32) -> u32 {
        let n = &mut self.nodes[node as usize];
        let s = n.slots;
        n.slots += 1;
        s
    }

    /// Emits the ops for one matched pair into `node`, with `prefix` as
    /// the source access path; returns the pair's build fragment.
    fn emit_pair(
        &mut self,
        l: MtypeId,
        r: MtypeId,
        prefix: &mut Vec<u16>,
        node: u32,
        skip_right_child: Option<usize>,
    ) -> Result<Vec<BuildOp>, Unsupported> {
        match &self.source {
            Source::Planned(plan) => {
                let plan = *plan;
                let rules = self.rules();
                let lg = plan.left_graph();
                let rg = plan.right_graph();
                let lr0 = lg.resolve(l);
                let rr0 = rg.resolve(r);
                let lr = resolve_transparent(lg, &rules, lr0);
                let rr = resolve_transparent(rg, &rules, rr0);
                // Transparent singleton choices make the interpreter
                // unwrap source-side wrappers and re-add destination-side
                // ones; replay both as compile-time chains. Chains the
                // rewrap would not walk child-by-child (dedup-collapsed
                // singletons with several nominal children) are declined.
                let lwraps = transparent_chain(lg, &rules, lr0, lr)?;
                let rwraps = transparent_chain(rg, &rules, rr0, rr)?;
                let saved = prefix.len();
                for _ in 0..lwraps {
                    prefix.push(STEP_CHOICE0);
                }
                for _ in 0..rwraps {
                    self.nodes[node as usize].enc.push(EncOp::Tag { value: 0 });
                    if self.two_way {
                        self.nodes[node as usize].dec.push(DecOp::Tag { expect: 0 });
                    }
                }
                let entry = plan
                    .matched_entry(lr, rr)
                    .map_err(|e| Unsupported::new(FallbackKind::EntryShape, e.to_string()))?;
                let result =
                    self.emit_entry(plan, &rules, lr, rr, entry, prefix, node, skip_right_child);
                prefix.truncate(saved);
                let mut build = result?;
                if self.two_way {
                    for _ in 0..lwraps {
                        build.push(BuildOp::Wrap { index: 0 });
                    }
                }
                Ok(build)
            }
            Source::Identity(g) => {
                let g = *g;
                self.emit_identity(g, l, prefix, node)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_entry(
        &mut self,
        plan: &CoercionPlan,
        rules: &RuleSet,
        lr: MtypeId,
        rr: MtypeId,
        entry: Entry,
        prefix: &mut Vec<u16>,
        node: u32,
        skip_right_child: Option<usize>,
    ) -> Result<Vec<BuildOp>, Unsupported> {
        let lg = plan.left_graph();
        let rg = plan.right_graph();
        match entry {
            Entry::Semantic => unsup(
                FallbackKind::Semantic,
                "semantic bridges run hand-written converters",
            ),
            Entry::Prim(pc) => {
                let path: Path = prefix.as_slice().into();
                match pc {
                    PrimCoercion::Int => {
                        let MtypeKind::Integer(range) = rg.kind(rr) else {
                            return unsup(
                                FallbackKind::EntryShape,
                                "Int coercion against a non-integer target",
                            );
                        };
                        let (size, signed) = int_repr(range)?;
                        self.nodes[node as usize].enc.push(EncOp::UInt {
                            size,
                            lo: range.lo,
                            hi: range.hi,
                            path,
                        });
                        if self.two_way {
                            let slot = self.slot(node);
                            self.nodes[node as usize].dec.push(DecOp::UInt {
                                size,
                                signed,
                                lo: range.lo,
                                hi: range.hi,
                                slot,
                            });
                            return Ok(vec![BuildOp::Slot(slot)]);
                        }
                        Ok(Vec::new())
                    }
                    PrimCoercion::Real { .. } => {
                        let MtypeKind::Real(p) = rg.kind(rr) else {
                            return unsup(
                                FallbackKind::EntryShape,
                                "Real coercion against a non-real target",
                            );
                        };
                        let single = *p == RealPrecision::SINGLE;
                        self.nodes[node as usize]
                            .enc
                            .push(EncOp::Real { single, path });
                        if self.two_way {
                            let slot = self.slot(node);
                            self.nodes[node as usize]
                                .dec
                                .push(DecOp::Real { single, slot });
                            return Ok(vec![BuildOp::Slot(slot)]);
                        }
                        Ok(Vec::new())
                    }
                    PrimCoercion::Char => {
                        let MtypeKind::Character(rep) = rg.kind(rr) else {
                            return unsup(
                                FallbackKind::EntryShape,
                                "Char coercion against a non-character target",
                            );
                        };
                        let size = char_size(rep);
                        self.nodes[node as usize]
                            .enc
                            .push(EncOp::Char { size, path });
                        if self.two_way {
                            let slot = self.slot(node);
                            self.nodes[node as usize]
                                .dec
                                .push(DecOp::Char { size, slot });
                            return Ok(vec![BuildOp::Slot(slot)]);
                        }
                        Ok(Vec::new())
                    }
                    PrimCoercion::Unit => {
                        self.nodes[node as usize].enc.push(EncOp::Unit { path });
                        Ok(vec![BuildOp::Unit])
                    }
                    PrimCoercion::Dynamic => {
                        self.nodes[node as usize].enc.push(EncOp::Dynamic { path });
                        if self.two_way {
                            let slot = self.slot(node);
                            self.nodes[node as usize].dec.push(DecOp::Dynamic { slot });
                            return Ok(vec![BuildOp::Slot(slot)]);
                        }
                        Ok(Vec::new())
                    }
                    PrimCoercion::IntoDynamic => {
                        if !matches!(rg.kind(rr), MtypeKind::Dynamic) {
                            return unsup(
                                FallbackKind::EntryShape,
                                "IntoDynamic against a non-dynamic target",
                            );
                        }
                        let tag: Arc<str> = lg.display(lr).to_string().into();
                        self.nodes[node as usize]
                            .enc
                            .push(EncOp::IntoDynamic { tag, path });
                        if self.two_way {
                            let back: Arc<str> = rg.display(rr).to_string().into();
                            let slot = self.slot(node);
                            self.nodes[node as usize]
                                .dec
                                .push(DecOp::IntoDynamic { tag: back, slot });
                            return Ok(vec![BuildOp::Slot(slot)]);
                        }
                        Ok(Vec::new())
                    }
                }
            }
            Entry::Port { .. } => {
                let path: Path = prefix.as_slice().into();
                self.nodes[node as usize].enc.push(EncOp::Port { path });
                if self.two_way {
                    let slot = self.slot(node);
                    self.nodes[node as usize].dec.push(DecOp::Port { slot });
                    return Ok(vec![BuildOp::Slot(slot)]);
                }
                Ok(Vec::new())
            }
            Entry::Choice {
                left_alts,
                right_alts,
                alt_map,
            } => {
                // Canonical list spines become Seq ops.
                match (list_element_type(lg, lr), list_element_type(rg, rr)) {
                    (Some(se), Some(de)) => {
                        let elem = self.compile_node(se, de)?;
                        let path: Path = prefix.as_slice().into();
                        self.nodes[node as usize].enc.push(EncOp::Seq {
                            elem,
                            path: path.clone(),
                        });
                        if self.two_way {
                            let slot = self.slot(node);
                            self.nodes[node as usize]
                                .dec
                                .push(DecOp::Seq { elem, slot });
                            return Ok(vec![BuildOp::Slot(slot)]);
                        }
                        return Ok(Vec::new());
                    }
                    (None, None) => {}
                    _ => {
                        return unsup(
                            FallbackKind::ListShape,
                            "list spine matched against a non-list choice",
                        )
                    }
                }
                // The wire writes *nominal* discriminants while the
                // entry's alternative lists are the comparer's
                // *flattened* view. Verify the flatten replays, then
                // compile dispatch trees that mirror the nominal choice
                // structure — nested arms for choices the flatten
                // descended through, discriminant chains for the
                // destination's nominal index path.
                let l_flat = choice_flat_list(lg, rules, lr);
                let r_flat = choice_flat_list(rg, rules, rr);
                if !same_ids(lg, &l_flat, &left_alts) || !same_ids(rg, &r_flat, &right_alts) {
                    return unsup(
                        FallbackKind::ChoiceShape,
                        "flattened choice diverges from the matched alternatives",
                    );
                }
                let cx = ChoiceCx {
                    l_root: lr,
                    r_root: rr,
                    l_flat: &l_flat,
                    r_flat: &r_flat,
                    left_alts: &left_alts,
                    right_alts: &right_alts,
                    alt_map: &alt_map,
                };
                let enc_arms = self.enc_choice_arms(plan, rules, lr, &mut Vec::new(), &cx)?;
                let path: Path = prefix.as_slice().into();
                self.nodes[node as usize].enc.push(EncOp::Choice {
                    arms: enc_arms,
                    path,
                });
                if self.two_way {
                    let dec_arms = self.dec_choice_arms(plan, rules, rr, &mut Vec::new(), &cx)?;
                    let slot = self.slot(node);
                    self.nodes[node as usize].dec.push(DecOp::Choice {
                        arms: dec_arms,
                        slot,
                    });
                    return Ok(vec![BuildOp::Slot(slot)]);
                }
                Ok(Vec::new())
            }
            Entry::Record {
                left_children,
                right_children,
                perm,
                policy,
            } => {
                if self.inline_stack.contains(&(lr, rr)) {
                    return unsup(
                        FallbackKind::RecordCycle,
                        "record cycle with no intervening choice",
                    );
                }
                self.inline_stack.push((lr, rr));
                let result = self.emit_record(
                    plan,
                    rules,
                    lr,
                    rr,
                    &left_children,
                    &right_children,
                    &perm,
                    policy,
                    prefix,
                    node,
                    skip_right_child,
                );
                self.inline_stack.pop();
                result
            }
        }
    }

    /// Build the encode dispatch tree for a choice entry. The tree
    /// mirrors the *nominal* structure of the source choice (the shape
    /// incoming `MValue::Choice` indexes follow), descending into
    /// exactly the nested choices the comparer's flatten descended
    /// through; each leaf records the destination's nominal
    /// discriminant chain and the payload sub-program.
    fn enc_choice_arms(
        &mut self,
        plan: &CoercionPlan,
        rules: &RuleSet,
        lnode: MtypeId,
        path: &mut Vec<MtypeId>,
        cx: &ChoiceCx<'_>,
    ) -> Result<Box<[EncArm]>, Unsupported> {
        let lg = plan.left_graph();
        let rg = plan.right_graph();
        let MtypeKind::Choice(children) = lg.kind(lnode) else {
            return unsup(
                FallbackKind::ChoiceShape,
                "choice entry against a non-choice node",
            );
        };
        let children = children.clone();
        path.push(lnode);
        let mut arms = Vec::with_capacity(children.len());
        for &c in children.iter() {
            let rchild = lg.resolve(c);
            if rules.assoc
                && matches!(lg.kind(rchild), MtypeKind::Choice(_))
                && !path.contains(&rchild)
                && list_element_type(lg, rchild).is_none()
            {
                let inner = self.enc_choice_arms(plan, rules, rchild, path, cx);
                match inner {
                    Ok(inner) => arms.push(EncArm::Nested { arms: inner }),
                    Err(e) => {
                        path.pop();
                        return Err(e);
                    }
                }
                continue;
            }
            let Some(j) = cx
                .l_flat
                .iter()
                .position(|&x| x == c)
                .or_else(|| cx.l_flat.iter().position(|&x| lg.resolve(x) == rchild))
            else {
                path.pop();
                return unsup(
                    FallbackKind::ChoiceShape,
                    "nominal alternative missing from the flattened choice",
                );
            };
            let dst = cx.alt_map[j];
            if dst == usize::MAX {
                arms.push(EncArm::Unmatched);
                continue;
            }
            let Some(tags) = nominal_tag_path(rg, rules, cx.r_root, cx.right_alts[dst]) else {
                path.pop();
                return unsup(
                    FallbackKind::ChoiceShape,
                    "destination alternative unreachable through nominal discriminants",
                );
            };
            let sub = self.compile_node(cx.left_alts[j], cx.right_alts[dst]);
            match sub {
                Ok(node) => arms.push(EncArm::Leaf { tags, node }),
                Err(e) => {
                    path.pop();
                    return Err(e);
                }
            }
        }
        path.pop();
        Ok(arms.into_boxed_slice())
    }

    /// Build the decode dispatch tree for a choice entry, mirroring
    /// the *destination's* nominal structure (the shape wire
    /// discriminants follow on decode); each leaf records the source
    /// side's nominal wrapper chain to rebuild and the payload
    /// sub-program.
    fn dec_choice_arms(
        &mut self,
        plan: &CoercionPlan,
        rules: &RuleSet,
        rnode: MtypeId,
        path: &mut Vec<MtypeId>,
        cx: &ChoiceCx<'_>,
    ) -> Result<Box<[DecArm]>, Unsupported> {
        let lg = plan.left_graph();
        let rg = plan.right_graph();
        let MtypeKind::Choice(children) = rg.kind(rnode) else {
            return unsup(
                FallbackKind::ChoiceShape,
                "choice entry against a non-choice node",
            );
        };
        let children = children.clone();
        path.push(rnode);
        let mut arms = Vec::with_capacity(children.len());
        for &c in children.iter() {
            let rchild = rg.resolve(c);
            if rules.assoc
                && matches!(rg.kind(rchild), MtypeKind::Choice(_))
                && !path.contains(&rchild)
                && list_element_type(rg, rchild).is_none()
            {
                let inner = self.dec_choice_arms(plan, rules, rchild, path, cx);
                match inner {
                    Ok(inner) => arms.push(DecArm::Nested { arms: inner }),
                    Err(e) => {
                        path.pop();
                        return Err(e);
                    }
                }
                continue;
            }
            let Some(dst) = cx
                .r_flat
                .iter()
                .position(|&x| x == c)
                .or_else(|| cx.r_flat.iter().position(|&x| rg.resolve(x) == rchild))
            else {
                path.pop();
                return unsup(
                    FallbackKind::ChoiceShape,
                    "nominal alternative missing from the flattened choice",
                );
            };
            let Some(j) = cx.alt_map.iter().position(|&d| d == dst) else {
                arms.push(DecArm::Unmatched);
                continue;
            };
            let Some(wraps) = nominal_tag_path(lg, rules, cx.l_root, cx.left_alts[j]) else {
                path.pop();
                return unsup(
                    FallbackKind::ChoiceShape,
                    "source alternative unreachable through nominal wrappers",
                );
            };
            let sub = self.compile_node(cx.left_alts[j], cx.right_alts[dst]);
            match sub {
                Ok(node) => arms.push(DecArm::Leaf { wraps, node }),
                Err(e) => {
                    path.pop();
                    return Err(e);
                }
            }
        }
        path.pop();
        Ok(arms.into_boxed_slice())
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_record(
        &mut self,
        plan: &CoercionPlan,
        rules: &RuleSet,
        lr: MtypeId,
        rr: MtypeId,
        left_children: &[MtypeId],
        right_children: &[MtypeId],
        perm: &[usize],
        policy: RecordFlatten,
        prefix: &mut Vec<u16>,
        node: u32,
        skip_right_child: Option<usize>,
    ) -> Result<Vec<BuildOp>, Unsupported> {
        let lg = plan.left_graph();
        let rg = plan.right_graph();
        let src_leaves = flat_leaves(lg, rules, lr, policy)?;
        let dst_leaves = flat_leaves(rg, rules, rr, policy)?;
        if src_leaves.len() != left_children.len() || dst_leaves.len() != right_children.len() {
            return unsup(
                FallbackKind::EntryShape,
                "flatten replay diverges from the entry's children",
            );
        }
        for (leaf, child) in src_leaves.iter().zip(left_children) {
            if lg.resolve(leaf.0) != lg.resolve(*child) {
                return unsup(
                    FallbackKind::EntryShape,
                    "flatten replay diverges from the entry's children",
                );
            }
        }
        for (leaf, child) in dst_leaves.iter().zip(right_children) {
            if rg.resolve(leaf.0) != rg.resolve(*child) {
                return unsup(
                    FallbackKind::EntryShape,
                    "flatten replay diverges from the entry's children",
                );
            }
        }
        if perm.len() != right_children.len() {
            return unsup(FallbackKind::EntryShape, "entry permutation arity mismatch");
        }
        let mut frags: Vec<Option<Vec<BuildOp>>> = vec![None; left_children.len()];
        for (i, dst_leaf) in dst_leaves.iter().enumerate() {
            let j = perm[i];
            if j >= src_leaves.len() {
                return unsup(FallbackKind::EntryShape, "entry permutation out of range");
            }
            if skip_right_child == Some(dst_leaf.1.first().copied().unwrap_or(u16::MAX) as usize)
                && dst_leaf.1.len() == 1
            {
                // The elided destination child (the reply port): no ops.
                frags[j] = Some(Vec::new());
                continue;
            }
            let saved = prefix.len();
            prefix.extend_from_slice(&src_leaves[j].1);
            let frag = self.emit_pair(left_children[j], right_children[i], prefix, node, None)?;
            prefix.truncate(saved);
            frags[j] = Some(frag);
        }
        if !self.two_way {
            return Ok(Vec::new());
        }
        // Rebuild the left nominal structure, splicing leaf fragments in
        // left-flat order (the mirror of the flatten).
        let mut cursor = 0usize;
        let mut out = Vec::new();
        build_replay(
            lg,
            rules,
            lr,
            policy,
            &frags,
            &mut cursor,
            &mut out,
            &mut Vec::new(),
            true,
        )?;
        if cursor != frags.len() {
            return unsup(
                FallbackKind::EntryShape,
                "build replay diverges from the entry's children",
            );
        }
        Ok(out)
    }

    fn emit_identity(
        &mut self,
        g: &MtypeGraph,
        ty: MtypeId,
        prefix: &mut Vec<u16>,
        node: u32,
    ) -> Result<Vec<BuildOp>, Unsupported> {
        let t = g.resolve(ty);
        let path: Path = prefix.as_slice().into();
        match g.kind(t) {
            MtypeKind::Integer(range) => {
                let (size, signed) = int_repr(range)?;
                self.nodes[node as usize].enc.push(EncOp::UInt {
                    size,
                    lo: range.lo,
                    hi: range.hi,
                    path,
                });
                let slot = self.slot(node);
                self.nodes[node as usize].dec.push(DecOp::UInt {
                    size,
                    signed,
                    lo: range.lo,
                    hi: range.hi,
                    slot,
                });
                Ok(vec![BuildOp::Slot(slot)])
            }
            MtypeKind::Real(p) => {
                let single = *p == RealPrecision::SINGLE;
                self.nodes[node as usize]
                    .enc
                    .push(EncOp::Real { single, path });
                let slot = self.slot(node);
                self.nodes[node as usize]
                    .dec
                    .push(DecOp::Real { single, slot });
                Ok(vec![BuildOp::Slot(slot)])
            }
            MtypeKind::Character(rep) => {
                let size = char_size(rep);
                self.nodes[node as usize]
                    .enc
                    .push(EncOp::Char { size, path });
                let slot = self.slot(node);
                self.nodes[node as usize]
                    .dec
                    .push(DecOp::Char { size, slot });
                Ok(vec![BuildOp::Slot(slot)])
            }
            MtypeKind::Unit => {
                self.nodes[node as usize].enc.push(EncOp::Unit { path });
                Ok(vec![BuildOp::Unit])
            }
            MtypeKind::Port(_) => {
                self.nodes[node as usize].enc.push(EncOp::Port { path });
                let slot = self.slot(node);
                self.nodes[node as usize].dec.push(DecOp::Port { slot });
                Ok(vec![BuildOp::Slot(slot)])
            }
            MtypeKind::Dynamic => {
                self.nodes[node as usize].enc.push(EncOp::Dynamic { path });
                let slot = self.slot(node);
                self.nodes[node as usize].dec.push(DecOp::Dynamic { slot });
                Ok(vec![BuildOp::Slot(slot)])
            }
            MtypeKind::Record(children) => {
                if self.inline_stack.contains(&(t, t)) {
                    return unsup(
                        FallbackKind::RecordCycle,
                        "record cycle with no intervening choice",
                    );
                }
                self.inline_stack.push((t, t));
                let children = children.clone();
                let mut frags = Vec::with_capacity(children.len());
                let mut result = Ok(());
                for (k, c) in children.iter().enumerate() {
                    let saved = prefix.len();
                    prefix.push(k as u16);
                    match self.emit_identity(g, *c, prefix, node) {
                        Ok(frag) => frags.push(frag),
                        Err(e) => {
                            result = Err(e);
                            prefix.truncate(saved);
                            break;
                        }
                    }
                    prefix.truncate(saved);
                }
                self.inline_stack.pop();
                result?;
                let mut out = Vec::new();
                for frag in frags {
                    out.extend(frag);
                }
                out.push(BuildOp::Record {
                    arity: children.len() as u32,
                });
                Ok(out)
            }
            MtypeKind::Choice(alts) => {
                if let Some(elem) = list_element_type(g, t) {
                    let sub = self.compile_node(elem, elem)?;
                    self.nodes[node as usize].enc.push(EncOp::Seq {
                        elem: sub,
                        path: path.clone(),
                    });
                    let slot = self.slot(node);
                    self.nodes[node as usize]
                        .dec
                        .push(DecOp::Seq { elem: sub, slot });
                    return Ok(vec![BuildOp::Slot(slot)]);
                }
                let alts = alts.clone();
                let mut enc_arms = Vec::with_capacity(alts.len());
                let mut dec_arms = Vec::with_capacity(alts.len());
                for (i, a) in alts.iter().enumerate() {
                    let sub = self.compile_node(*a, *a)?;
                    enc_arms.push(EncArm::Leaf {
                        tags: Box::from([i as u32]),
                        node: sub,
                    });
                    dec_arms.push(DecArm::Leaf {
                        wraps: Box::from([i as u32]),
                        node: sub,
                    });
                }
                self.nodes[node as usize].enc.push(EncOp::Choice {
                    arms: enc_arms.into_boxed_slice(),
                    path,
                });
                let slot = self.slot(node);
                self.nodes[node as usize].dec.push(DecOp::Choice {
                    arms: dec_arms.into_boxed_slice(),
                    slot,
                });
                Ok(vec![BuildOp::Slot(slot)])
            }
            MtypeKind::Recursive(_) => {
                unsup(FallbackKind::EntryShape, "unresolved recursive binder")
            }
        }
    }
}

/// Shared context for building choice dispatch trees: the entry's
/// resolved roots, the comparer's flattened alternative lists, and the
/// match's flat-index correspondence.
struct ChoiceCx<'a> {
    l_root: MtypeId,
    r_root: MtypeId,
    l_flat: &'a [MtypeId],
    r_flat: &'a [MtypeId],
    left_alts: &'a [MtypeId],
    right_alts: &'a [MtypeId],
    alt_map: &'a [usize],
}

/// The flattened alternative list of a Choice node under the rule set
/// (the comparer's view: associative flatten + id-level dedup when
/// `assoc` is on, the nominal children otherwise).
fn choice_flat_list(g: &MtypeGraph, rules: &RuleSet, node: MtypeId) -> Vec<MtypeId> {
    if rules.assoc {
        flatten_choice(g, node)
    } else {
        g.kind(node).children().to_vec()
    }
}

/// Whether a (resolved) node is a singleton Choice the comparer's
/// resolution collapsed through (mirror of the plan interpreter's
/// `is_transparent_singleton`).
fn is_transparent_singleton(g: &MtypeGraph, rules: &RuleSet, node: MtypeId) -> bool {
    rules.singleton_choice && matches!(g.kind(node), MtypeKind::Choice(_)) && {
        let flat = choice_flat_list(g, rules, node);
        flat.len() == 1 && g.resolve(flat[0]) != node
    }
}

/// The number of transparent singleton wrapper layers between `from`
/// (resolved) and `to` (= `resolve_transparent(from)`), replaying the
/// interpreter's rewrap walk child-by-child. Declines chains the walk
/// cannot replay — a dedup-collapsed singleton with several nominal
/// children, or a walk that diverges from the comparer's resolution.
fn transparent_chain(
    g: &MtypeGraph,
    rules: &RuleSet,
    from: MtypeId,
    to: MtypeId,
) -> Result<usize, Unsupported> {
    if from == to {
        return Ok(0);
    }
    let mut cur = from;
    let mut k = 0usize;
    while is_transparent_singleton(g, rules, cur) {
        let MtypeKind::Choice(children) = g.kind(cur) else {
            unreachable!("is_transparent_singleton only accepts Choice nodes");
        };
        if children.len() != 1 {
            return unsup(
                FallbackKind::TransparentChoice,
                "transparent singleton choice with several nominal alternatives",
            );
        }
        cur = g.resolve(children[0]);
        k += 1;
        if k > g.len() + 1 {
            return unsup(
                FallbackKind::TransparentChoice,
                "singleton choice chain does not terminate",
            );
        }
    }
    if cur != to {
        return unsup(
            FallbackKind::TransparentChoice,
            "transparent singleton chain diverges from the comparer's resolution",
        );
    }
    Ok(k)
}

/// The nominal discriminant chain selecting `target` inside the choice
/// tree rooted at `node` (the compile-time mirror of the interpreter's
/// `choice_from_flat`): depth-first over the nominal alternatives,
/// descending into choices the flatten descended through, first match
/// by id then by resolution.
fn nominal_tag_path(
    g: &MtypeGraph,
    rules: &RuleSet,
    node: MtypeId,
    target: MtypeId,
) -> Option<Box<[u32]>> {
    fn dfs(
        g: &MtypeGraph,
        rules: &RuleSet,
        node: MtypeId,
        target: MtypeId,
        path: &mut Vec<MtypeId>,
        idx_path: &mut Vec<u32>,
    ) -> bool {
        let node = g.resolve(node);
        let MtypeKind::Choice(children) = g.kind(node) else {
            return false;
        };
        path.push(node);
        for (i, &child) in children.clone().iter().enumerate() {
            let rchild = g.resolve(child);
            if rules.assoc
                && matches!(g.kind(rchild), MtypeKind::Choice(_))
                && !path.contains(&rchild)
                && list_element_type(g, rchild).is_none()
            {
                idx_path.push(i as u32);
                if dfs(g, rules, rchild, target, path, idx_path) {
                    path.pop();
                    return true;
                }
                idx_path.pop();
            } else if child == target || rchild == g.resolve(target) {
                idx_path.push(i as u32);
                path.pop();
                return true;
            }
        }
        path.pop();
        false
    }
    let mut path = Vec::new();
    let mut idx_path = Vec::new();
    dfs(g, rules, node, target, &mut path, &mut idx_path).then(|| idx_path.into_boxed_slice())
}

fn same_ids(g: &MtypeGraph, a: &[MtypeId], b: &[MtypeId]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| g.resolve(*x) == g.resolve(*y))
}

/// Replays the comparer's record-flatten at compile time, yielding the
/// leaf types with their nominal access paths (the mirror of
/// `plan`'s `flatten_value` / `one_level_align`, over types).
fn flat_leaves(
    g: &MtypeGraph,
    rules: &RuleSet,
    node: MtypeId,
    policy: RecordFlatten,
) -> Result<Vec<(MtypeId, Vec<u16>)>, Unsupported> {
    let node = g.resolve(node);
    let mut out = Vec::new();
    match policy {
        RecordFlatten::OneLevel => {
            let MtypeKind::Record(children) = g.kind(node) else {
                return unsup(
                    FallbackKind::EntryShape,
                    "one-level view of a non-record node",
                );
            };
            for (k, c) in children.clone().iter().enumerate() {
                if rules.unit_elim && matches!(g.kind(g.resolve(*c)), MtypeKind::Unit) {
                    continue;
                }
                out.push((*c, vec![k as u16]));
            }
        }
        RecordFlatten::Full => {
            flat_leaves_rec(
                g,
                rules,
                node,
                &mut Vec::new(),
                &mut Vec::new(),
                true,
                &mut out,
            )?;
        }
    }
    Ok(out)
}

fn flat_leaves_rec(
    g: &MtypeGraph,
    rules: &RuleSet,
    node: MtypeId,
    path: &mut Vec<MtypeId>,
    prefix: &mut Vec<u16>,
    top: bool,
    out: &mut Vec<(MtypeId, Vec<u16>)>,
) -> Result<(), Unsupported> {
    if path.len() > MAX_NESTING_DEPTH {
        return unsup(
            FallbackKind::DepthBound,
            "record nesting exceeds supported depth",
        );
    }
    let node = g.resolve(node);
    match g.kind(node) {
        MtypeKind::Record(children) if (rules.assoc && !path.contains(&node)) || top => {
            let children = children.clone();
            if rules.assoc {
                path.push(node);
                for (k, c) in children.iter().enumerate() {
                    prefix.push(k as u16);
                    let r = flat_leaves_rec(g, rules, *c, path, prefix, false, out);
                    prefix.pop();
                    r?;
                }
                path.pop();
            } else {
                for (k, c) in children.iter().enumerate() {
                    let mut p = prefix.clone();
                    p.push(k as u16);
                    out.push((*c, p));
                }
            }
            Ok(())
        }
        MtypeKind::Unit if rules.unit_elim && !top => Ok(()),
        _ => {
            out.push((node, prefix.clone()));
            Ok(())
        }
    }
}

/// Replays the destination-side rebuild (`build_value` /
/// `one_level_build`) at compile time, splicing each leaf's build
/// fragment in flat order.
#[allow(clippy::too_many_arguments)]
fn build_replay(
    g: &MtypeGraph,
    rules: &RuleSet,
    node: MtypeId,
    policy: RecordFlatten,
    frags: &[Option<Vec<BuildOp>>],
    cursor: &mut usize,
    out: &mut Vec<BuildOp>,
    path: &mut Vec<MtypeId>,
    top: bool,
) -> Result<(), Unsupported> {
    if path.len() > MAX_NESTING_DEPTH {
        return unsup(
            FallbackKind::DepthBound,
            "record nesting exceeds supported depth",
        );
    }
    let node = g.resolve(node);
    let splice = |cursor: &mut usize, out: &mut Vec<BuildOp>| -> Result<(), Unsupported> {
        let frag = frags.get(*cursor).and_then(|f| f.as_ref()).ok_or_else(|| {
            Unsupported::new(FallbackKind::EntryShape, "build replay ran out of leaves")
        })?;
        out.extend(frag.iter().copied());
        *cursor += 1;
        Ok(())
    };
    match policy {
        RecordFlatten::OneLevel => {
            let MtypeKind::Record(children) = g.kind(node) else {
                return unsup(
                    FallbackKind::EntryShape,
                    "one-level view of a non-record node",
                );
            };
            let children = children.clone();
            for c in &children {
                if rules.unit_elim && matches!(g.kind(g.resolve(*c)), MtypeKind::Unit) {
                    out.push(BuildOp::Unit);
                    continue;
                }
                splice(cursor, out)?;
            }
            out.push(BuildOp::Record {
                arity: children.len() as u32,
            });
            Ok(())
        }
        RecordFlatten::Full => match g.kind(node) {
            MtypeKind::Record(children) if (rules.assoc && !path.contains(&node)) || top => {
                let children = children.clone();
                if rules.assoc {
                    path.push(node);
                    for c in &children {
                        let r = build_replay(g, rules, *c, policy, frags, cursor, out, path, false);
                        if r.is_err() {
                            path.pop();
                            return r;
                        }
                    }
                    path.pop();
                } else {
                    for _ in &children {
                        splice(cursor, out)?;
                    }
                }
                out.push(BuildOp::Record {
                    arity: children.len() as u32,
                });
                Ok(())
            }
            MtypeKind::Unit if rules.unit_elim && !top => {
                out.push(BuildOp::Unit);
                Ok(())
            }
            _ => splice(cursor, out),
        },
    }
}

// ---------------------------------------------------------------------
// Introspection (the stub emitter's typed view)
// ---------------------------------------------------------------------

/// A borrowed view of one compiled scope: everything the native stub
/// emitter needs to specialise the scope into straight-line Rust.
#[derive(Debug, Clone, Copy)]
pub struct NodeView<'a> {
    /// The scope's id (node-function linkage; node 0 is the root).
    pub id: u32,
    /// Decode slot-frame size.
    pub slots: u32,
    /// Encode opcodes in wire order.
    pub enc: &'a [EncOp],
    /// Decode opcodes in wire order.
    pub dec: &'a [DecOp],
    /// Post-order value builders.
    pub build: &'a [BuildOp],
}

/// A coalesced span of encode opcodes: `Fixed` runs are consecutive
/// constant-width primitives (the emitter pre-reserves their worst-case
/// byte budget in one call); `Flow` ops have data-dependent size or
/// control flow.
#[derive(Debug, Clone, Copy)]
pub enum EncStep<'a> {
    /// ≥1 consecutive fixed-width ops; the payload is their worst-case
    /// wire footprint (sizes + maximal alignment padding).
    Fixed(&'a [EncOp], usize),
    /// A variable-size or dispatching op.
    Flow(&'a EncOp),
}

/// As [`EncStep`] for the decode direction (reserve has no decode
/// meaning, but fixed runs still group ops with no control flow).
#[derive(Debug, Clone, Copy)]
pub enum DecStep<'a> {
    /// ≥1 consecutive fixed-width ops.
    Fixed(&'a [DecOp]),
    /// A variable-size or dispatching op.
    Flow(&'a DecOp),
}

impl EncOp {
    /// Wire footprint when constant: `Some(size)` for fixed-width
    /// primitives (`Unit` is 0), `None` for data-dependent ops.
    #[must_use]
    pub fn wire_size(&self) -> Option<usize> {
        match self {
            EncOp::UInt { size, .. } | EncOp::Char { size, .. } => Some(*size as usize),
            EncOp::Real { single, .. } => Some(if *single { 4 } else { 8 }),
            EncOp::Unit { .. } => Some(0),
            EncOp::Port { .. } => Some(8),
            EncOp::Tag { .. } => Some(4),
            EncOp::Dynamic { .. }
            | EncOp::IntoDynamic { .. }
            | EncOp::Seq { .. }
            | EncOp::Choice { .. } => None,
        }
    }
}

impl DecOp {
    /// Wire footprint when constant (see [`EncOp::wire_size`]).
    #[must_use]
    pub fn wire_size(&self) -> Option<usize> {
        match self {
            DecOp::UInt { size, .. } | DecOp::Char { size, .. } => Some(*size as usize),
            DecOp::Real { single, .. } => Some(if *single { 4 } else { 8 }),
            DecOp::Port { .. } => Some(8),
            DecOp::Tag { .. } => Some(4),
            DecOp::Dynamic { .. }
            | DecOp::IntoDynamic { .. }
            | DecOp::Seq { .. }
            | DecOp::Choice { .. } => None,
        }
    }
}

/// Coalesces encode opcodes into [`EncStep`] runs.
#[must_use]
pub fn enc_runs(ops: &[EncOp]) -> Vec<EncStep<'_>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < ops.len() {
        match ops[i].wire_size() {
            None => {
                out.push(EncStep::Flow(&ops[i]));
                i += 1;
            }
            Some(first) => {
                let mut j = i + 1;
                // Worst case per op: its size plus (alignment-1) padding.
                let mut budget = first + first.saturating_sub(1);
                while j < ops.len() {
                    let Some(sz) = ops[j].wire_size() else { break };
                    budget += sz + sz.saturating_sub(1);
                    j += 1;
                }
                out.push(EncStep::Fixed(&ops[i..j], budget));
                i = j;
            }
        }
    }
    out
}

/// Coalesces decode opcodes into [`DecStep`] runs.
#[must_use]
pub fn dec_runs(ops: &[DecOp]) -> Vec<DecStep<'_>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < ops.len() {
        if ops[i].wire_size().is_none() {
            out.push(DecStep::Flow(&ops[i]));
            i += 1;
        } else {
            let mut j = i + 1;
            while j < ops.len() && ops[j].wire_size().is_some() {
                j += 1;
            }
            out.push(DecStep::Fixed(&ops[i..j]));
            i = j;
        }
    }
    out
}

impl WireProgram {
    /// Iterates the compiled scopes as typed views, in node-id order.
    pub fn node_views(&self) -> impl ExactSizeIterator<Item = NodeView<'_>> {
        self.nodes.iter().enumerate().map(|(i, n)| NodeView {
            id: i as u32,
            slots: n.slots,
            enc: &n.enc,
            dec: &n.dec,
            build: &n.build,
        })
    }
}

// ---------------------------------------------------------------------
// Content-addressed program cache + persistence
// ---------------------------------------------------------------------

/// A *nominal* fingerprint of the Mtype rooted at `id`: an FNV-128 hash
/// of the deterministic nominal rendering. Unlike the canonizer's
/// equivalence-class fingerprints (which are invariant under record
/// reordering and regrouping), this distinguishes layouts: a wire
/// program bakes nominal field paths and permutations in, so two types
/// that are merely *equivalent* must not share a cache slot.
#[must_use]
pub fn nominal_fingerprint(graph: &MtypeGraph, id: MtypeId) -> u128 {
    let mut h: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    for b in graph.display(graph.resolve(id)).to_string().bytes() {
        h ^= b as u128;
        h = h.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013b);
    }
    h
}

/// Program-cache counters (relaxed; reporting only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Programs compiled on a miss.
    pub compiles: u64,
    /// Pairs the compiler declined (cached as negative entries).
    pub unsupported: u64,
}

impl ProgramStats {
    /// Counter deltas attributable to the window since `earlier`.
    #[must_use]
    pub fn since(&self, earlier: &ProgramStats) -> ProgramStats {
        ProgramStats {
            hits: self.hits - earlier.hits,
            compiles: self.compiles - earlier.compiles,
            unsupported: self.unsupported - earlier.unsupported,
        }
    }
}

/// A thread-safe, content-addressed store of compiled wire programs,
/// keyed like the verdict cache: `(left_fp, right_fp, Mode, rules_fp)`.
/// Declined pairs are cached negatively — with the [`FallbackKind`]
/// that declined them — so the fallback decision (and its attribution)
/// is paid once.
#[derive(Debug, Default)]
pub struct ProgramCache {
    map: RwLock<HashMap<CacheKey, Result<Arc<WireProgram>, FallbackKind>>>,
    hits: AtomicU64,
    compiles: AtomicU64,
    unsupported: AtomicU64,
    by_kind: [AtomicU64; FallbackKind::COUNT],
}

impl ProgramCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        ProgramCache::default()
    }

    /// Number of cached entries (including negative ones).
    pub fn len(&self) -> usize {
        self.map.read().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ProgramStats {
        ProgramStats {
            hits: self.hits.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            unsupported: self.unsupported.load(Ordering::Relaxed),
        }
    }

    /// The cached program for `key`, if any (`Some(None)` is a cached
    /// "unsupported" verdict).
    pub fn lookup(&self, key: &CacheKey) -> Option<Option<Arc<WireProgram>>> {
        let found = self.map.read().unwrap().get(key).cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found.map(|r| r.ok())
    }

    /// The decline class cached for `key`, if the pair was declined.
    pub fn lookup_reason(&self, key: &CacheKey) -> Option<FallbackKind> {
        match self.map.read().unwrap().get(key) {
            Some(Err(kind)) => Some(*kind),
            _ => None,
        }
    }

    /// Returns the program for `key`, compiling (and caching the
    /// outcome, supported or not) on a miss.
    pub fn get_or_compile(
        &self,
        key: CacheKey,
        compile: impl FnOnce() -> Result<WireProgram, Unsupported>,
    ) -> Option<Arc<WireProgram>> {
        self.get_or_compile_reasoned(key, compile).ok()
    }

    /// Like [`ProgramCache::get_or_compile`] but surfaces the
    /// [`FallbackKind`] on the decline path, so batch pipelines can
    /// attribute every interpretive fallback.
    pub fn get_or_compile_reasoned(
        &self,
        key: CacheKey,
        compile: impl FnOnce() -> Result<WireProgram, Unsupported>,
    ) -> Result<Arc<WireProgram>, FallbackKind> {
        {
            let found = self.map.read().unwrap().get(&key).cloned();
            if let Some(found) = found {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return found;
            }
        }
        let outcome = match compile() {
            Ok(p) => {
                self.compiles.fetch_add(1, Ordering::Relaxed);
                Ok(Arc::new(p))
            }
            Err(e) => {
                self.unsupported.fetch_add(1, Ordering::Relaxed);
                self.by_kind[e.kind.index()].fetch_add(1, Ordering::Relaxed);
                Err(e.kind)
            }
        };
        self.map
            .write()
            .unwrap()
            .entry(key)
            .or_insert_with(|| outcome.clone())
            .clone()
    }

    /// Per-class decline counters in [`FallbackKind::all`] order
    /// (compile-time attribution; zero entries included).
    pub fn fallback_breakdown(&self) -> Vec<(FallbackKind, u64)> {
        FallbackKind::all()
            .iter()
            .map(|&k| (k, self.by_kind[k.index()].load(Ordering::Relaxed)))
            .collect()
    }

    /// Inserts a program (used when absorbing persisted caches).
    pub fn insert(&self, key: CacheKey, program: Arc<WireProgram>) {
        self.map.write().unwrap().insert(key, Ok(program));
    }

    /// The cache's positive entries in deterministic key order, for
    /// persistence alongside the verdict cache.
    pub fn export(&self) -> Vec<(CacheKey, Arc<WireProgram>)> {
        let mut out: Vec<(CacheKey, Arc<WireProgram>)> = self
            .map
            .read()
            .unwrap()
            .iter()
            .filter_map(|(k, v)| v.as_ref().ok().map(|p| (*k, p.clone())))
            .collect();
        out.sort_by_key(|(k, _)| (k.left_fp, k.right_fp, k.rules_fp));
        out
    }

    /// Bulk-inserts persisted programs; returns how many were absorbed.
    pub fn absorb(&self, items: impl IntoIterator<Item = (CacheKey, Arc<WireProgram>)>) -> usize {
        let mut map = self.map.write().unwrap();
        let mut n = 0usize;
        for (k, p) in items {
            map.insert(k, Ok(p));
            n += 1;
        }
        n
    }

    /// Writes every positive entry into `store` as
    /// [`ArtifactKind::WireProgram`] records whose bodies are the programs'
    /// canonical [`WireProgram::to_bytes`] encoding. Returns the count.
    pub fn store_into(&self, store: &dyn ArtifactStore) -> usize {
        let mut n = 0usize;
        for (key, program) in self.export() {
            store.put(
                key.store_key(ArtifactKind::WireProgram),
                &program.to_bytes(),
            );
            n += 1;
        }
        n
    }

    /// Absorbs every [`ArtifactKind::WireProgram`] record from `store`.
    /// Bodies that fail [`WireProgram::from_bytes`] validation are skipped
    /// (the codec is the integrity boundary: a corrupt program is never
    /// served). Returns how many programs were absorbed.
    pub fn load_from(&self, store: &dyn ArtifactStore) -> usize {
        let mut n = 0usize;
        for (skey, id) in store.keys() {
            if skey.kind != ArtifactKind::WireProgram {
                continue;
            }
            let Some(body) = store.body(&id) else {
                continue;
            };
            let Ok(program) = WireProgram::from_bytes(&body) else {
                continue;
            };
            self.insert(CacheKey::from_store_key(&skey), Arc::new(program));
            n += 1;
        }
        n
    }
}

// ---------------------------------------------------------------------
// Byte codec (project-file persistence)
// ---------------------------------------------------------------------

const CODEC_VERSION: u8 = 2;

/// Maximum number of scopes in a program's node table (compile-time
/// budget and deserialisation bound alike).
const MAX_NODES: usize = 4096;

/// Maximum nesting depth accepted for serialised choice dispatch trees.
const MAX_ARM_DEPTH: usize = 64;

/// A typed decoding failure from [`WireProgram::from_bytes`]. Hostile
/// or corrupt buffers are rejected with a precise cause instead of
/// silent truncation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProgramCodecError {
    /// The buffer ended before the structure it promised.
    Truncated,
    /// Bytes remained after the complete program was read.
    TrailingBytes { extra: usize },
    /// The leading version byte is not this codec's version.
    BadVersion { got: u8 },
    /// The node table exceeds the compiler's node budget.
    NodeBudget { count: usize, max: usize },
    /// A length field exceeds its plausibility budget.
    Budget { what: &'static str },
    /// An opcode byte outside the known range for its section.
    UnknownOpcode { section: &'static str, code: u8 },
    /// The bytes parsed but the program fails structural validation.
    Invalid { what: &'static str },
}

impl fmt::Display for ProgramCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramCodecError::Truncated => write!(f, "truncated program bytes"),
            ProgramCodecError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after the program")
            }
            ProgramCodecError::BadVersion { got } => {
                write!(f, "unknown program codec version {got}")
            }
            ProgramCodecError::NodeBudget { count, max } => {
                write!(f, "node table of {count} exceeds the budget of {max}")
            }
            ProgramCodecError::Budget { what } => write!(f, "implausible {what}"),
            ProgramCodecError::UnknownOpcode { section, code } => {
                write!(f, "unknown {section} opcode {code}")
            }
            ProgramCodecError::Invalid { what } => write!(f, "invalid program: {what}"),
        }
    }
}

impl std::error::Error for ProgramCodecError {}

struct ByteWriter(Vec<u8>);

impl ByteWriter {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i128(&mut self, v: i128) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn path(&mut self, p: &[u16]) {
        self.u32(p.len() as u32);
        for &x in p {
            self.0.extend_from_slice(&x.to_le_bytes());
        }
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
}

struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProgramCodecError> {
        if self.pos + n > self.data.len() {
            return Err(ProgramCodecError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, ProgramCodecError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, ProgramCodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn i128(&mut self) -> Result<i128, ProgramCodecError> {
        let b = self.take(16)?;
        let mut arr = [0u8; 16];
        arr.copy_from_slice(b);
        Ok(i128::from_le_bytes(arr))
    }
    fn path(&mut self) -> Result<Path, ProgramCodecError> {
        let n = self.u32()? as usize;
        if n > 1 << 16 {
            return Err(ProgramCodecError::Budget {
                what: "path length",
            });
        }
        let b = self.take(2 * n)?;
        Ok(b.chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect())
    }
    fn str(&mut self) -> Result<Arc<str>, ProgramCodecError> {
        let n = self.u32()? as usize;
        if n > 1 << 20 {
            return Err(ProgramCodecError::Budget {
                what: "string length",
            });
        }
        let b = self.take(n)?;
        Ok(String::from_utf8_lossy(b).into_owned().into())
    }
}

fn write_enc_arm(w: &mut ByteWriter, arm: &EncArm) {
    match arm {
        EncArm::Unmatched => w.u8(0),
        EncArm::Leaf { tags, node } => {
            w.u8(1);
            w.u32(tags.len() as u32);
            for &t in tags.iter() {
                w.u32(t);
            }
            w.u32(*node);
        }
        EncArm::Nested { arms } => {
            w.u8(2);
            w.u32(arms.len() as u32);
            for a in arms.iter() {
                write_enc_arm(w, a);
            }
        }
    }
}

fn read_enc_arm(r: &mut ByteReader<'_>, depth: usize) -> Result<EncArm, ProgramCodecError> {
    if depth > MAX_ARM_DEPTH {
        return Err(ProgramCodecError::Budget {
            what: "choice arm nesting",
        });
    }
    match r.u8()? {
        0 => Ok(EncArm::Unmatched),
        1 => {
            let n = r.u32()? as usize;
            if n > 1 << 12 {
                return Err(ProgramCodecError::Budget {
                    what: "discriminant chain length",
                });
            }
            let mut tags = Vec::with_capacity(n);
            for _ in 0..n {
                tags.push(r.u32()?);
            }
            Ok(EncArm::Leaf {
                tags: tags.into_boxed_slice(),
                node: r.u32()?,
            })
        }
        2 => {
            let n = r.u32()? as usize;
            if n > 1 << 16 {
                return Err(ProgramCodecError::Budget { what: "arm count" });
            }
            let mut arms = Vec::with_capacity(n);
            for _ in 0..n {
                arms.push(read_enc_arm(r, depth + 1)?);
            }
            Ok(EncArm::Nested {
                arms: arms.into_boxed_slice(),
            })
        }
        other => Err(ProgramCodecError::UnknownOpcode {
            section: "encode arm",
            code: other,
        }),
    }
}

fn write_dec_arm(w: &mut ByteWriter, arm: &DecArm) {
    match arm {
        DecArm::Unmatched => w.u8(0),
        DecArm::Leaf { wraps, node } => {
            w.u8(1);
            w.u32(wraps.len() as u32);
            for &x in wraps.iter() {
                w.u32(x);
            }
            w.u32(*node);
        }
        DecArm::Nested { arms } => {
            w.u8(2);
            w.u32(arms.len() as u32);
            for a in arms.iter() {
                write_dec_arm(w, a);
            }
        }
    }
}

fn read_dec_arm(r: &mut ByteReader<'_>, depth: usize) -> Result<DecArm, ProgramCodecError> {
    if depth > MAX_ARM_DEPTH {
        return Err(ProgramCodecError::Budget {
            what: "choice arm nesting",
        });
    }
    match r.u8()? {
        0 => Ok(DecArm::Unmatched),
        1 => {
            let n = r.u32()? as usize;
            if n > 1 << 12 {
                return Err(ProgramCodecError::Budget {
                    what: "wrapper chain length",
                });
            }
            let mut wraps = Vec::with_capacity(n);
            for _ in 0..n {
                wraps.push(r.u32()?);
            }
            Ok(DecArm::Leaf {
                wraps: wraps.into_boxed_slice(),
                node: r.u32()?,
            })
        }
        2 => {
            let n = r.u32()? as usize;
            if n > 1 << 16 {
                return Err(ProgramCodecError::Budget { what: "arm count" });
            }
            let mut arms = Vec::with_capacity(n);
            for _ in 0..n {
                arms.push(read_dec_arm(r, depth + 1)?);
            }
            Ok(DecArm::Nested {
                arms: arms.into_boxed_slice(),
            })
        }
        other => Err(ProgramCodecError::UnknownOpcode {
            section: "decode arm",
            code: other,
        }),
    }
}

impl WireProgram {
    /// Serialises the program to a compact, portable byte form (the
    /// opcodes are content-addressed: no graph-local ids survive, so the
    /// bytes are meaningful across sessions).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter(Vec::new());
        w.u8(CODEC_VERSION);
        w.u8(self.two_way as u8);
        w.u32(self.nodes.len() as u32);
        for n in &self.nodes {
            w.u32(n.slots);
            w.u32(n.enc.len() as u32);
            for op in &n.enc {
                match op {
                    EncOp::UInt { size, lo, hi, path } => {
                        w.u8(0);
                        w.u8(*size);
                        w.i128(*lo);
                        w.i128(*hi);
                        w.path(path);
                    }
                    EncOp::Real { single, path } => {
                        w.u8(1);
                        w.u8(*single as u8);
                        w.path(path);
                    }
                    EncOp::Char { size, path } => {
                        w.u8(2);
                        w.u8(*size);
                        w.path(path);
                    }
                    EncOp::Unit { path } => {
                        w.u8(3);
                        w.path(path);
                    }
                    EncOp::Port { path } => {
                        w.u8(4);
                        w.path(path);
                    }
                    EncOp::Dynamic { path } => {
                        w.u8(5);
                        w.path(path);
                    }
                    EncOp::IntoDynamic { tag, path } => {
                        w.u8(6);
                        w.str(tag);
                        w.path(path);
                    }
                    EncOp::Seq { elem, path } => {
                        w.u8(7);
                        w.u32(*elem);
                        w.path(path);
                    }
                    EncOp::Choice { arms, path } => {
                        w.u8(8);
                        w.u32(arms.len() as u32);
                        for a in arms.iter() {
                            write_enc_arm(&mut w, a);
                        }
                        w.path(path);
                    }
                    EncOp::Tag { value } => {
                        w.u8(9);
                        w.u32(*value);
                    }
                }
            }
            w.u32(n.dec.len() as u32);
            for op in &n.dec {
                match op {
                    DecOp::UInt {
                        size,
                        signed,
                        lo,
                        hi,
                        slot,
                    } => {
                        w.u8(0);
                        w.u8(*size);
                        w.u8(*signed as u8);
                        w.i128(*lo);
                        w.i128(*hi);
                        w.u32(*slot);
                    }
                    DecOp::Real { single, slot } => {
                        w.u8(1);
                        w.u8(*single as u8);
                        w.u32(*slot);
                    }
                    DecOp::Char { size, slot } => {
                        w.u8(2);
                        w.u8(*size);
                        w.u32(*slot);
                    }
                    DecOp::Port { slot } => {
                        w.u8(4);
                        w.u32(*slot);
                    }
                    DecOp::Dynamic { slot } => {
                        w.u8(5);
                        w.u32(*slot);
                    }
                    DecOp::IntoDynamic { tag, slot } => {
                        w.u8(6);
                        w.str(tag);
                        w.u32(*slot);
                    }
                    DecOp::Seq { elem, slot } => {
                        w.u8(7);
                        w.u32(*elem);
                        w.u32(*slot);
                    }
                    DecOp::Choice { arms, slot } => {
                        w.u8(8);
                        w.u32(arms.len() as u32);
                        for a in arms.iter() {
                            write_dec_arm(&mut w, a);
                        }
                        w.u32(*slot);
                    }
                    DecOp::Tag { expect } => {
                        w.u8(3);
                        w.u32(*expect);
                    }
                }
            }
            w.u32(n.build.len() as u32);
            for op in &n.build {
                match op {
                    BuildOp::Slot(s) => {
                        w.u8(0);
                        w.u32(*s);
                    }
                    BuildOp::Unit => w.u8(1),
                    BuildOp::Record { arity } => {
                        w.u8(2);
                        w.u32(*arity);
                    }
                    BuildOp::Wrap { index } => {
                        w.u8(3);
                        w.u32(*index);
                    }
                }
            }
        }
        w.0
    }

    /// Deserialises a program written by [`WireProgram::to_bytes`],
    /// validating node references and slot indexes. Trailing bytes and
    /// over-long tables are rejected with a typed
    /// [`ProgramCodecError`], never silently truncated.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramCodecError`] on malformed or incompatible bytes.
    pub fn from_bytes(data: &[u8]) -> Result<WireProgram, ProgramCodecError> {
        let mut r = ByteReader { data, pos: 0 };
        let version = r.u8()?;
        if version != CODEC_VERSION {
            return Err(ProgramCodecError::BadVersion { got: version });
        }
        let two_way = r.u8()? != 0;
        let node_count = r.u32()? as usize;
        if node_count > MAX_NODES {
            return Err(ProgramCodecError::NodeBudget {
                count: node_count,
                max: MAX_NODES,
            });
        }
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let slots = r.u32()?;
            let mut node = Node {
                slots,
                ..Node::default()
            };
            let n_enc = r.u32()? as usize;
            if n_enc > 1 << 20 {
                return Err(ProgramCodecError::Budget {
                    what: "encode op count",
                });
            }
            for _ in 0..n_enc {
                let op = match r.u8()? {
                    0 => EncOp::UInt {
                        size: r.u8()?,
                        lo: r.i128()?,
                        hi: r.i128()?,
                        path: r.path()?,
                    },
                    1 => EncOp::Real {
                        single: r.u8()? != 0,
                        path: r.path()?,
                    },
                    2 => EncOp::Char {
                        size: r.u8()?,
                        path: r.path()?,
                    },
                    3 => EncOp::Unit { path: r.path()? },
                    4 => EncOp::Port { path: r.path()? },
                    5 => EncOp::Dynamic { path: r.path()? },
                    6 => EncOp::IntoDynamic {
                        tag: r.str()?,
                        path: r.path()?,
                    },
                    7 => EncOp::Seq {
                        elem: r.u32()?,
                        path: r.path()?,
                    },
                    8 => {
                        let n = r.u32()? as usize;
                        if n > 1 << 16 {
                            return Err(ProgramCodecError::Budget { what: "arm count" });
                        }
                        let mut arms = Vec::with_capacity(n);
                        for _ in 0..n {
                            arms.push(read_enc_arm(&mut r, 0)?);
                        }
                        EncOp::Choice {
                            arms: arms.into_boxed_slice(),
                            path: r.path()?,
                        }
                    }
                    9 => EncOp::Tag { value: r.u32()? },
                    other => {
                        return Err(ProgramCodecError::UnknownOpcode {
                            section: "encode",
                            code: other,
                        })
                    }
                };
                node.enc.push(op);
            }
            let n_dec = r.u32()? as usize;
            if n_dec > 1 << 20 {
                return Err(ProgramCodecError::Budget {
                    what: "decode op count",
                });
            }
            for _ in 0..n_dec {
                let op = match r.u8()? {
                    0 => DecOp::UInt {
                        size: r.u8()?,
                        signed: r.u8()? != 0,
                        lo: r.i128()?,
                        hi: r.i128()?,
                        slot: r.u32()?,
                    },
                    1 => DecOp::Real {
                        single: r.u8()? != 0,
                        slot: r.u32()?,
                    },
                    2 => DecOp::Char {
                        size: r.u8()?,
                        slot: r.u32()?,
                    },
                    4 => DecOp::Port { slot: r.u32()? },
                    5 => DecOp::Dynamic { slot: r.u32()? },
                    6 => DecOp::IntoDynamic {
                        tag: r.str()?,
                        slot: r.u32()?,
                    },
                    7 => DecOp::Seq {
                        elem: r.u32()?,
                        slot: r.u32()?,
                    },
                    3 => DecOp::Tag { expect: r.u32()? },
                    8 => {
                        let n = r.u32()? as usize;
                        if n > 1 << 16 {
                            return Err(ProgramCodecError::Budget { what: "arm count" });
                        }
                        let mut arms = Vec::with_capacity(n);
                        for _ in 0..n {
                            arms.push(read_dec_arm(&mut r, 0)?);
                        }
                        DecOp::Choice {
                            arms: arms.into_boxed_slice(),
                            slot: r.u32()?,
                        }
                    }
                    other => {
                        return Err(ProgramCodecError::UnknownOpcode {
                            section: "decode",
                            code: other,
                        })
                    }
                };
                node.dec.push(op);
            }
            let n_build = r.u32()? as usize;
            if n_build > 1 << 20 {
                return Err(ProgramCodecError::Budget {
                    what: "build op count",
                });
            }
            for _ in 0..n_build {
                let op = match r.u8()? {
                    0 => BuildOp::Slot(r.u32()?),
                    1 => BuildOp::Unit,
                    2 => BuildOp::Record { arity: r.u32()? },
                    3 => BuildOp::Wrap { index: r.u32()? },
                    other => {
                        return Err(ProgramCodecError::UnknownOpcode {
                            section: "build",
                            code: other,
                        })
                    }
                };
                node.build.push(op);
            }
            nodes.push(node);
        }
        if r.pos != data.len() {
            return Err(ProgramCodecError::TrailingBytes {
                extra: data.len() - r.pos,
            });
        }
        let program = WireProgram { nodes, two_way };
        program.validate()?;
        Ok(program)
    }

    /// Structural validation: node references in range, slot indexes
    /// within each node's frame (so deserialised programs cannot panic
    /// the executors).
    fn validate(&self) -> Result<(), ProgramCodecError> {
        fn check_enc_arm(a: &EncArm, n_nodes: u32) -> Result<(), ProgramCodecError> {
            match a {
                EncArm::Unmatched => Ok(()),
                EncArm::Leaf { node, .. } if *node >= n_nodes => Err(ProgramCodecError::Invalid {
                    what: "choice arm node out of range",
                }),
                EncArm::Leaf { .. } => Ok(()),
                EncArm::Nested { arms } => arms.iter().try_for_each(|a| check_enc_arm(a, n_nodes)),
            }
        }
        fn check_dec_arm(a: &DecArm, n_nodes: u32) -> Result<(), ProgramCodecError> {
            match a {
                DecArm::Unmatched => Ok(()),
                DecArm::Leaf { node, .. } if *node >= n_nodes => Err(ProgramCodecError::Invalid {
                    what: "choice arm node out of range",
                }),
                DecArm::Leaf { .. } => Ok(()),
                DecArm::Nested { arms } => arms.iter().try_for_each(|a| check_dec_arm(a, n_nodes)),
            }
        }
        let n_nodes = self.nodes.len() as u32;
        if n_nodes == 0 {
            return Err(ProgramCodecError::Invalid {
                what: "empty node table",
            });
        }
        for node in &self.nodes {
            for op in &node.enc {
                match op {
                    EncOp::Seq { elem, .. } if *elem >= n_nodes => {
                        return Err(ProgramCodecError::Invalid {
                            what: "sequence element node out of range",
                        })
                    }
                    EncOp::Choice { arms, .. } => {
                        for a in arms.iter() {
                            check_enc_arm(a, n_nodes)?;
                        }
                    }
                    _ => {}
                }
            }
            for op in &node.dec {
                let slot = match op {
                    DecOp::UInt { slot, .. }
                    | DecOp::Real { slot, .. }
                    | DecOp::Char { slot, .. }
                    | DecOp::Port { slot }
                    | DecOp::Dynamic { slot }
                    | DecOp::IntoDynamic { slot, .. }
                    | DecOp::Seq { slot, .. }
                    | DecOp::Choice { slot, .. } => *slot,
                    DecOp::Tag { .. } => continue,
                };
                if slot >= node.slots {
                    return Err(ProgramCodecError::Invalid {
                        what: "slot index out of range",
                    });
                }
                match op {
                    DecOp::Seq { elem, .. } if *elem >= n_nodes => {
                        return Err(ProgramCodecError::Invalid {
                            what: "sequence element node out of range",
                        })
                    }
                    DecOp::Choice { arms, .. } => {
                        for a in arms.iter() {
                            check_dec_arm(a, n_nodes)?;
                        }
                    }
                    _ => {}
                }
            }
            for op in &node.build {
                if let BuildOp::Slot(s) = op {
                    if *s >= node.slots {
                        return Err(ProgramCodecError::Invalid {
                            what: "slot index out of range",
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_comparer::{Comparer, Mode};
    use mockingbird_values::Endian;

    fn plan_for(g: &MtypeGraph, l: MtypeId, r: MtypeId, mode: Mode) -> CoercionPlan {
        let corr = Comparer::new(g, g).compare(l, r, mode).expect("must match");
        CoercionPlan::new(g, g, corr, RuleSet::full(), mode)
    }

    fn agree(plan: &CoercionPlan, prog: &WireProgram, v: &MValue, endian: Endian) {
        // Oracle: interpretive convert + put_value.
        let converted = plan.convert(v).expect("oracle converts");
        let mut ow = CdrWriter::new(endian);
        ow.put_value(plan.right_graph(), plan.right_root(), &converted)
            .expect("oracle encodes");
        let oracle = ow.into_bytes();
        // Fused encode.
        let mut fw = CdrWriter::new(endian);
        prog.encode_value(&mut fw, v).expect("fused encodes");
        assert_eq!(fw.into_bytes(), oracle, "encode bytes diverge");
        // Oracle decode: get_value + convert_back.
        let mut or = CdrReader::new(&oracle, endian);
        let rv = or
            .get_value(plan.right_graph(), plan.right_root())
            .expect("oracle decodes");
        let oracle_back = plan.convert_back(&rv).expect("oracle converts back");
        // Fused decode.
        let mut fr = CdrReader::new(&oracle, endian);
        let fused_back = prog.decode_value(&mut fr).expect("fused decodes");
        assert_eq!(fused_back, oracle_back, "decode values diverge");
        assert_eq!(fr.remaining(), 0, "fused decode consumed the stream");
    }

    #[test]
    fn invocation_program_elides_reply_and_borrows_inputs() {
        // Invocation records with the reply port mid-record on the left
        // and last on the right: the program must navigate around the
        // virtual placeholder and skip the destination reply child.
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let out = g.record(vec![i]);
        let reply = g.port(out);
        let inv_l = g.record(vec![i, reply, i]);
        let inv_r = g.record(vec![i, i, reply]);
        let plan = plan_for(&g, inv_l, inv_r, Mode::Equivalence);
        let prog = WireProgram::compile_invocation(&plan, inv_l, inv_r, 2).expect("compiles");
        assert!(!prog.two_way(), "invocation programs are encode-only");
        let inputs = [MValue::Int(11), MValue::Int(-4)];
        for endian in [Endian::Little, Endian::Big] {
            let mut w = CdrWriter::new(endian);
            prog.encode_invocation(&mut w, &inputs, 1).expect("encodes");
            // Oracle: the right invocation minus its reply port is just
            // the two integers in wire order.
            let mut expect = CdrWriter::new(endian);
            expect.put_value(&g, i, &MValue::Int(11)).unwrap();
            expect.put_value(&g, i, &MValue::Int(-4)).unwrap();
            assert_eq!(w.into_bytes(), expect.into_bytes());
        }
    }

    #[test]
    fn permuted_record_program_agrees_with_oracle() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let r = g.real(RealPrecision::DOUBLE);
        let c = g.character(Repertoire::Latin1);
        let left = g.record(vec![i, r, c]);
        let right = g.record(vec![c, i, r]);
        let plan = plan_for(&g, left, right, Mode::Equivalence);
        let prog = WireProgram::compile(&plan).expect("compiles");
        let v = MValue::Record(vec![MValue::Int(-7), MValue::Real(2.5), MValue::Char('x')]);
        agree(&plan, &prog, &v, Endian::Little);
        agree(&plan, &prog, &v, Endian::Big);
    }

    #[test]
    fn regrouping_and_unit_elimination_agree() {
        let mut g = MtypeGraph::new();
        let f = g.real(RealPrecision::SINGLE);
        let u = g.unit();
        let point = g.record(vec![f, f]);
        let left = g.record(vec![point, u, point]);
        let right = g.record(vec![f, f, f, f]);
        let plan = plan_for(&g, left, right, Mode::Equivalence);
        let prog = WireProgram::compile(&plan).expect("compiles");
        let v = MValue::Record(vec![
            MValue::Record(vec![MValue::Real(1.0), MValue::Real(2.0)]),
            MValue::Unit,
            MValue::Record(vec![MValue::Real(3.0), MValue::Real(4.0)]),
        ]);
        agree(&plan, &prog, &v, Endian::Little);
        agree(&plan, &prog, &v, Endian::Big);
    }

    #[test]
    fn choice_and_list_programs_agree() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let f = g.real(RealPrecision::SINGLE);
        let lch = g.choice(vec![i, f]);
        let rch = g.choice(vec![i, f]);
        let llist = g.list_of(lch);
        let rlist = g.list_of(rch);
        let plan = plan_for(&g, llist, rlist, Mode::Equivalence);
        let prog = WireProgram::compile(&plan).expect("compiles");
        let v = MValue::List(vec![
            MValue::Choice {
                index: 0,
                value: Box::new(MValue::Int(3)),
            },
            MValue::Choice {
                index: 1,
                value: Box::new(MValue::Real(0.5)),
            },
        ]);
        agree(&plan, &prog, &v, Endian::Little);
        agree(&plan, &prog, &v, Endian::Big);
        agree(&plan, &prog, &MValue::List(vec![]), Endian::Little);
    }

    #[test]
    fn recursive_list_spine_ties_through_node_table() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let left = g.list_of(i);
        let right = g.list_of(i);
        let plan = plan_for(&g, left, right, Mode::Equivalence);
        let prog = WireProgram::compile(&plan).expect("compiles");
        let v = MValue::List((0..40).map(MValue::Int).collect());
        agree(&plan, &prog, &v, Endian::Little);
    }

    #[test]
    fn identity_program_matches_put_and_get_value() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(16));
        let f = g.real(RealPrecision::DOUBLE);
        let c = g.character(Repertoire::Unicode);
        let u = g.unit();
        let p = g.port(i);
        let s = {
            let ch = g.character(Repertoire::Latin1);
            g.list_of(ch)
        };
        let ch = g.choice(vec![i, f]);
        let rec = g.record(vec![i, f, c, u, p, s, ch]);
        let prog = WireProgram::identity(&g, rec).expect("compiles");
        let v = MValue::Record(vec![
            MValue::Int(-300),
            MValue::Real(6.25),
            MValue::Char('日'),
            MValue::Unit,
            MValue::Port(PortRef(99)),
            MValue::string("hi"),
            MValue::Choice {
                index: 1,
                value: Box::new(MValue::Real(-0.5)),
            },
        ]);
        for endian in [Endian::Little, Endian::Big] {
            let mut ow = CdrWriter::new(endian);
            ow.put_value(&g, rec, &v).unwrap();
            let oracle = ow.into_bytes();
            let mut fw = CdrWriter::new(endian);
            prog.encode_value(&mut fw, &v).unwrap();
            assert_eq!(fw.into_bytes(), oracle);
            let mut fr = CdrReader::new(&oracle, endian);
            assert_eq!(prog.decode_value(&mut fr).unwrap(), v);
        }
    }

    #[test]
    fn dynamic_and_into_dynamic_agree() {
        let mut g = MtypeGraph::new();
        let d = g.dynamic();
        let prog = WireProgram::identity(&g, d).expect("compiles");
        let v = MValue::Dynamic {
            tag: "Int{0..=9}".into(),
            value: Box::new(MValue::Int(7)),
        };
        let mut ow = CdrWriter::new(Endian::Little);
        ow.put_value(&g, d, &v).unwrap();
        let oracle = ow.into_bytes();
        let mut fw = CdrWriter::new(Endian::Little);
        prog.encode_value(&mut fw, &v).unwrap();
        assert_eq!(fw.into_bytes(), oracle);
        let mut fr = CdrReader::new(&oracle, Endian::Little);
        assert_eq!(prog.decode_value(&mut fr).unwrap(), v);

        // IntoDynamic: int on the left, Dynamic on the right, subtype.
        let i = g.integer(IntRange::signed_bits(32));
        let plan = plan_for(&g, i, d, Mode::Subtype);
        let prog = WireProgram::compile(&plan).expect("compiles");
        assert!(!prog.two_way(), "subtype programs are one-way");
        let v = MValue::Int(41);
        let converted = plan.convert(&v).unwrap();
        let mut ow = CdrWriter::new(Endian::Little);
        ow.put_value(&g, d, &converted).unwrap();
        let mut fw = CdrWriter::new(Endian::Little);
        prog.encode_value(&mut fw, &v).unwrap();
        assert_eq!(fw.into_bytes(), ow.into_bytes());
    }

    #[test]
    fn unmatched_alternative_errors_like_the_oracle() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let f = g.real(RealPrecision::SINGLE);
        let c = g.character(Repertoire::Latin1);
        let left = g.choice(vec![i, f]);
        let right = g.choice(vec![i, f, c]);
        let plan = plan_for(&g, left, right, Mode::Subtype);
        let prog = WireProgram::compile(&plan).expect("compiles");
        let ok = MValue::Choice {
            index: 0,
            value: Box::new(MValue::Int(1)),
        };
        let mut w = CdrWriter::new(Endian::Little);
        prog.encode_value(&mut w, &ok).unwrap();
        let bad = MValue::Choice {
            index: 7,
            value: Box::new(MValue::Int(1)),
        };
        let mut w = CdrWriter::new(Endian::Little);
        assert!(prog.encode_value(&mut w, &bad).is_err());
    }

    #[test]
    fn semantic_pairs_are_declined() {
        // Cross-kind pairs that need hand-written conversions cannot be
        // compiled; the caller falls back to the interpreter.
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let f = g.real(RealPrecision::SINGLE);
        let left = g.record(vec![i, f]);
        let right = g.record(vec![f, f]);
        assert!(
            Comparer::new(&g, &g)
                .compare(left, right, Mode::Equivalence)
                .is_err(),
            "pair must not match structurally"
        );
        // An identity program over a record cycle with no intervening
        // choice is declined rather than looping.
        let cyc = g.recursive(|g, slf| {
            let i8_ = g.integer(IntRange::signed_bits(8));
            g.record(vec![i8_, slf])
        });
        assert!(WireProgram::identity(&g, cyc).is_err());
    }

    #[test]
    fn program_bytes_round_trip() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let f = g.real(RealPrecision::DOUBLE);
        let point = g.record(vec![f, f]);
        let list = g.list_of(point);
        let left = g.record(vec![i, list]);
        let right = g.record(vec![list, i]);
        let plan = plan_for(&g, left, right, Mode::Equivalence);
        let prog = WireProgram::compile(&plan).expect("compiles");
        let bytes = prog.to_bytes();
        let restored = WireProgram::from_bytes(&bytes).expect("round-trips");
        assert_eq!(restored, prog);
        assert!(WireProgram::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(WireProgram::from_bytes(&[]).is_err());
    }

    #[test]
    fn program_cache_compiles_once_and_persists() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let left = g.record(vec![i, i]);
        let right = g.record(vec![i, i]);
        let plan = plan_for(&g, left, right, Mode::Equivalence);
        let cache = ProgramCache::new();
        let key = CacheKey {
            left_fp: 1,
            right_fp: 2,
            mode: Mode::Equivalence,
            rules_fp: 3,
        };
        let p1 = cache
            .get_or_compile(key, || WireProgram::compile(&plan))
            .expect("compiles");
        let p2 = cache
            .get_or_compile(key, || panic!("must not recompile"))
            .expect("cached");
        assert!(Arc::ptr_eq(&p1, &p2));
        let stats = cache.stats();
        assert_eq!((stats.compiles, stats.hits), (1, 1));
        // Export/absorb round-trip.
        let exported = cache.export();
        assert_eq!(exported.len(), 1);
        let other = ProgramCache::new();
        assert_eq!(other.absorb(exported), 1);
        assert_eq!(other.lookup(&key).flatten().unwrap().as_ref(), p1.as_ref());
    }

    #[test]
    fn fused_encode_is_allocation_free_after_warmup() {
        // Structural proxy for the counting-allocator bench: the writer's
        // buffer, once warmed, is the only heap the encode path touches.
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let f = g.real(RealPrecision::DOUBLE);
        let rec = g.record(vec![i, f, i, i, f]);
        let prog = WireProgram::identity(&g, rec).expect("compiles");
        let v = MValue::Record(vec![
            MValue::Int(1),
            MValue::Real(2.0),
            MValue::Int(3),
            MValue::Int(4),
            MValue::Real(5.0),
        ]);
        let mut w = CdrWriter::new(Endian::Little);
        prog.encode_value(&mut w, &v).unwrap();
        let warm_cap = w.capacity();
        for _ in 0..100 {
            w.clear();
            prog.encode_value(&mut w, &v).unwrap();
        }
        assert_eq!(w.capacity(), warm_cap, "no buffer growth after warmup");
    }

    #[test]
    fn transparent_singleton_pairs_compile_and_agree() {
        // Choice([T]) on either side is resolved through by the comparer
        // (singleton_choice rule); the program replays the wrapper:
        // a left wrapper navigates through the value, a right wrapper
        // writes/checks a constant discriminant.
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let wrapped = g.choice(vec![i]);
        let lrec = g.record(vec![wrapped, i]);
        let rrec = g.record(vec![i, wrapped]);
        let plan = plan_for(&g, lrec, rrec, Mode::Equivalence);
        let prog = WireProgram::compile(&plan).expect("singleton chain compiles");
        let v = MValue::Record(vec![
            MValue::Choice {
                index: 0,
                value: Box::new(MValue::Int(7)),
            },
            MValue::Int(9),
        ]);
        agree(&plan, &prog, &v, Endian::Little);
        agree(&plan, &prog, &v, Endian::Big);
        // The interpreter's unwrap is lenient: a value built against the
        // collapsed view (no wrapper) encodes identically.
        let collapsed = MValue::Record(vec![MValue::Int(7), MValue::Int(9)]);
        agree(&plan, &prog, &collapsed, Endian::Little);
    }

    #[test]
    fn nested_choice_flatten_compiles_and_agrees() {
        // Left nests choices the comparer's associative flatten sees
        // through; right is the flat form. The program's dispatch tree
        // mirrors the left nesting and writes the right's nominal
        // discriminants.
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let r = g.real(RealPrecision::DOUBLE);
        let c = g.character(Repertoire::Latin1);
        let inner = g.choice(vec![i, r]);
        let left = g.choice(vec![inner, c]);
        let right = g.choice(vec![i, r, c]);
        let plan = plan_for(&g, left, right, Mode::Equivalence);
        let prog = WireProgram::compile(&plan).expect("nested flatten compiles");
        let vals = [
            MValue::Choice {
                index: 0,
                value: Box::new(MValue::Choice {
                    index: 0,
                    value: Box::new(MValue::Int(5)),
                }),
            },
            MValue::Choice {
                index: 0,
                value: Box::new(MValue::Choice {
                    index: 1,
                    value: Box::new(MValue::Real(1.25)),
                }),
            },
            MValue::Choice {
                index: 1,
                value: Box::new(MValue::Char('q')),
            },
        ];
        for v in &vals {
            agree(&plan, &prog, v, Endian::Little);
            agree(&plan, &prog, v, Endian::Big);
        }
    }

    #[test]
    fn hostile_program_bytes_get_typed_errors() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let f = g.real(RealPrecision::DOUBLE);
        let rec = g.record(vec![i, f]);
        let prog = WireProgram::identity(&g, rec).expect("compiles");
        let bytes = prog.to_bytes();

        // Trailing garbage is rejected, not silently ignored.
        let mut trailing = bytes.clone();
        trailing.extend_from_slice(&[0xAA, 0xBB]);
        assert_eq!(
            WireProgram::from_bytes(&trailing),
            Err(ProgramCodecError::TrailingBytes { extra: 2 })
        );

        // Truncation anywhere is typed.
        assert_eq!(
            WireProgram::from_bytes(&bytes[..bytes.len() - 1]),
            Err(ProgramCodecError::Truncated)
        );
        assert_eq!(
            WireProgram::from_bytes(&[]),
            Err(ProgramCodecError::Truncated)
        );

        // A foreign version byte is typed.
        let mut wrong = bytes.clone();
        wrong[0] = 77;
        assert_eq!(
            WireProgram::from_bytes(&wrong),
            Err(ProgramCodecError::BadVersion { got: 77 })
        );

        // An over-long node table is rejected before allocation.
        let mut huge = vec![CODEC_VERSION, 0];
        huge.extend_from_slice(&1_000_000u32.to_le_bytes());
        assert_eq!(
            WireProgram::from_bytes(&huge),
            Err(ProgramCodecError::NodeBudget {
                count: 1_000_000,
                max: MAX_NODES
            })
        );

        // An unknown opcode is typed with its section.
        let mut bad_op = vec![CODEC_VERSION, 0];
        bad_op.extend_from_slice(&1u32.to_le_bytes()); // one node
        bad_op.extend_from_slice(&0u32.to_le_bytes()); // slots
        bad_op.extend_from_slice(&1u32.to_le_bytes()); // one enc op
        bad_op.push(0xFF);
        assert_eq!(
            WireProgram::from_bytes(&bad_op),
            Err(ProgramCodecError::UnknownOpcode {
                section: "encode",
                code: 0xFF
            })
        );
    }

    #[test]
    fn cache_attributes_fallback_reasons() {
        let cache = ProgramCache::new();
        let key = CacheKey {
            left_fp: 10,
            right_fp: 20,
            mode: Mode::Equivalence,
            rules_fp: 30,
        };
        let out = cache.get_or_compile_reasoned(key, || {
            unsup(FallbackKind::Semantic, "needs a hand-written converter")
        });
        assert_eq!(out, Err(FallbackKind::Semantic));
        // The decline (and its class) is cached: no recompilation.
        let again = cache.get_or_compile_reasoned(key, || panic!("must not recompile"));
        assert_eq!(again, Err(FallbackKind::Semantic));
        assert_eq!(cache.lookup_reason(&key), Some(FallbackKind::Semantic));
        assert_eq!(cache.lookup(&key), Some(None), "legacy view still works");
        let breakdown = cache.fallback_breakdown();
        assert_eq!(
            breakdown
                .iter()
                .find(|(k, _)| *k == FallbackKind::Semantic)
                .unwrap()
                .1,
            1
        );
        assert_eq!(breakdown.iter().map(|(_, n)| n).sum::<u64>(), 1);
    }
}
