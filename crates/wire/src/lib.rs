//! Wire formats for network-enabled stubs.
//!
//! "Distributed interactions may use IIOP or any other wire format"
//! (paper §4). This crate provides:
//!
//! - [`cdr`] — an Mtype-guided Common Data Representation codec in the
//!   GIOP/IIOP style: size-aligned primitives relative to the stream
//!   start, both byte orders, `u32`-prefixed sequences for the canonical
//!   recursive collections, `u32` discriminants for Choices;
//! - [`mbp`] — the *Mockingbird protocol*: a compact self-describing
//!   tagged encoding used for `Dynamic` (Any-like) payloads and as the
//!   native format of the messaging runtime;
//! - [`giop`] — GIOP-style message framing (magic, version, flags,
//!   Request/Reply headers) so remote invocations travel in recognisable
//!   envelopes.
//!
//! The CDR codec is *structural*, not certified-interoperable: it obeys
//! CDR's alignment and endianness disciplines so the performance shape
//! of marshalling is faithful (DESIGN.md §2).

pub mod cdr;
pub mod giop;
pub mod mbp;
pub mod native;
pub mod program;

/// Upper bound on value/type nesting the codecs and the fused executors
/// will follow before returning an error. Shared by [`cdr`], [`mbp`] and
/// [`program`] so hostile, deeply nested payloads fail uniformly instead
/// of risking stack exhaustion. 512 leaves generous headroom for real
/// messages while staying far below what debug-build recursion frames
/// can fit in a 2 MiB thread stack (the previous 2048 guard fired only
/// after the stack was already gone).
pub const MAX_NESTING_DEPTH: usize = 512;

pub use cdr::{CdrError, CdrReader, CdrWriter};
pub use giop::{
    GiopError, HandshakeInfo, HandshakeVerdict, Message, MessageKind, ReplyStatus, RequestIds,
    WireDeadline, DEADLINE_CONTEXT_ID, MAX_FRAME_LEN, PROTOCOL_VERSION, TRACE_CONTEXT_ID,
};
pub use mockingbird_obs::TraceContext;
pub use native::{
    NativeDecodeFn, NativeEncodeFn, NativeEncodeInvocationFn, NativeKey, NativeProgramKind,
    NativeStub, NativeStubRegistry,
};
pub use program::{
    nominal_fingerprint, FallbackKind, ProgramCache, ProgramCodecError, ProgramStats, Unsupported,
    WireProgram,
};
