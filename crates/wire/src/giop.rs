//! GIOP-style message framing.
//!
//! Remote invocations travel in envelopes modelled on GIOP (the protocol
//! under IIOP): a 12-byte header (`GIOP` magic, version, flags carrying
//! the sender's byte order, message type, body size) followed by a
//! Request or Reply header and the CDR-encoded body.

use std::fmt;
use std::io::{self, IoSlice, Write};
use std::sync::atomic::{AtomicU32, Ordering};

use mockingbird_obs::TraceContext;
use mockingbird_values::Endian;

use crate::cdr::CdrReader;

/// The largest frame (header + payload) a peer may declare. Anything
/// larger is rejected *before* the receiver allocates a buffer, so a
/// forged length header cannot be used to exhaust memory.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Allocates connection-unique GIOP request ids.
///
/// A multiplexed connection owns one allocator and stamps every
/// outgoing request with a fresh id, so replies arriving out of order
/// can be correlated back to their waiters.
#[derive(Debug, Default)]
pub struct RequestIds(AtomicU32);

impl RequestIds {
    /// A new allocator, starting at 1 (0 is reserved for oneways that
    /// never correlate).
    #[must_use]
    pub const fn new() -> Self {
        RequestIds(AtomicU32::new(1))
    }

    /// The next unused id.
    pub fn next(&self) -> u32 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }
}

/// Framing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GiopError(pub String);

impl fmt::Display for GiopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GIOP framing error: {}", self.0)
    }
}

impl std::error::Error for GiopError {}

const MAGIC: &[u8; 4] = b"GIOP";
const VERSION: (u8, u8) = (1, 0);
const FLAG_LITTLE_ENDIAN: u8 = 0x01;

/// Service-context id of the trace-context slot carried in Request
/// headers (GIOP service contexts are `(id, data)` pairs; we define
/// vendor ids "MBTC" for tracing and "MBDL" for deadlines).
pub const TRACE_CONTEXT_ID: u32 = 0x4D42_5443;

/// Service-context id of the deadline slot ("MBDL"): the client's
/// remaining time budget, re-stamped on every attempt so the server
/// sees what is left *now*, not what the call started with.
pub const DEADLINE_CONTEXT_ID: u32 = 0x4D42_444C;

/// Encoded size of one trace slot: id + 128-bit trace id + 64-bit span
/// id + flags word, all u32-aligned.
const TRACE_SLOT_LEN: usize = 4 + 16 + 8 + 4;

/// Encoded size of one deadline slot: id + 64-bit budget in µs (two
/// u32 halves) + flags word.
const DEADLINE_SLOT_LEN: usize = 4 + 8 + 4;

const TRACE_FLAG_SAMPLED: u32 = 0x01;

const DEADLINE_FLAG_SHEDDABLE: u32 = 0x01;

/// Budget value meaning "no deadline, slot carries only flags".
const DEADLINE_NONE: u64 = u64::MAX;

/// The deadline service context: how much of the client's time budget
/// remains for this attempt, plus the call's criticality tier. Servers
/// use the budget to refuse doomed work (admission, dequeue, and
/// pre-dispatch checks) and the tier to shed brownout traffic first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireDeadline {
    /// Remaining budget in microseconds; `None` when the call has no
    /// deadline but still carries a criticality flag.
    pub budget_us: Option<u64>,
    /// Whether the caller marked this request sheddable (cut first
    /// under brownout, before critical traffic).
    pub sheddable: bool,
}

impl WireDeadline {
    /// A slot for `budget` of remaining time (saturating to µs).
    #[must_use]
    pub fn new(budget: std::time::Duration, sheddable: bool) -> Self {
        let us = u64::try_from(budget.as_micros()).unwrap_or(u64::MAX - 1);
        WireDeadline {
            budget_us: Some(us.min(u64::MAX - 1)),
            sheddable,
        }
    }

    /// A slot carrying only the criticality flag (no deadline).
    #[must_use]
    pub fn sheddable_only() -> Self {
        WireDeadline {
            budget_us: None,
            sheddable: true,
        }
    }

    /// The remaining budget as a `Duration`, if one was propagated.
    #[must_use]
    pub fn budget(&self) -> Option<std::time::Duration> {
        self.budget_us.map(std::time::Duration::from_micros)
    }
}

/// The supervision protocol revision spoken over [`MessageKind::Hello`]
/// frames. Peers with different revisions must not exchange requests.
pub const PROTOCOL_VERSION: u32 = 1;

/// What a peer asserts about itself at connect time: the two sides of a
/// Mockingbird boundary were compiled from *independent* declarations,
/// so before any request flows each side states which contract it was
/// compiled against. The interface fingerprint is the nominal (layout-
/// faithful) fingerprint of the operation table; the rules fingerprint
/// identifies the comparer rule set the fused wire programs were
/// compiled under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandshakeInfo {
    /// Supervision protocol revision ([`PROTOCOL_VERSION`]).
    pub protocol: u32,
    /// Nominal fingerprint of the interface (operation names and wire
    /// types). Mismatch means the peers were compiled against different
    /// declarations: requests would decode as garbage, so the connection
    /// is rejected.
    pub interface_fp: u128,
    /// Fingerprint of the rule set / program cache the fused data plane
    /// was compiled under. Mismatch alone is survivable: both sides fall
    /// back to the interpretive marshal path.
    pub rules_fp: u64,
}

impl HandshakeInfo {
    /// An assertion under the current [`PROTOCOL_VERSION`].
    #[must_use]
    pub fn new(interface_fp: u128, rules_fp: u64) -> Self {
        HandshakeInfo {
            protocol: PROTOCOL_VERSION,
            interface_fp,
            rules_fp,
        }
    }

    /// The server's verdict on a client proposal: reject on protocol or
    /// interface skew, degrade to the interpretive path when only the
    /// rule set (program cache) disagrees, accept otherwise.
    #[must_use]
    pub fn evaluate(&self, client: &HandshakeInfo) -> HandshakeVerdict {
        if self.protocol != client.protocol || self.interface_fp != client.interface_fp {
            HandshakeVerdict::Reject
        } else if self.rules_fp != client.rules_fp {
            HandshakeVerdict::InterpretiveOnly
        } else {
            HandshakeVerdict::Accept
        }
    }
}

/// The role/outcome field of a [`MessageKind::Hello`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeVerdict {
    /// A client proposal (no verdict yet).
    Propose,
    /// Fingerprints match: the fused data plane may run.
    Accept,
    /// Interface matches but the rule set differs: both sides must use
    /// the interpretive marshal path.
    InterpretiveOnly,
    /// Protocol or interface skew: the server closes the connection
    /// after this ack; the client surfaces a version-skew error.
    Reject,
}

impl HandshakeVerdict {
    fn to_u32(self) -> u32 {
        match self {
            HandshakeVerdict::Propose => 0,
            HandshakeVerdict::Accept => 1,
            HandshakeVerdict::InterpretiveOnly => 2,
            HandshakeVerdict::Reject => 3,
        }
    }

    fn from_u32(v: u32) -> Result<Self, GiopError> {
        Ok(match v {
            0 => HandshakeVerdict::Propose,
            1 => HandshakeVerdict::Accept,
            2 => HandshakeVerdict::InterpretiveOnly,
            3 => HandshakeVerdict::Reject,
            other => return Err(GiopError(format!("unknown handshake verdict {other}"))),
        })
    }
}

/// Reply outcome, mirroring GIOP reply statuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyStatus {
    /// The invocation completed normally.
    NoException,
    /// The target raised an application-level exception.
    UserException,
    /// The infrastructure failed (unknown object, conversion error, ...).
    SystemException,
    /// The server shed the request instead of queueing it (bounded
    /// dispatch queue or global in-flight cap exceeded). The request was
    /// *not* executed; idempotent callers may retry after backoff.
    Overloaded,
    /// The request's propagated deadline had already expired when the
    /// server looked at it (admission, dequeue, or pre-dispatch), so
    /// the work was refused rather than executed. Retrying is
    /// pointless: the client's budget is gone.
    DeadlineExpired,
}

impl ReplyStatus {
    fn to_u32(self) -> u32 {
        match self {
            ReplyStatus::NoException => 0,
            ReplyStatus::UserException => 1,
            ReplyStatus::SystemException => 2,
            ReplyStatus::Overloaded => 3,
            ReplyStatus::DeadlineExpired => 4,
        }
    }

    fn from_u32(v: u32) -> Result<Self, GiopError> {
        Ok(match v {
            0 => ReplyStatus::NoException,
            1 => ReplyStatus::UserException,
            2 => ReplyStatus::SystemException,
            3 => ReplyStatus::Overloaded,
            4 => ReplyStatus::DeadlineExpired,
            other => return Err(GiopError(format!("unknown reply status {other}"))),
        })
    }
}

/// The kind-specific part of a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageKind {
    /// An invocation request.
    Request {
        /// Correlates the reply.
        request_id: u32,
        /// Whether a reply is expected (`false` for oneway/messaging).
        response_expected: bool,
        /// Identifies the target object in the receiver's registry.
        object_key: Vec<u8>,
        /// The operation (method) name.
        operation: String,
    },
    /// A reply to a request.
    Reply {
        /// The request this replies to.
        request_id: u32,
        /// Outcome.
        status: ReplyStatus,
    },
    /// A connect-time handshake frame: the sender's compilation
    /// fingerprints plus a verdict (clients send
    /// [`HandshakeVerdict::Propose`], servers answer with their own info
    /// and an accept/degrade/reject verdict).
    Hello {
        /// The sender's fingerprints.
        info: HandshakeInfo,
        /// Proposal or server verdict.
        verdict: HandshakeVerdict,
    },
    /// An `MBAR` artifact-fetch frame: a joining node asks a peer (whose
    /// fingerprints already proved agreement via [`MessageKind::Hello`])
    /// for compiled artifacts it is missing, and the peer ships them
    /// back. The body is the `mockingbird-artifact` transfer payload
    /// (opaque at this layer); receivers re-check each record's content
    /// hash before trusting it.
    Artifact {
        /// Correlates the reply, like a request id.
        request_id: u32,
        /// `false` for the fetch request, `true` for the peer's reply.
        reply: bool,
    },
}

/// A framed message: headers plus a CDR-encoded body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// The sender's byte order (receivers byte-swap as needed).
    pub endian: Endian,
    /// Request or Reply header.
    pub kind: MessageKind,
    /// Propagated trace context, carried in a service-context slot of
    /// Request headers (ignored for other kinds). `None` ⇒ an empty
    /// service-context list is framed, so the header layout is uniform.
    pub trace: Option<TraceContext>,
    /// Propagated deadline budget + criticality, carried in a second
    /// service-context slot of Request headers (ignored for other
    /// kinds). `None` frames no slot, so deadline-free traffic is
    /// byte-identical to the pre-deadline wire format.
    pub deadline: Option<WireDeadline>,
    /// The CDR body (arguments or results).
    pub body: Vec<u8>,
}

impl Message {
    /// Builds a request message.
    pub fn request(
        request_id: u32,
        response_expected: bool,
        object_key: Vec<u8>,
        operation: impl Into<String>,
        endian: Endian,
        body: Vec<u8>,
    ) -> Self {
        Message {
            endian,
            kind: MessageKind::Request {
                request_id,
                response_expected,
                object_key,
                operation: operation.into(),
            },
            trace: None,
            deadline: None,
            body,
        }
    }

    /// Attaches a trace context (propagated only on Request frames).
    #[must_use]
    pub fn with_trace(mut self, trace: TraceContext) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attaches a deadline slot (propagated only on Request frames).
    #[must_use]
    pub fn with_deadline(mut self, deadline: WireDeadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Builds a reply message.
    pub fn reply(request_id: u32, status: ReplyStatus, endian: Endian, body: Vec<u8>) -> Self {
        Message {
            endian,
            kind: MessageKind::Reply { request_id, status },
            trace: None,
            deadline: None,
            body,
        }
    }

    /// Builds a handshake frame (empty body).
    pub fn hello(info: HandshakeInfo, verdict: HandshakeVerdict, endian: Endian) -> Self {
        Message {
            endian,
            kind: MessageKind::Hello { info, verdict },
            trace: None,
            deadline: None,
            body: Vec::new(),
        }
    }

    /// Builds an `MBAR` artifact-fetch frame carrying the opaque transfer
    /// payload as its body.
    pub fn artifact(request_id: u32, reply: bool, endian: Endian, body: Vec<u8>) -> Self {
        Message {
            endian,
            kind: MessageKind::Artifact { request_id, reply },
            trace: None,
            deadline: None,
            body,
        }
    }

    /// Exact byte length of the kind-specific header (what the old
    /// two-buffer path measured by serialising; all fields are at most
    /// 4-aligned and the header starts 4-aligned, so the length is pure
    /// arithmetic).
    fn header_len(&self) -> usize {
        match &self.kind {
            MessageKind::Request {
                object_key,
                operation,
                ..
            } => {
                let n = 8 + 4 + object_key.len();
                let through_op = n.div_ceil(4) * 4 + 4 + operation.len();
                // Pad the operation name to 4, then the service-context
                // count and whichever slots (trace, deadline) are set.
                let mut slots = 0;
                if self.trace.is_some() {
                    slots += TRACE_SLOT_LEN;
                }
                if self.deadline.is_some() {
                    slots += DEADLINE_SLOT_LEN;
                }
                through_op.div_ceil(4) * 4 + 4 + slots
            }
            MessageKind::Reply { .. } => 8,
            // protocol + verdict + interface_fp (4×u32) + rules_fp (2×u32)
            MessageKind::Hello { .. } => 32,
            // request_id + role (request/reply)
            MessageKind::Artifact { .. } => 8,
        }
    }

    fn put_u32_endian(&self, out: &mut Vec<u8>, v: u32) {
        match self.endian {
            Endian::Little => out.extend_from_slice(&v.to_le_bytes()),
            Endian::Big => out.extend_from_slice(&v.to_be_bytes()),
        }
    }

    /// Serialises everything before the body — preamble, kind-specific
    /// header, padding to the 8-aligned body start — into `out`
    /// (cleared first), reserving `reserve` bytes up front.
    ///
    /// `restamp` replaces the deadline slot's value at encode time
    /// (same slot, same size, so no length changes); it is ignored when
    /// the message frames no deadline slot of its own.
    fn head_into(&self, out: &mut Vec<u8>, reserve: usize, restamp: Option<WireDeadline>) {
        let deadline = match (self.deadline, restamp) {
            (Some(_), Some(r)) => Some(r),
            (own, _) => own,
        };
        out.clear();
        out.reserve_exact(reserve);
        let header_padded = self.header_len().div_ceil(8) * 8;
        let size = header_padded + self.body.len();
        out.extend_from_slice(MAGIC);
        out.push(VERSION.0);
        out.push(VERSION.1);
        out.push(match self.endian {
            Endian::Little => FLAG_LITTLE_ENDIAN,
            Endian::Big => 0,
        });
        out.push(match self.kind {
            MessageKind::Request { .. } => 0,
            MessageKind::Reply { .. } => 1,
            MessageKind::Hello { .. } => 2,
            MessageKind::Artifact { .. } => 3,
        });
        out.extend_from_slice(&(size as u32).to_be_bytes());
        match &self.kind {
            MessageKind::Request {
                request_id,
                response_expected,
                object_key,
                operation,
            } => {
                self.put_u32_endian(out, *request_id);
                self.put_u32_endian(out, *response_expected as u32);
                self.put_u32_endian(out, object_key.len() as u32);
                out.extend_from_slice(object_key);
                while !(out.len() - 12).is_multiple_of(4) {
                    out.push(0);
                }
                self.put_u32_endian(out, operation.len() as u32);
                out.extend_from_slice(operation.as_bytes());
                while !(out.len() - 12).is_multiple_of(4) {
                    out.push(0);
                }
                let count = u32::from(self.trace.is_some()) + u32::from(self.deadline.is_some());
                self.put_u32_endian(out, count);
                if let Some(t) = &self.trace {
                    self.put_u32_endian(out, TRACE_CONTEXT_ID);
                    self.put_u32_endian(out, (t.trace_id >> 96) as u32);
                    self.put_u32_endian(out, (t.trace_id >> 64) as u32);
                    self.put_u32_endian(out, (t.trace_id >> 32) as u32);
                    self.put_u32_endian(out, t.trace_id as u32);
                    self.put_u32_endian(out, (t.span_id >> 32) as u32);
                    self.put_u32_endian(out, t.span_id as u32);
                    self.put_u32_endian(out, if t.sampled { TRACE_FLAG_SAMPLED } else { 0 });
                }
                if let Some(d) = &deadline {
                    let budget = d.budget_us.unwrap_or(DEADLINE_NONE);
                    self.put_u32_endian(out, DEADLINE_CONTEXT_ID);
                    self.put_u32_endian(out, (budget >> 32) as u32);
                    self.put_u32_endian(out, budget as u32);
                    self.put_u32_endian(
                        out,
                        if d.sheddable {
                            DEADLINE_FLAG_SHEDDABLE
                        } else {
                            0
                        },
                    );
                }
            }
            MessageKind::Reply { request_id, status } => {
                self.put_u32_endian(out, *request_id);
                self.put_u32_endian(out, status.to_u32());
            }
            MessageKind::Hello { info, verdict } => {
                self.put_u32_endian(out, info.protocol);
                self.put_u32_endian(out, verdict.to_u32());
                self.put_u32_endian(out, (info.interface_fp >> 96) as u32);
                self.put_u32_endian(out, (info.interface_fp >> 64) as u32);
                self.put_u32_endian(out, (info.interface_fp >> 32) as u32);
                self.put_u32_endian(out, info.interface_fp as u32);
                self.put_u32_endian(out, (info.rules_fp >> 32) as u32);
                self.put_u32_endian(out, info.rules_fp as u32);
            }
            MessageKind::Artifact { request_id, reply } => {
                self.put_u32_endian(out, *request_id);
                self.put_u32_endian(out, *reply as u32);
            }
        }
        debug_assert_eq!(out.len() - 12, self.header_len());
        // Align the body start to 8 so body alignment is origin-stable.
        out.resize(12 + header_padded, 0);
    }

    /// Serialises the message to framed bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.to_bytes_into(&mut out);
        out
    }

    /// Serialises into a caller-owned (pooled) buffer: the exact frame
    /// size is reserved once, so a warmed buffer never reallocates.
    pub fn to_bytes_into(&self, out: &mut Vec<u8>) {
        let total = 12 + self.header_len().div_ceil(8) * 8 + self.body.len();
        self.head_into(out, total, None);
        out.extend_from_slice(&self.body);
        debug_assert_eq!(out.len(), total);
    }

    /// Writes the framed message to `w` without copying the body: the
    /// head is serialised into `scratch` (a reusable buffer) and head +
    /// body go out as one vectored write where the sink supports it.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the sink; a sink that accepts zero
    /// bytes yields `WriteZero`.
    pub fn write_to<W: Write + ?Sized>(&self, w: &mut W, scratch: &mut Vec<u8>) -> io::Result<()> {
        self.write_to_restamped(w, scratch, None)
    }

    /// Like [`write_to`](Self::write_to), but replaces the deadline
    /// slot's value with `restamp` as it encodes (ignored when the
    /// message frames no deadline slot). Transports use this to deduct
    /// the time a request spent waiting for a shared connection from
    /// the propagated budget: the slot is stamped at the *actual* send
    /// instant, so the server's view of the remaining time never drifts
    /// past the caller's.
    ///
    /// # Errors
    ///
    /// As [`write_to`](Self::write_to).
    pub fn write_to_restamped<W: Write + ?Sized>(
        &self,
        w: &mut W,
        scratch: &mut Vec<u8>,
        restamp: Option<WireDeadline>,
    ) -> io::Result<()> {
        self.head_into(scratch, 12 + self.header_len().div_ceil(8) * 8, restamp);
        let head = scratch.len();
        let total = head + self.body.len();
        let mut written = 0usize;
        while written < total {
            let n = if written < head {
                let slices = [IoSlice::new(&scratch[written..]), IoSlice::new(&self.body)];
                w.write_vectored(&slices)?
            } else {
                w.write(&self.body[written - head..])?
            };
            if n == 0 {
                return Err(io::ErrorKind::WriteZero.into());
            }
            written += n;
        }
        Ok(())
    }

    /// Parses a framed message.
    ///
    /// # Errors
    ///
    /// Returns [`GiopError`] on bad magic, truncation, or malformed
    /// headers.
    pub fn from_bytes(data: &[u8]) -> Result<Message, GiopError> {
        if data.len() < 12 {
            return Err(GiopError("truncated header".into()));
        }
        if &data[0..4] != MAGIC {
            return Err(GiopError("bad magic (not a GIOP message)".into()));
        }
        let endian = if data[6] & FLAG_LITTLE_ENDIAN != 0 {
            Endian::Little
        } else {
            Endian::Big
        };
        let msg_type = data[7];
        let size = u32::from_be_bytes([data[8], data[9], data[10], data[11]]) as usize;
        if 12 + size > MAX_FRAME_LEN {
            return Err(GiopError(format!(
                "frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
                12 + size
            )));
        }
        if data.len() < 12 + size {
            return Err(GiopError(format!(
                "truncated body: header says {size}, have {}",
                data.len() - 12
            )));
        }
        let payload = &data[12..12 + size];
        let mut r = CdrReader::new(payload, endian);
        let mut trace = None;
        let mut deadline = None;
        let kind = match msg_type {
            0 => {
                let request_id = r.get_u32().map_err(wrap)?;
                let response_expected = r.get_u32().map_err(wrap)? != 0;
                let object_key = r.get_bytes().map_err(wrap)?.to_vec();
                let operation = String::from_utf8_lossy(r.get_bytes().map_err(wrap)?).into_owned();
                let contexts = r.get_u32().map_err(wrap)?;
                if contexts > 2 {
                    return Err(GiopError(format!(
                        "unsupported service context count {contexts}"
                    )));
                }
                for _ in 0..contexts {
                    let id = r.get_u32().map_err(wrap)?;
                    match id {
                        TRACE_CONTEXT_ID => {
                            let mut trace_id = 0u128;
                            for _ in 0..4 {
                                trace_id =
                                    (trace_id << 32) | u128::from(r.get_u32().map_err(wrap)?);
                            }
                            let span_hi = r.get_u32().map_err(wrap)?;
                            let span_lo = r.get_u32().map_err(wrap)?;
                            let flags = r.get_u32().map_err(wrap)?;
                            trace = Some(TraceContext {
                                trace_id,
                                span_id: (u64::from(span_hi) << 32) | u64::from(span_lo),
                                sampled: flags & TRACE_FLAG_SAMPLED != 0,
                            });
                        }
                        DEADLINE_CONTEXT_ID => {
                            let hi = r.get_u32().map_err(wrap)?;
                            let lo = r.get_u32().map_err(wrap)?;
                            let flags = r.get_u32().map_err(wrap)?;
                            let budget = (u64::from(hi) << 32) | u64::from(lo);
                            deadline = Some(WireDeadline {
                                budget_us: (budget != DEADLINE_NONE).then_some(budget),
                                sheddable: flags & DEADLINE_FLAG_SHEDDABLE != 0,
                            });
                        }
                        other => {
                            return Err(GiopError(format!(
                                "unknown service context id {other:#x}"
                            )));
                        }
                    }
                }
                MessageKind::Request {
                    request_id,
                    response_expected,
                    object_key,
                    operation,
                }
            }
            1 => {
                let request_id = r.get_u32().map_err(wrap)?;
                let status = ReplyStatus::from_u32(r.get_u32().map_err(wrap)?)?;
                MessageKind::Reply { request_id, status }
            }
            2 => {
                let protocol = r.get_u32().map_err(wrap)?;
                let verdict = HandshakeVerdict::from_u32(r.get_u32().map_err(wrap)?)?;
                let mut interface_fp = 0u128;
                for _ in 0..4 {
                    interface_fp = (interface_fp << 32) | u128::from(r.get_u32().map_err(wrap)?);
                }
                let rules_hi = r.get_u32().map_err(wrap)?;
                let rules_lo = r.get_u32().map_err(wrap)?;
                MessageKind::Hello {
                    info: HandshakeInfo {
                        protocol,
                        interface_fp,
                        rules_fp: (u64::from(rules_hi) << 32) | u64::from(rules_lo),
                    },
                    verdict,
                }
            }
            3 => {
                let request_id = r.get_u32().map_err(wrap)?;
                let role = r.get_u32().map_err(wrap)?;
                if role > 1 {
                    return Err(GiopError(format!("bad artifact frame role {role}")));
                }
                MessageKind::Artifact {
                    request_id,
                    reply: role == 1,
                }
            }
            other => return Err(GiopError(format!("unknown message type {other}"))),
        };
        let consumed = payload.len() - r.remaining();
        let body_start = consumed.div_ceil(8) * 8;
        let body = payload.get(body_start..).unwrap_or(&[]).to_vec();
        Ok(Message {
            endian,
            kind,
            trace,
            deadline,
            body,
        })
    }

    /// Expected total frame length given at least 12 header bytes, for
    /// stream reassembly.
    ///
    /// # Errors
    ///
    /// Returns [`GiopError`] if fewer than 12 bytes are supplied, the
    /// magic is wrong, or the declared size exceeds [`MAX_FRAME_LEN`]
    /// (so receivers reject forged lengths before allocating).
    pub fn frame_len(header: &[u8]) -> Result<usize, GiopError> {
        if header.len() < 12 {
            return Err(GiopError("need 12 bytes to size a frame".into()));
        }
        if &header[0..4] != MAGIC {
            return Err(GiopError("bad magic (not a GIOP message)".into()));
        }
        let size = u32::from_be_bytes([header[8], header[9], header[10], header[11]]) as usize;
        if 12 + size > MAX_FRAME_LEN {
            return Err(GiopError(format!(
                "frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
                12 + size
            )));
        }
        Ok(12 + size)
    }
}

fn wrap(e: crate::cdr::CdrError) -> GiopError {
    GiopError(e.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip_both_endians() {
        for endian in [Endian::Little, Endian::Big] {
            let m = Message::request(7, true, b"obj-42".to_vec(), "fitter", endian, vec![1, 2, 3]);
            let bytes = m.to_bytes();
            assert_eq!(Message::frame_len(&bytes).unwrap(), bytes.len());
            let parsed = Message::from_bytes(&bytes).unwrap();
            assert_eq!(parsed, m);
        }
    }

    #[test]
    fn trace_context_round_trips_both_endians() {
        for endian in [Endian::Little, Endian::Big] {
            for sampled in [true, false] {
                let t = TraceContext {
                    trace_id: 0x0011_2233_4455_6677_8899_AABB_CCDD_EEFF,
                    span_id: 0x1234_5678_9ABC_DEF0,
                    sampled,
                };
                let m = Message::request(9, true, b"obj".to_vec(), "echo", endian, vec![7; 21])
                    .with_trace(t);
                let bytes = m.to_bytes();
                assert_eq!(Message::frame_len(&bytes).unwrap(), bytes.len());
                let parsed = Message::from_bytes(&bytes).unwrap();
                assert_eq!(parsed.trace, Some(t));
                assert_eq!(parsed, m);
            }
        }
    }

    #[test]
    fn traceless_requests_still_round_trip() {
        // Operation names of every length 0..8 exercise the padding
        // before the service-context count.
        for len in 0..8 {
            let op: String = "abcdefgh"[..len].to_string();
            let m = Message::request(1, true, b"k".to_vec(), op, Endian::Little, vec![3; 5]);
            let parsed = Message::from_bytes(&m.to_bytes()).unwrap();
            assert_eq!(parsed.trace, None);
            assert_eq!(parsed, m);
        }
    }

    #[test]
    fn unknown_service_context_rejected() {
        let m = Message::request(1, true, vec![], "op", Endian::Little, vec![]).with_trace(
            TraceContext {
                trace_id: 1,
                span_id: 2,
                sampled: true,
            },
        );
        let mut bytes = m.to_bytes();
        // The context id sits right after the count; corrupt it.
        let needle = TRACE_CONTEXT_ID.to_le_bytes();
        let pos = bytes
            .windows(4)
            .position(|w| w == needle)
            .expect("context id in frame");
        bytes[pos..pos + 4].copy_from_slice(&0xFFu32.to_le_bytes());
        let err = Message::from_bytes(&bytes).unwrap_err();
        assert!(err.0.contains("service context"), "{err}");
    }

    #[test]
    fn reply_round_trip() {
        let m = Message::reply(7, ReplyStatus::NoException, Endian::Little, vec![9, 9]);
        let parsed = Message::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(parsed, m);
        let m = Message::reply(8, ReplyStatus::SystemException, Endian::Big, vec![]);
        assert_eq!(Message::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn oneway_requests() {
        let m = Message::request(0, false, vec![], "notify", Endian::Little, vec![]);
        let parsed = Message::from_bytes(&m.to_bytes()).unwrap();
        let MessageKind::Request {
            response_expected, ..
        } = parsed.kind
        else {
            panic!()
        };
        assert!(!response_expected);
    }

    #[test]
    fn body_alignment_is_origin_stable() {
        // The body must start on an 8-byte boundary within the payload so
        // CDR alignment computed against offset 0 stays valid.
        let m = Message::request(1, true, b"k".to_vec(), "op", Endian::Little, vec![0xAA; 16]);
        let bytes = m.to_bytes();
        let parsed = Message::from_bytes(&bytes).unwrap();
        assert_eq!(parsed.body, vec![0xAA; 16]);
    }

    #[test]
    fn forged_huge_length_header_rejected_before_allocation() {
        // A syntactically valid header whose size field would make the
        // receiver allocate ~4 GiB: both sizing paths must reject it.
        let mut forged = vec![0u8; 12];
        forged[0..4].copy_from_slice(b"GIOP");
        forged[4] = 1; // version
        forged[6] = 0x01; // little-endian flag
        forged[7] = 0; // Request
        forged[8..12].copy_from_slice(&u32::MAX.to_be_bytes());
        let err = Message::frame_len(&forged).unwrap_err();
        assert!(err.0.contains("cap"), "{err}");
        let err = Message::from_bytes(&forged).unwrap_err();
        assert!(err.0.contains("cap"), "{err}");
        // A frame exactly at the cap is still sized (the cap bounds
        // allocation, it does not shrink the protocol).
        forged[8..12].copy_from_slice(&((MAX_FRAME_LEN - 12) as u32).to_be_bytes());
        assert_eq!(Message::frame_len(&forged).unwrap(), MAX_FRAME_LEN);
    }

    #[test]
    fn to_bytes_reserves_exactly_once() {
        // The frame length is computed arithmetically up front, so the
        // output buffer is sized exactly and never reallocates — and a
        // pooled buffer reused across messages stays at its warmed
        // capacity.
        for m in [
            Message::request(
                7,
                true,
                b"obj-42".to_vec(),
                "fitter",
                Endian::Little,
                vec![1; 37],
            ),
            Message::request(8, true, b"key".to_vec(), "op", Endian::Big, vec![]),
            Message::request(9, true, b"key".to_vec(), "op", Endian::Little, vec![2; 5])
                .with_trace(TraceContext {
                    trace_id: 42,
                    span_id: 7,
                    sampled: true,
                }),
            Message::reply(7, ReplyStatus::NoException, Endian::Little, vec![9; 111]),
        ] {
            let bytes = m.to_bytes();
            assert_eq!(bytes.capacity(), bytes.len(), "exact single reservation");
            let mut pooled = Vec::new();
            m.to_bytes_into(&mut pooled);
            assert_eq!(pooled, bytes);
            let cap = pooled.capacity();
            let ptr = pooled.as_ptr();
            m.to_bytes_into(&mut pooled);
            assert_eq!(pooled.capacity(), cap, "warmed buffer does not grow");
            assert_eq!(pooled.as_ptr(), ptr, "warmed buffer does not move");
        }
    }

    #[test]
    fn write_to_emits_identical_frames_without_body_copy() {
        let m = Message::request(3, true, b"k".to_vec(), "echo", Endian::Little, vec![5; 64]);
        let mut sink = Vec::new();
        let mut scratch = Vec::new();
        m.write_to(&mut sink, &mut scratch).unwrap();
        assert_eq!(sink, m.to_bytes());
        assert!(
            scratch.len() < sink.len(),
            "body was not copied into scratch"
        );
        // A second write reuses the scratch buffer without growth.
        let cap = scratch.capacity();
        sink.clear();
        m.write_to(&mut sink, &mut scratch).unwrap();
        assert_eq!(sink, m.to_bytes());
        assert_eq!(scratch.capacity(), cap);
    }

    #[test]
    fn hello_round_trip_both_endians() {
        for endian in [Endian::Little, Endian::Big] {
            for verdict in [
                HandshakeVerdict::Propose,
                HandshakeVerdict::Accept,
                HandshakeVerdict::InterpretiveOnly,
                HandshakeVerdict::Reject,
            ] {
                let info = HandshakeInfo::new(
                    0x0123_4567_89AB_CDEF_FEDC_BA98_7654_3210,
                    0xDEAD_BEEF_CAFE_F00D,
                );
                let m = Message::hello(info, verdict, endian);
                let bytes = m.to_bytes();
                assert_eq!(Message::frame_len(&bytes).unwrap(), bytes.len());
                assert_eq!(Message::from_bytes(&bytes).unwrap(), m);
            }
        }
    }

    #[test]
    fn overloaded_reply_round_trips() {
        let m = Message::reply(5, ReplyStatus::Overloaded, Endian::Little, vec![1, 2]);
        assert_eq!(Message::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn deadline_expired_reply_round_trips() {
        let m = Message::reply(6, ReplyStatus::DeadlineExpired, Endian::Big, vec![3]);
        assert_eq!(Message::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn deadline_slot_round_trips_both_endians() {
        use std::time::Duration;
        for endian in [Endian::Little, Endian::Big] {
            for sheddable in [true, false] {
                let d = WireDeadline::new(Duration::from_micros(123_456), sheddable);
                let m = Message::request(4, true, b"obj".to_vec(), "echo", endian, vec![9; 13])
                    .with_deadline(d);
                let bytes = m.to_bytes();
                assert_eq!(Message::frame_len(&bytes).unwrap(), bytes.len());
                let parsed = Message::from_bytes(&bytes).unwrap();
                assert_eq!(parsed.deadline, Some(d));
                assert_eq!(
                    parsed.deadline.unwrap().budget(),
                    Some(Duration::from_micros(123_456))
                );
                assert_eq!(parsed, m);
            }
        }
    }

    #[test]
    fn trace_and_deadline_slots_coexist() {
        use std::time::Duration;
        let t = TraceContext {
            trace_id: 0xAABB,
            span_id: 0xCCDD,
            sampled: true,
        };
        let d = WireDeadline::new(Duration::from_millis(100), true);
        for endian in [Endian::Little, Endian::Big] {
            let m = Message::request(11, true, b"k".to_vec(), "op", endian, vec![7; 9])
                .with_trace(t)
                .with_deadline(d);
            let bytes = m.to_bytes();
            assert_eq!(Message::frame_len(&bytes).unwrap(), bytes.len());
            let parsed = Message::from_bytes(&bytes).unwrap();
            assert_eq!(parsed.trace, Some(t));
            assert_eq!(parsed.deadline, Some(d));
            assert_eq!(parsed, m);
        }
    }

    #[test]
    fn artifact_frames_round_trip_both_endians() {
        for endian in [Endian::Little, Endian::Big] {
            for reply in [false, true] {
                let m = Message::artifact(42, reply, endian, b"MBAR-payload".to_vec());
                let bytes = m.to_bytes();
                assert_eq!(Message::frame_len(&bytes).unwrap(), bytes.len());
                let parsed = Message::from_bytes(&bytes).unwrap();
                assert_eq!(parsed, m);
                assert_eq!(parsed.body, b"MBAR-payload");
            }
        }
    }

    #[test]
    fn artifact_frame_with_forged_role_rejected() {
        let m = Message::artifact(1, false, Endian::Little, vec![]);
        let mut bytes = m.to_bytes();
        // The role word sits right after the request id in the header.
        bytes[16..20].copy_from_slice(&7u32.to_le_bytes());
        let err = Message::from_bytes(&bytes).unwrap_err();
        assert!(err.0.contains("artifact frame role"), "{}", err.0);
    }

    #[test]
    fn sheddable_only_slot_carries_no_budget() {
        let m = Message::request(2, true, b"k".to_vec(), "op", Endian::Little, vec![])
            .with_deadline(WireDeadline::sheddable_only());
        let parsed = Message::from_bytes(&m.to_bytes()).unwrap();
        let d = parsed.deadline.unwrap();
        assert_eq!(d.budget(), None);
        assert!(d.sheddable);
    }

    #[test]
    fn three_service_contexts_rejected() {
        // Craft a frame whose context count claims 3: parsers must
        // refuse before trying to read unknown slots.
        let m = Message::request(1, true, vec![], "op", Endian::Little, vec![]);
        let mut bytes = m.to_bytes();
        // Header layout for an empty key and a 2-byte op name:
        // request_id(4) + response_expected(4) + key len(4) + op len(4)
        // + "op"(2) + pad(2) puts the context count at payload offset
        // 20, i.e. frame offset 32.
        bytes[32..36].copy_from_slice(&3u32.to_le_bytes());
        let err = Message::from_bytes(&bytes).unwrap_err();
        assert!(err.0.contains("service context count"), "{err}");
    }

    #[test]
    fn handshake_verdict_matrix() {
        let mine = HandshakeInfo::new(10, 20);
        assert_eq!(mine.evaluate(&mine), HandshakeVerdict::Accept);
        // Only the rule set differs: degrade, don't reject.
        assert_eq!(
            mine.evaluate(&HandshakeInfo::new(10, 99)),
            HandshakeVerdict::InterpretiveOnly
        );
        // Interface skew: reject.
        assert_eq!(
            mine.evaluate(&HandshakeInfo::new(11, 20)),
            HandshakeVerdict::Reject
        );
        // Protocol skew: reject even with matching fingerprints.
        let old = HandshakeInfo {
            protocol: PROTOCOL_VERSION + 1,
            interface_fp: 10,
            rules_fp: 20,
        };
        assert_eq!(mine.evaluate(&old), HandshakeVerdict::Reject);
    }

    #[test]
    fn request_ids_are_unique_and_increasing() {
        let ids = RequestIds::new();
        let a = ids.next();
        let b = ids.next();
        let c = ids.next();
        assert!(a >= 1);
        assert!(a < b && b < c);
    }

    #[test]
    fn malformed_frames_rejected() {
        assert!(Message::from_bytes(b"GIOP").is_err());
        assert!(Message::from_bytes(b"NOPE00000000").is_err());
        let m = Message::reply(1, ReplyStatus::NoException, Endian::Little, vec![1, 2, 3]);
        let mut bytes = m.to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(Message::from_bytes(&bytes).is_err());
        assert!(Message::frame_len(&bytes[..4]).is_err());
    }
}
