//! The Mockingbird protocol (MBP): a compact self-describing encoding.
//!
//! Unlike CDR, MBP values carry their own structure, so no type needs to
//! be agreed in advance. It serves two roles: the payload format of
//! `Dynamic` (Any-like) values inside CDR streams, and the native format
//! of the messaging runtime's send/receive stubs (paper §5's
//! collaboration study used message passing rather than RPC).
//!
//! Layout: one tag byte, then big-endian fixed-width fields.

use std::fmt;

use mockingbird_values::{MValue, PortRef};

/// Errors from MBP decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MbpError(pub String);

impl fmt::Display for MbpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MBP error: {}", self.0)
    }
}

impl std::error::Error for MbpError {}

const TAG_INT: u8 = 0x01;
const TAG_CHAR: u8 = 0x02;
const TAG_REAL: u8 = 0x03;
const TAG_UNIT: u8 = 0x04;
const TAG_RECORD: u8 = 0x05;
const TAG_CHOICE: u8 = 0x06;
const TAG_LIST: u8 = 0x07;
const TAG_PORT: u8 = 0x08;
const TAG_DYNAMIC: u8 = 0x09;

/// Encodes a value to MBP bytes.
pub fn encode(v: &MValue) -> Vec<u8> {
    let mut out = Vec::new();
    put(&mut out, v);
    out
}

/// Encodes a value to MBP bytes appended to `out` — the allocation-free
/// entry point the fused marshal path uses for `Dynamic` payloads.
pub fn encode_into(out: &mut Vec<u8>, v: &MValue) {
    put(out, v);
}

fn put(out: &mut Vec<u8>, v: &MValue) {
    match v {
        MValue::Int(x) => {
            out.push(TAG_INT);
            out.extend_from_slice(&x.to_be_bytes());
        }
        MValue::Char(c) => {
            out.push(TAG_CHAR);
            out.extend_from_slice(&(*c as u32).to_be_bytes());
        }
        MValue::Real(r) => {
            out.push(TAG_REAL);
            out.extend_from_slice(&r.to_bits().to_be_bytes());
        }
        MValue::Unit => out.push(TAG_UNIT),
        MValue::Record(items) => {
            out.push(TAG_RECORD);
            out.extend_from_slice(&(items.len() as u32).to_be_bytes());
            for item in items {
                put(out, item);
            }
        }
        MValue::Choice { index, value } => {
            out.push(TAG_CHOICE);
            out.extend_from_slice(&(*index as u32).to_be_bytes());
            put(out, value);
        }
        MValue::List(items) => {
            out.push(TAG_LIST);
            out.extend_from_slice(&(items.len() as u32).to_be_bytes());
            for item in items {
                put(out, item);
            }
        }
        MValue::Port(PortRef(id)) => {
            out.push(TAG_PORT);
            out.extend_from_slice(&id.to_be_bytes());
        }
        MValue::Dynamic { tag, value } => {
            out.push(TAG_DYNAMIC);
            out.extend_from_slice(&(tag.len() as u32).to_be_bytes());
            out.extend_from_slice(tag.as_bytes());
            put(out, value);
        }
    }
}

/// Decodes MBP bytes back into a value.
///
/// # Errors
///
/// Returns [`MbpError`] on truncation, unknown tags, or trailing bytes.
pub fn decode(data: &[u8]) -> Result<MValue, MbpError> {
    let mut pos = 0usize;
    let v = get(data, &mut pos, 0)?;
    if pos != data.len() {
        return Err(MbpError(format!("{} trailing bytes", data.len() - pos)));
    }
    Ok(v)
}

fn take<'a>(data: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], MbpError> {
    if *pos + n > data.len() {
        return Err(MbpError("truncated stream".into()));
    }
    let out = &data[*pos..*pos + n];
    *pos += n;
    Ok(out)
}

fn get_u32(data: &[u8], pos: &mut usize) -> Result<u32, MbpError> {
    let b = take(data, pos, 4)?;
    Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
}

fn get(data: &[u8], pos: &mut usize, depth: usize) -> Result<MValue, MbpError> {
    if depth > crate::MAX_NESTING_DEPTH {
        return Err(MbpError("nesting exceeds supported depth".into()));
    }
    let tag = take(data, pos, 1)?[0];
    match tag {
        TAG_INT => {
            let b = take(data, pos, 16)?;
            let mut arr = [0u8; 16];
            arr.copy_from_slice(b);
            Ok(MValue::Int(i128::from_be_bytes(arr)))
        }
        TAG_CHAR => {
            let code = get_u32(data, pos)?;
            char::from_u32(code)
                .map(MValue::Char)
                .ok_or_else(|| MbpError(format!("invalid character code {code}")))
        }
        TAG_REAL => {
            let b = take(data, pos, 8)?;
            let mut arr = [0u8; 8];
            arr.copy_from_slice(b);
            Ok(MValue::Real(f64::from_bits(u64::from_be_bytes(arr))))
        }
        TAG_UNIT => Ok(MValue::Unit),
        TAG_RECORD => {
            let n = get_u32(data, pos)? as usize;
            if n > data.len() {
                return Err(MbpError(format!("implausible record arity {n}")));
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(get(data, pos, depth + 1)?);
            }
            Ok(MValue::Record(items))
        }
        TAG_CHOICE => {
            let index = get_u32(data, pos)? as usize;
            let value = get(data, pos, depth + 1)?;
            Ok(MValue::Choice {
                index,
                value: Box::new(value),
            })
        }
        TAG_LIST => {
            let n = get_u32(data, pos)? as usize;
            if n > data.len() {
                return Err(MbpError(format!("implausible list length {n}")));
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(get(data, pos, depth + 1)?);
            }
            Ok(MValue::List(items))
        }
        TAG_PORT => {
            let b = take(data, pos, 8)?;
            let mut arr = [0u8; 8];
            arr.copy_from_slice(b);
            Ok(MValue::Port(PortRef(u64::from_be_bytes(arr))))
        }
        TAG_DYNAMIC => {
            let len = get_u32(data, pos)? as usize;
            let tag_bytes = take(data, pos, len)?;
            let tag = String::from_utf8_lossy(tag_bytes).into_owned();
            let value = get(data, pos, depth + 1)?;
            Ok(MValue::Dynamic {
                tag,
                value: Box::new(value),
            })
        }
        other => Err(MbpError(format!("unknown tag byte 0x{other:02x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(v: &MValue) {
        assert_eq!(&decode(&encode(v)).unwrap(), v);
    }

    #[test]
    fn all_kinds_round_trip() {
        rt(&MValue::Int(-(1 << 100)));
        rt(&MValue::Char('日'));
        rt(&MValue::Real(-1.25e300));
        rt(&MValue::Unit);
        rt(&MValue::Record(vec![MValue::Int(1), MValue::Unit]));
        rt(&MValue::Choice {
            index: 3,
            value: Box::new(MValue::Real(0.5)),
        });
        rt(&MValue::List(vec![
            MValue::string("a"),
            MValue::string("b"),
        ]));
        rt(&MValue::Port(PortRef(u64::MAX)));
        rt(&MValue::Dynamic {
            tag: "Int{0..=1}".into(),
            value: Box::new(MValue::Int(1)),
        });
    }

    #[test]
    fn deeply_nested_and_empty_values() {
        let mut v = MValue::Unit;
        for _ in 0..100 {
            v = MValue::Record(vec![v]);
        }
        rt(&v);
        rt(&MValue::Record(vec![]));
        rt(&MValue::List(vec![]));
    }

    #[test]
    fn hostile_deeply_nested_buffer_is_rejected_not_overflowed() {
        // 3000 nested TAG_CHOICE frames: 5 bytes buy one nesting level,
        // so a ~15 KB buffer would otherwise drive ~3000 stack frames.
        // The guard must return MbpError, not overflow.
        let mut hostile = Vec::new();
        for _ in 0..3000 {
            hostile.push(TAG_CHOICE);
            hostile.extend_from_slice(&0u32.to_be_bytes());
        }
        hostile.push(TAG_UNIT);
        let err = decode(&hostile).unwrap_err();
        assert!(err.0.contains("depth"), "{err}");
    }

    #[test]
    fn encode_into_appends_in_place() {
        let mut out = vec![0xAB];
        encode_into(&mut out, &MValue::Int(5));
        assert_eq!(out[0], 0xAB);
        assert_eq!(&out[1..], encode(&MValue::Int(5)).as_slice());
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[0xFF]).is_err());
        assert!(decode(&[TAG_INT, 1, 2]).is_err());
        // Trailing bytes.
        let mut bytes = encode(&MValue::Unit);
        bytes.push(0);
        assert!(decode(&bytes).is_err());
        // Implausible length.
        let bytes = [TAG_LIST, 0xFF, 0xFF, 0xFF, 0xFF];
        assert!(decode(&bytes).is_err());
    }
}
