//! Coercion plans: executable conversions between matched Mtypes.
//!
//! "If the Comparer determines that two types are equivalent or one is a
//! subtype of another, it generates a coercion plan. ... This coercion
//! plan is used by the stub generator to generate adapters between the
//! two types." (paper §4)
//!
//! A [`CoercionPlan`] packages the two Mtype graphs, the
//! [`Correspondence`] the Comparer recorded, and the rule set it was
//! computed under. Its interpreter converts neutral [`MValue`]s:
//!
//! - `Record` entries flatten the source value (associativity / unit
//!   elimination, exactly as the comparer viewed it), convert each leaf,
//!   apply the recorded permutation, and reassemble the *target's*
//!   grouping — this is how a Java `Line` of two `Point`s becomes two C
//!   `float[2]` out-parameters;
//! - `Choice` entries map the active alternative through the recorded
//!   alternative map;
//! - canonical list spines convert element-wise and iteratively, so a
//!   million-element collection does not recurse a million frames;
//! - `Port` references pass through (the runtime interposes proxies at
//!   invocation time).
//!
//! Equivalence plans convert in both directions; subtype plans are
//! one-way, matching the paper's "two-way converter"/"one-way converter"
//! distinction (§3).

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, RwLock};

use mockingbird_comparer::{
    resolve_transparent, Comparer, Correspondence, Entry, Mode, PrimCoercion, RecordFlatten,
    RuleSet,
};
use mockingbird_mtype::{MtypeGraph, MtypeId, MtypeKind};
use mockingbird_values::mvalue::list_element_type;
use mockingbird_values::MValue;

/// Errors raised while executing a coercion plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvertError(pub String);

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conversion error: {}", self.0)
    }
}

impl std::error::Error for ConvertError {}

fn err<T>(m: impl Into<String>) -> Result<T, ConvertError> {
    Err(ConvertError(m.into()))
}

/// Which way a conversion runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    /// Left-declaration values to right-declaration values.
    Forward,
    /// Right to left (equivalence plans only).
    Backward,
}

/// A hand-written value converter supplied by the programmer for a
/// semantic bridge (paper §6).
pub type SemanticFn = Arc<dyn Fn(&MValue) -> Result<MValue, String> + Send + Sync>;

/// The two directions of a semantic bridge's conversion.
#[derive(Clone)]
struct SemanticConv {
    forward: SemanticFn,
    backward: Option<SemanticFn>,
}

impl fmt::Debug for SemanticConv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SemanticConv")
            .field("forward", &"<fn>")
            .field("backward", &self.backward.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

/// An executable conversion between two matched Mtypes.
///
/// Holds `Arc`-shared frozen graphs (and correspondence) so it can
/// outlive the comparison session, be handed to stubs and the runtime,
/// and be cloned or shared across threads without copying either graph.
#[derive(Debug)]
pub struct CoercionPlan {
    left: Arc<MtypeGraph>,
    right: Arc<MtypeGraph>,
    corr: Arc<Correspondence>,
    rules: RuleSet,
    mode: Mode,
    /// Entries proven on demand for pairs the original proof flattened
    /// through (e.g. the element record of a list dissolved into its
    /// cons cell by associativity).
    extra: RwLock<Correspondence>,
    /// Hand-written converters for semantic bridges, keyed by resolved
    /// node pair (paper §6).
    semantics: HashMap<(MtypeId, MtypeId), SemanticConv>,
}

impl Clone for CoercionPlan {
    fn clone(&self) -> Self {
        CoercionPlan {
            left: self.left.clone(),
            right: self.right.clone(),
            corr: self.corr.clone(),
            rules: self.rules.clone(),
            mode: self.mode,
            extra: RwLock::new(self.extra.read().expect("plan cache poisoned").clone()),
            semantics: self.semantics.clone(),
        }
    }
}

impl CoercionPlan {
    /// Packages a comparison result into an executable plan.
    ///
    /// `left`/`right` must be the graphs the comparison ran over, and
    /// `rules` the rule set it used (entry lookup replays the same node
    /// normalisation).
    pub fn new(
        left: &MtypeGraph,
        right: &MtypeGraph,
        corr: Correspondence,
        rules: RuleSet,
        mode: Mode,
    ) -> Self {
        Self::new_shared(
            Arc::new(left.clone()),
            Arc::new(right.clone()),
            Arc::new(corr),
            rules,
            mode,
        )
    }

    /// As [`new`](CoercionPlan::new), but taking already-frozen graphs
    /// and a cached correspondence by `Arc` — no copying. This is the
    /// constructor the batch compiler and the session's plan cache use:
    /// every plan over one graph snapshot shares the same frozen arena.
    pub fn new_shared(
        left: Arc<MtypeGraph>,
        right: Arc<MtypeGraph>,
        corr: Arc<Correspondence>,
        rules: RuleSet,
        mode: Mode,
    ) -> Self {
        let extra = RwLock::new(Correspondence {
            left_root: corr.left_root,
            right_root: corr.right_root,
            entries: Default::default(),
        });
        CoercionPlan {
            left,
            right,
            corr,
            rules,
            mode,
            extra,
            semantics: HashMap::new(),
        }
    }

    /// Registers the hand-written converter for a semantic bridge the
    /// comparison assumed (paper §6: programmer-supplied conversions
    /// "integrated with the automated structural ones"). `backward` is
    /// required for two-way use of the bridge; pass `None` for one-way
    /// plans.
    pub fn register_semantic(
        &mut self,
        left: MtypeId,
        right: MtypeId,
        forward: SemanticFn,
        backward: Option<SemanticFn>,
    ) {
        let l = resolve_transparent(&self.left, &self.rules, left);
        let r = resolve_transparent(&self.right, &self.rules, right);
        self.semantics
            .insert((l, r), SemanticConv { forward, backward });
    }

    /// Looks up (or proves on demand) the matching entry for a resolved
    /// node pair.
    fn entry_for(&self, l: MtypeId, r: MtypeId) -> Result<Entry, ConvertError> {
        if let Some(e) = self.corr.entry(l, r) {
            return Ok(e.clone());
        }
        if let Some(e) = self.extra.read().expect("plan cache poisoned").entry(l, r) {
            return Ok(e.clone());
        }
        // The original proof may have flattened through this pair; prove
        // it directly and cache every entry of the sub-proof.
        let sub = Comparer::with_rules(&self.left, &self.right, self.rules.clone())
            .compare(l, r, self.mode)
            .map_err(|m| {
                ConvertError(format!(
                    "no correspondence entry for pair ({}, {}): {}",
                    self.left.display_capped(l, 320),
                    self.right.display_capped(r, 320),
                    m.reason
                ))
            })?;
        let mut cache = self.extra.write().expect("plan cache poisoned");
        cache.entries.extend(sub.entries);
        cache
            .entry(l, r)
            .cloned()
            .ok_or_else(|| ConvertError("sub-proof did not cover its own root".into()))
    }

    /// The comparison mode this plan was built under.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The left root Mtype id.
    pub fn left_root(&self) -> MtypeId {
        self.corr.left_root
    }

    /// The right root Mtype id.
    pub fn right_root(&self) -> MtypeId {
        self.corr.right_root
    }

    /// The left Mtype graph.
    pub fn left_graph(&self) -> &MtypeGraph {
        &self.left
    }

    /// The right Mtype graph.
    pub fn right_graph(&self) -> &MtypeGraph {
        &self.right
    }

    /// Number of matched node pairs in the underlying correspondence.
    pub fn len(&self) -> usize {
        self.corr.len()
    }

    /// Whether the correspondence is empty.
    pub fn is_empty(&self) -> bool {
        self.corr.is_empty()
    }

    /// Converts a value of the left type into a value of the right type.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError`] if the value does not inhabit the left
    /// type or the correspondence lacks a needed entry.
    pub fn convert(&self, v: &MValue) -> Result<MValue, ConvertError> {
        self.convert_at(
            self.corr.left_root,
            self.corr.right_root,
            v,
            Dir::Forward,
            0,
        )
    }

    /// Converts a value of the right type back into the left type.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError`] for subtype plans (the conversion is
    /// one-way, paper §3) or on shape mismatches.
    pub fn convert_back(&self, v: &MValue) -> Result<MValue, ConvertError> {
        if self.mode != Mode::Equivalence {
            return err(
                "this is a one-way (subtype) plan; only equivalence plans convert backwards",
            );
        }
        self.convert_at(
            self.corr.left_root,
            self.corr.right_root,
            v,
            Dir::Backward,
            0,
        )
    }

    /// Converts a value at an *interior* matched pair (e.g. the output
    /// records of a function's reply ports). Stubs use this to run the
    /// argument and result conversions of one proof separately.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError`] if the pair was not part of the proof or
    /// the value does not fit.
    pub fn convert_pair(&self, l: MtypeId, r: MtypeId, v: &MValue) -> Result<MValue, ConvertError> {
        self.convert_at(l, r, v, Dir::Forward, 0)
    }

    /// Converts a value backwards at an interior matched pair.
    ///
    /// # Errors
    ///
    /// As [`CoercionPlan::convert_pair`]; additionally fails on one-way
    /// (subtype) plans.
    pub fn convert_pair_back(
        &self,
        l: MtypeId,
        r: MtypeId,
        v: &MValue,
    ) -> Result<MValue, ConvertError> {
        if self.mode != Mode::Equivalence {
            return err(
                "this is a one-way (subtype) plan; only equivalence plans convert backwards",
            );
        }
        self.convert_at(l, r, v, Dir::Backward, 0)
    }

    /// The rule set the proof ran under.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The matching entry for a resolved pair, proving it on demand if
    /// the original proof flattened through it.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError`] if the pair is not related.
    pub fn matched_entry(&self, l: MtypeId, r: MtypeId) -> Result<Entry, ConvertError> {
        let l = resolve_transparent(&self.left, &self.rules, l);
        let r = resolve_transparent(&self.right, &self.rules, r);
        self.entry_for(l, r)
    }

    fn convert_at(
        &self,
        l: MtypeId,
        r: MtypeId,
        v: &MValue,
        dir: Dir,
        depth: usize,
    ) -> Result<MValue, ConvertError> {
        if depth > 2048 {
            return err("value nesting exceeds supported depth");
        }
        // The source value may carry Choice wrappers the comparer's
        // singleton-collapse resolved through; strip them to match the
        // entry keys, and re-wrap on the destination side at the end.
        let (src_graph, src_node, dst_graph, dst_node) = match dir {
            Dir::Forward => (&self.left, l, &self.right, r),
            Dir::Backward => (&self.right, r, &self.left, l),
        };
        let v_norm = unwrap_singletons(src_graph, &self.rules, src_node, v)?;
        let l = resolve_transparent(&self.left, &self.rules, l);
        let r = resolve_transparent(&self.right, &self.rules, r);
        let v = v_norm;
        let result = self.convert_resolved(l, r, v, dir, depth)?;
        rewrap_singletons(dst_graph, &self.rules, dst_node, result)
    }

    fn convert_resolved(
        &self,
        l: MtypeId,
        r: MtypeId,
        v: &MValue,
        dir: Dir,
        depth: usize,
    ) -> Result<MValue, ConvertError> {
        let entry = self.entry_for(l, r)?;
        match &entry {
            Entry::Semantic => {
                let conv = self.semantics.get(&(l, r)).ok_or_else(|| {
                    ConvertError(format!(
                        "semantic bridge for ({}, {}) has no registered converter                          (call register_semantic)",
                        self.left.display_capped(l, 160),
                        self.right.display_capped(r, 160)
                    ))
                })?;
                match dir {
                    Dir::Forward => (conv.forward)(v)
                        .map_err(|m| ConvertError(format!("hand-written conversion failed: {m}"))),
                    Dir::Backward => match &conv.backward {
                        Some(back) => back(v).map_err(|m| {
                            ConvertError(format!("hand-written conversion failed: {m}"))
                        }),
                        None => err("this semantic bridge has no backward converter registered"),
                    },
                }
            }
            Entry::Prim(c) => self.convert_prim(*c, v, dir, r, l),
            Entry::Port { .. } => match v {
                MValue::Port(p) => Ok(MValue::Port(*p)),
                other => err(format!("expected a port reference, got {other}")),
            },
            Entry::Record {
                left_children,
                right_children,
                perm,
                policy,
            } => {
                let (src_graph, src_node, dst_graph, dst_node) = match dir {
                    Dir::Forward => (&self.left, l, &self.right, r),
                    Dir::Backward => (&self.right, r, &self.left, l),
                };
                let mut leaves = Vec::new();
                match policy {
                    RecordFlatten::Full => {
                        flatten_value(src_graph, &self.rules, src_node, v, &mut leaves)?
                    }
                    RecordFlatten::OneLevel => {
                        one_level_align(src_graph, &self.rules, src_node, v, &mut leaves)?
                    }
                }
                let (src_children, dst_children): (&[MtypeId], &[MtypeId]) = match dir {
                    Dir::Forward => (left_children, right_children),
                    Dir::Backward => (right_children, left_children),
                };
                if leaves.len() != src_children.len() {
                    return err(format!(
                        "record value has {} leaves, type expects {}",
                        leaves.len(),
                        src_children.len()
                    ));
                }
                // dst index i takes src index mapping(i).
                let mut converted = Vec::with_capacity(dst_children.len());
                for (i, &dst_child) in dst_children.iter().enumerate() {
                    let src_index = match dir {
                        Dir::Forward => perm[i],
                        Dir::Backward => perm
                            .iter()
                            .position(|&p| p == i)
                            .ok_or_else(|| ConvertError("incomplete permutation".into()))?,
                    };
                    let src_child = src_children[src_index];
                    let item = match dir {
                        Dir::Forward => self.convert_at(
                            src_child,
                            dst_child,
                            leaves[src_index],
                            dir,
                            depth + 1,
                        )?,
                        Dir::Backward => self.convert_at(
                            dst_child,
                            src_child,
                            leaves[src_index],
                            dir,
                            depth + 1,
                        )?,
                    };
                    converted.push(item);
                }
                let mut cursor = 0usize;
                let out = match policy {
                    RecordFlatten::Full => {
                        build_value(dst_graph, &self.rules, dst_node, &converted, &mut cursor, 0)?
                    }
                    RecordFlatten::OneLevel => {
                        one_level_build(dst_graph, &self.rules, dst_node, &converted, &mut cursor)?
                    }
                };
                if cursor != converted.len() {
                    return err("internal error: leftover leaves while rebuilding record");
                }
                Ok(out)
            }
            Entry::Choice {
                left_alts,
                right_alts,
                alt_map,
            } => {
                // Canonical list spines convert element-wise, iteratively.
                if let MValue::List(items) = v {
                    let (src_elem, dst_elem) = match dir {
                        Dir::Forward => (
                            list_element_type(&self.left, l),
                            list_element_type(&self.right, r),
                        ),
                        Dir::Backward => (
                            list_element_type(&self.right, r),
                            list_element_type(&self.left, l),
                        ),
                    };
                    let (Some(se), Some(de)) = (src_elem, dst_elem) else {
                        return err("list value against a non-list Choice pair");
                    };
                    let mut out = Vec::with_capacity(items.len());
                    for item in items {
                        let c = match dir {
                            Dir::Forward => self.convert_at(se, de, item, dir, depth + 1)?,
                            Dir::Backward => self.convert_at(de, se, item, dir, depth + 1)?,
                        };
                        out.push(c);
                    }
                    return Ok(MValue::List(out));
                }
                let (src_graph, src_node, dst_graph, dst_node, src_alts, dst_alts) = match dir {
                    Dir::Forward => (&self.left, l, &self.right, r, left_alts, right_alts),
                    Dir::Backward => (&self.right, r, &self.left, l, right_alts, left_alts),
                };
                // The value's indices are *nominal* (they address the
                // Choice node's own children, possibly nested); the
                // entry's alternative lists and alt_map are *flattened*.
                // Map nominal -> flat, translate, map flat -> nominal.
                let (src_flat, payload) = choice_to_flat(src_graph, &self.rules, src_node, v)?;
                if src_flat >= src_alts.len() {
                    return err(format!(
                        "choice alternative {src_flat} out of {} matched alternatives",
                        src_alts.len()
                    ));
                }
                let dst_flat = match dir {
                    Dir::Forward => alt_map[src_flat],
                    Dir::Backward => {
                        alt_map.iter().position(|&j| j == src_flat).ok_or_else(|| {
                            ConvertError(format!(
                                "alternative {src_flat} has no backward counterpart"
                            ))
                        })?
                    }
                };
                if dst_flat == usize::MAX {
                    return err(format!(
                        "alternative {src_flat} was not matched by the comparer"
                    ));
                }
                let converted = match dir {
                    Dir::Forward => self.convert_at(
                        src_alts[src_flat],
                        dst_alts[dst_flat],
                        payload,
                        dir,
                        depth + 1,
                    )?,
                    Dir::Backward => self.convert_at(
                        dst_alts[dst_flat],
                        src_alts[src_flat],
                        payload,
                        dir,
                        depth + 1,
                    )?,
                };
                choice_from_flat(
                    dst_graph,
                    &self.rules,
                    dst_node,
                    dst_alts[dst_flat],
                    converted,
                )
            }
        }
    }

    fn convert_prim(
        &self,
        c: PrimCoercion,
        v: &MValue,
        dir: Dir,
        r: MtypeId,
        l: MtypeId,
    ) -> Result<MValue, ConvertError> {
        match (c, v) {
            (PrimCoercion::Int, MValue::Int(x)) => Ok(MValue::Int(*x)),
            (PrimCoercion::Real { .. }, MValue::Real(x)) => Ok(MValue::Real(*x)),
            (PrimCoercion::Char, MValue::Char(x)) => Ok(MValue::Char(*x)),
            (PrimCoercion::Unit, MValue::Unit) => Ok(MValue::Unit),
            (PrimCoercion::Dynamic, MValue::Dynamic { .. }) => Ok(v.clone()),
            (PrimCoercion::IntoDynamic, _) => {
                let tag = match dir {
                    Dir::Forward => self.left.display(l).to_string(),
                    Dir::Backward => self.right.display(r).to_string(),
                };
                Ok(MValue::Dynamic {
                    tag,
                    value: Box::new(v.clone()),
                })
            }
            (c, v) => err(format!("value {v} does not match primitive coercion {c:?}")),
        }
    }
}

/// The flattened alternative list of a Choice node under the rule set.
fn choice_flat_list(graph: &MtypeGraph, rules: &RuleSet, node: MtypeId) -> Vec<MtypeId> {
    if rules.assoc {
        mockingbird_mtype::canon::flatten_choice(graph, node)
    } else {
        graph.kind(node).children().to_vec()
    }
}

/// Whether a node (resolved) is a singleton Choice the comparer's
/// resolution collapsed through.
fn is_transparent_singleton(graph: &MtypeGraph, rules: &RuleSet, node: MtypeId) -> bool {
    rules.singleton_choice && matches!(graph.kind(node), MtypeKind::Choice(_)) && {
        let flat = choice_flat_list(graph, rules, node);
        flat.len() == 1 && graph.resolve(flat[0]) != node
    }
}

/// Strips the Choice wrappers corresponding to singleton collapses of
/// `node`, returning the inner value the entry keys describe.
fn unwrap_singletons<'v>(
    graph: &MtypeGraph,
    rules: &RuleSet,
    node: MtypeId,
    v: &'v MValue,
) -> Result<&'v MValue, ConvertError> {
    let mut cur_node = graph.resolve(node);
    let mut cur_v = v;
    let mut hops = 0usize;
    while is_transparent_singleton(graph, rules, cur_node) {
        hops += 1;
        if hops > graph.len() + 1 {
            return err("singleton choice chain does not terminate");
        }
        let MValue::Choice { index, value } = cur_v else {
            // The value was produced against the collapsed view already.
            return Ok(cur_v);
        };
        let MtypeKind::Choice(children) = graph.kind(cur_node) else {
            unreachable!()
        };
        let Some(&child) = children.get(*index) else {
            return err(format!("choice index {index} out of {}", children.len()));
        };
        cur_v = value;
        cur_node = graph.resolve(child);
    }
    Ok(cur_v)
}

/// Re-adds the Choice wrappers a destination node's singleton collapses
/// removed, so the produced value inhabits the *nominal* type.
fn rewrap_singletons(
    graph: &MtypeGraph,
    rules: &RuleSet,
    node: MtypeId,
    v: MValue,
) -> Result<MValue, ConvertError> {
    let mut chain = Vec::new();
    let mut cur = graph.resolve(node);
    let mut hops = 0usize;
    while is_transparent_singleton(graph, rules, cur) {
        hops += 1;
        if hops > graph.len() + 1 {
            return err("singleton choice chain does not terminate");
        }
        let MtypeKind::Choice(children) = graph.kind(cur) else {
            unreachable!()
        };
        chain.push(0usize);
        cur = graph.resolve(children[0]);
    }
    Ok(chain
        .into_iter()
        .rev()
        .fold(v, |acc, index| MValue::Choice {
            index,
            value: Box::new(acc),
        }))
}

/// Maps a nominal Choice value to its flattened alternative index and
/// payload, mirroring `canon::flatten_choice`'s traversal (including its
/// cycle stops and id-level deduplication).
fn choice_to_flat<'v>(
    graph: &MtypeGraph,
    rules: &RuleSet,
    node: MtypeId,
    v: &'v MValue,
) -> Result<(usize, &'v MValue), ConvertError> {
    let flat = choice_flat_list(graph, rules, node);
    let mut path = Vec::new();
    let (leaf, payload) = choice_descend(graph, rules, node, v, &mut path)?;
    let idx = flat
        .iter()
        .position(|&c| c == leaf)
        .or_else(|| {
            flat.iter()
                .position(|&c| graph.resolve(c) == graph.resolve(leaf))
        })
        .ok_or_else(|| {
            ConvertError(format!(
                "selected alternative `{}` not found among flattened alternatives",
                graph.display(leaf)
            ))
        })?;
    Ok((idx, payload))
}

fn choice_descend<'v>(
    graph: &MtypeGraph,
    rules: &RuleSet,
    node: MtypeId,
    v: &'v MValue,
    path: &mut Vec<MtypeId>,
) -> Result<(MtypeId, &'v MValue), ConvertError> {
    let node = graph.resolve(node);
    let MtypeKind::Choice(children) = graph.kind(node) else {
        return err(format!(
            "expected a Choice node, found {}",
            graph.kind(node).tag()
        ));
    };
    let MValue::Choice { index, value } = v else {
        return err(format!("expected a choice value, got {v}"));
    };
    let Some(&child) = children.get(*index) else {
        return err(format!("choice index {index} out of {}", children.len()));
    };
    path.push(node);
    let rchild = graph.resolve(child);
    let result = if rules.assoc
        && matches!(graph.kind(rchild), MtypeKind::Choice(_))
        && !path.contains(&rchild)
        && list_element_type(graph, rchild).is_none()
    {
        choice_descend(graph, rules, rchild, value, path)
    } else {
        Ok((child, value.as_ref()))
    };
    path.pop();
    result
}

/// Builds a nominal Choice value whose selected (flattened) alternative
/// is `target_leaf`, wrapping `payload` in the nominal index path.
fn choice_from_flat(
    graph: &MtypeGraph,
    rules: &RuleSet,
    node: MtypeId,
    target_leaf: MtypeId,
    payload: MValue,
) -> Result<MValue, ConvertError> {
    fn dfs(
        graph: &MtypeGraph,
        rules: &RuleSet,
        node: MtypeId,
        target: MtypeId,
        path: &mut Vec<MtypeId>,
        idx_path: &mut Vec<usize>,
    ) -> bool {
        let node = graph.resolve(node);
        let MtypeKind::Choice(children) = graph.kind(node) else {
            return false;
        };
        path.push(node);
        for (i, &child) in children.clone().iter().enumerate() {
            let rchild = graph.resolve(child);
            if rules.assoc
                && matches!(graph.kind(rchild), MtypeKind::Choice(_))
                && !path.contains(&rchild)
                && list_element_type(graph, rchild).is_none()
            {
                idx_path.push(i);
                if dfs(graph, rules, rchild, target, path, idx_path) {
                    path.pop();
                    return true;
                }
                idx_path.pop();
            } else if child == target || rchild == graph.resolve(target) {
                idx_path.push(i);
                path.pop();
                return true;
            }
        }
        path.pop();
        false
    }
    let mut path = Vec::new();
    let mut idx_path = Vec::new();
    if !dfs(graph, rules, node, target_leaf, &mut path, &mut idx_path) {
        return err(format!(
            "alternative `{}` not reachable in the destination Choice",
            graph.display(target_leaf)
        ));
    }
    Ok(idx_path
        .into_iter()
        .rev()
        .fold(payload, |acc, index| MValue::Choice {
            index,
            value: Box::new(acc),
        }))
}

/// Aligns a record value with the comparer's *one-level* view: nominal
/// children in order, `Unit` children elided.
fn one_level_align<'v>(
    graph: &MtypeGraph,
    rules: &RuleSet,
    node: MtypeId,
    v: &'v MValue,
    out: &mut Vec<&'v MValue>,
) -> Result<(), ConvertError> {
    let node = graph.resolve(node);
    let MtypeKind::Record(children) = graph.kind(node) else {
        // Non-record nodes contribute themselves (cross-kind matches use
        // the Full policy, so this only happens for view singletons).
        out.push(v);
        return Ok(());
    };
    let MValue::Record(items) = v else {
        return err(format!("expected a record value, got {v}"));
    };
    if items.len() != children.len() {
        return err(format!(
            "record value has {} fields, type has {}",
            items.len(),
            children.len()
        ));
    }
    for (c, item) in children.clone().iter().zip(items) {
        if rules.unit_elim && matches!(graph.kind(graph.resolve(*c)), MtypeKind::Unit) {
            if !matches!(item, MValue::Unit) {
                return err(format!("expected unit, got {item}"));
            }
            continue;
        }
        out.push(item);
    }
    Ok(())
}

/// Rebuilds a record value from one-level leaves: converted children in
/// nominal order, `Unit` children re-inserted.
fn one_level_build(
    graph: &MtypeGraph,
    rules: &RuleSet,
    node: MtypeId,
    leaves: &[MValue],
    cursor: &mut usize,
) -> Result<MValue, ConvertError> {
    let node = graph.resolve(node);
    let MtypeKind::Record(children) = graph.kind(node) else {
        let v = leaves
            .get(*cursor)
            .ok_or_else(|| ConvertError("ran out of leaves while rebuilding record".into()))?
            .clone();
        *cursor += 1;
        return Ok(v);
    };
    let mut items = Vec::with_capacity(children.len());
    for c in children.clone() {
        if rules.unit_elim && matches!(graph.kind(graph.resolve(c)), MtypeKind::Unit) {
            items.push(MValue::Unit);
            continue;
        }
        let v = leaves
            .get(*cursor)
            .ok_or_else(|| ConvertError("ran out of leaves while rebuilding record".into()))?
            .clone();
        items.push(v);
        *cursor += 1;
    }
    Ok(MValue::Record(items))
}

/// Flattens a value the way the comparer's record view flattened its
/// type: nested records inline (resolving through recursive binders,
/// stopping at genuine cycles exactly like `canon::flatten_record`),
/// unit children vanish, leaves stay.
fn flatten_value<'v>(
    graph: &MtypeGraph,
    rules: &RuleSet,
    node: MtypeId,
    v: &'v MValue,
    out: &mut Vec<&'v MValue>,
) -> Result<(), ConvertError> {
    let mut path = Vec::new();
    flatten_value_rec(graph, rules, node, v, out, &mut path, true)
}

#[allow(clippy::too_many_arguments)]
fn flatten_value_rec<'v>(
    graph: &MtypeGraph,
    rules: &RuleSet,
    node: MtypeId,
    v: &'v MValue,
    out: &mut Vec<&'v MValue>,
    path: &mut Vec<MtypeId>,
    top: bool,
) -> Result<(), ConvertError> {
    if path.len() > 2048 {
        return err("record nesting exceeds supported depth");
    }
    let node = graph.resolve(node);
    match graph.kind(node) {
        MtypeKind::Record(children) if (rules.assoc && !path.contains(&node)) || top => {
            let MValue::Record(items) = v else {
                return err(format!("expected a record value, got {v}"));
            };
            if items.len() != children.len() {
                return err(format!(
                    "record value has {} fields, type has {}",
                    items.len(),
                    children.len()
                ));
            }
            if rules.assoc {
                path.push(node);
                for (c, item) in children.clone().iter().zip(items) {
                    flatten_value_rec(graph, rules, *c, item, out, path, false)?;
                }
                path.pop();
            } else {
                for item in items {
                    out.push(item);
                }
            }
            Ok(())
        }
        MtypeKind::Unit if rules.unit_elim && !top => match v {
            MValue::Unit => Ok(()),
            other => err(format!("expected unit, got {other}")),
        },
        _ => {
            out.push(v);
            Ok(())
        }
    }
}

/// Rebuilds a value with the grouping of `node`, consuming flattened
/// leaf values in order (the mirror of [`flatten_value`]).
fn build_value(
    graph: &MtypeGraph,
    rules: &RuleSet,
    node: MtypeId,
    leaves: &[MValue],
    cursor: &mut usize,
    depth: usize,
) -> Result<MValue, ConvertError> {
    let mut path = Vec::new();
    build_value_rec(graph, rules, node, leaves, cursor, &mut path, depth == 0)
}

fn build_value_rec(
    graph: &MtypeGraph,
    rules: &RuleSet,
    node: MtypeId,
    leaves: &[MValue],
    cursor: &mut usize,
    path: &mut Vec<MtypeId>,
    top: bool,
) -> Result<MValue, ConvertError> {
    if path.len() > 2048 {
        return err("record nesting exceeds supported depth");
    }
    let node = graph.resolve(node);
    match graph.kind(node) {
        MtypeKind::Record(children) if (rules.assoc && !path.contains(&node)) || top => {
            let children = children.clone();
            let mut items = Vec::with_capacity(children.len());
            if rules.assoc {
                path.push(node);
                for c in children {
                    items.push(build_value_rec(
                        graph, rules, c, leaves, cursor, path, false,
                    )?);
                }
                path.pop();
            } else {
                for _ in children {
                    let v = leaves.get(*cursor).ok_or_else(|| {
                        ConvertError("ran out of leaves while rebuilding record".into())
                    })?;
                    items.push(v.clone());
                    *cursor += 1;
                }
            }
            Ok(MValue::Record(items))
        }
        MtypeKind::Unit if rules.unit_elim && !top => Ok(MValue::Unit),
        _ => {
            let v = leaves
                .get(*cursor)
                .ok_or_else(|| ConvertError("ran out of leaves while rebuilding record".into()))?
                .clone();
            *cursor += 1;
            Ok(v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_comparer::Comparer;
    use mockingbird_mtype::{IntRange, RealPrecision, Repertoire};

    fn plan_for(g: &MtypeGraph, l: MtypeId, r: MtypeId, mode: Mode) -> CoercionPlan {
        let corr = Comparer::new(g, g)
            .compare(l, r, mode)
            .expect("types must match");
        CoercionPlan::new(g, g, corr, RuleSet::full(), mode)
    }

    #[test]
    fn permuted_record_conversion() {
        // Record(Int, Real, Char) -> Record(Char, Real, Int)
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let r = g.real(RealPrecision::SINGLE);
        let c = g.character(Repertoire::Unicode);
        let left = g.record(vec![i, r, c]);
        let right = g.record(vec![c, r, i]);
        let plan = plan_for(&g, left, right, Mode::Equivalence);
        let v = MValue::Record(vec![MValue::Int(7), MValue::Real(1.5), MValue::Char('x')]);
        let out = plan.convert(&v).unwrap();
        assert_eq!(
            out,
            MValue::Record(vec![MValue::Char('x'), MValue::Real(1.5), MValue::Int(7)])
        );
        assert_eq!(plan.convert_back(&out).unwrap(), v);
    }

    #[test]
    fn regrouping_conversion_line_to_four_floats() {
        // Record(Record(R,R), Record(R,R)) -> Record(R,R,R,R) and back.
        let mut g = MtypeGraph::new();
        let r = g.real(RealPrecision::SINGLE);
        let point = g.record(vec![r, r]);
        let line = g.record(vec![point, point]);
        let four = g.record(vec![r, r, r, r]);
        let plan = plan_for(&g, line, four, Mode::Equivalence);
        let v = MValue::Record(vec![
            MValue::Record(vec![MValue::Real(1.0), MValue::Real(2.0)]),
            MValue::Record(vec![MValue::Real(3.0), MValue::Real(4.0)]),
        ]);
        let out = plan.convert(&v).unwrap();
        assert_eq!(
            out,
            MValue::Record(vec![
                MValue::Real(1.0),
                MValue::Real(2.0),
                MValue::Real(3.0),
                MValue::Real(4.0)
            ])
        );
        assert_eq!(plan.convert_back(&out).unwrap(), v);
    }

    #[test]
    fn unit_elimination_in_conversion() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::boolean());
        let u = g.unit();
        let with_unit = g.record(vec![i, u]);
        let without = g.record(vec![i]);
        let plan = plan_for(&g, with_unit, without, Mode::Equivalence);
        let v = MValue::Record(vec![MValue::Int(1), MValue::Unit]);
        assert_eq!(
            plan.convert(&v).unwrap(),
            MValue::Record(vec![MValue::Int(1)])
        );
        assert_eq!(
            plan.convert_back(&MValue::Record(vec![MValue::Int(0)]))
                .unwrap(),
            MValue::Record(vec![MValue::Int(0), MValue::Unit])
        );
    }

    #[test]
    fn list_conversion_is_elementwise_and_handles_big_lists() {
        let mut g = MtypeGraph::new();
        let r = g.real(RealPrecision::SINGLE);
        let point = g.record(vec![r, r]);
        let flat = g.record(vec![r, r]);
        let left_list = g.list_of(point);
        let right_list = g.list_of(flat);
        let plan = plan_for(&g, left_list, right_list, Mode::Equivalence);
        let big: Vec<MValue> = (0..100_000)
            .map(|k| MValue::Record(vec![MValue::Real(k as f64), MValue::Real(-(k as f64))]))
            .collect();
        let out = plan.convert(&MValue::List(big.clone())).unwrap();
        let MValue::List(items) = &out else { panic!() };
        assert_eq!(items.len(), 100_000);
        assert_eq!(plan.convert_back(&out).unwrap(), MValue::List(big));
    }

    #[test]
    fn choice_alternative_mapping() {
        // Choice(Int, Real) vs Choice(Real, Int): alternatives swap.
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(16));
        let r = g.real(RealPrecision::DOUBLE);
        let left = g.choice(vec![i, r]);
        let right = g.choice(vec![r, i]);
        let plan = plan_for(&g, left, right, Mode::Equivalence);
        let v = MValue::Choice {
            index: 0,
            value: Box::new(MValue::Int(5)),
        };
        let out = plan.convert(&v).unwrap();
        assert_eq!(
            out,
            MValue::Choice {
                index: 1,
                value: Box::new(MValue::Int(5))
            }
        );
        assert_eq!(plan.convert_back(&out).unwrap(), v);
    }

    #[test]
    fn subtype_plans_are_one_way() {
        let mut g = MtypeGraph::new();
        let small = g.integer(IntRange::signed_bits(16));
        let big = g.integer(IntRange::signed_bits(32));
        let plan = plan_for(&g, small, big, Mode::Subtype);
        assert_eq!(plan.convert(&MValue::Int(100)).unwrap(), MValue::Int(100));
        let e = plan.convert_back(&MValue::Int(100)).unwrap_err();
        assert!(e.to_string().contains("one-way"));
    }

    #[test]
    fn into_dynamic_wraps_with_tag() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::boolean());
        let rec = g.record(vec![i, i]);
        let d = g.dynamic();
        let plan = plan_for(&g, rec, d, Mode::Subtype);
        let v = MValue::Record(vec![MValue::Int(0), MValue::Int(1)]);
        let out = plan.convert(&v).unwrap();
        let MValue::Dynamic { tag, value } = out else {
            panic!()
        };
        assert!(tag.contains("Record"));
        assert_eq!(*value, v);
    }

    #[test]
    fn mismatched_values_error_cleanly() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::boolean());
        let rec2 = g.record(vec![i, i]);
        let rec2b = g.record(vec![i, i]);
        let plan = plan_for(&g, rec2, rec2b, Mode::Equivalence);
        assert!(plan.convert(&MValue::Record(vec![MValue::Int(1)])).is_err());
        assert!(plan.convert(&MValue::Int(1)).is_err());
    }

    #[test]
    fn fitter_shape_end_to_end_at_mtype_level() {
        // §3.4: both sides are port(Record(L, port(Record(Real×4)))).
        let mut g = MtypeGraph::new();
        let r = g.real(RealPrecision::SINGLE);
        let point = g.record(vec![r, r]);
        let line = g.record(vec![point, point]);
        // Java side: inputs=(list of point), outputs=(line)
        let jlist = g.list_of(point);
        let java = g.function(vec![jlist], vec![line]);
        // C side: inputs=(list of point), outputs=(point, point)
        let clist = g.list_of(point);
        let cfun = g.function(vec![clist], vec![point, point]);
        let corr = Comparer::new(&g, &g)
            .compare(java, cfun, Mode::Equivalence)
            .expect("fitter interfaces must match");
        let plan = CoercionPlan::new(&g, &g, corr, RuleSet::full(), Mode::Equivalence);
        assert!(!plan.is_empty());
    }
}
