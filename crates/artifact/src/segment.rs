//! The persistent artifact store: a directory of immutable, append-only
//! segment files.
//!
//! Layout of one segment file (`seg-NNNNNN.mbas`):
//!
//! ```text
//! +--------+---------+-------+-----------+----------+
//! | "MBAS" | version | flags | rec count | reserved |   16-byte header
//! |  4 B   |  u16 LE | u16LE |  u32 LE   |  u32 LE  |
//! +--------+---------+-------+-----------+----------+
//! | u32 LE payload len | payload | u64 LE FNV-1a checksum |   per record
//! +--------------------+---------+------------------------+
//! payload = store key (42 B) | artifact id (32 B) | u32 LE body len | body
//! ```
//!
//! Everything is little-endian, flat, and length-prefixed: a reader can mmap
//! a segment and walk records without touching bodies it does not need.
//! Segments are written to a `.tmp` file and renamed into place, so a crash
//! mid-write leaves only ignorable temp files; committed segments are never
//! modified. Reads fail closed: the first record that fails its length,
//! checksum, or content-hash check stops consumption of that segment and the
//! store simply holds fewer artifacts (callers fall back to cold compile).

use crate::store::{ArtifactId, ArtifactStore, StoreCounters, StoreKey, StoreStats, STORE_KEY_LEN};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

pub const SEGMENT_MAGIC: [u8; 4] = *b"MBAS";
pub const SEGMENT_VERSION: u16 = 1;
pub const SEGMENT_HEADER_LEN: usize = 16;
/// Hard per-record ceiling: a wire program is at most a few hundred KiB.
pub const MAX_BODY_LEN: usize = 16 * 1024 * 1024;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Why a segment (or part of one) was rejected at open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    Io(String),
    BadHeader(String),
    Truncated { record: usize },
    BadChecksum { record: usize },
    BadLength { record: usize },
    ContentHashMismatch { record: usize },
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Io(e) => write!(f, "segment io error: {e}"),
            SegmentError::BadHeader(e) => write!(f, "bad segment header: {e}"),
            SegmentError::Truncated { record } => write!(f, "segment truncated at record {record}"),
            SegmentError::BadChecksum { record } => {
                write!(f, "checksum mismatch at record {record}")
            }
            SegmentError::BadLength { record } => {
                write!(f, "forged record length at record {record}")
            }
            SegmentError::ContentHashMismatch { record } => {
                write!(f, "content hash mismatch at record {record}")
            }
        }
    }
}

/// One decoded record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    pub key: StoreKey,
    pub id: ArtifactId,
    pub body: Vec<u8>,
}

/// Serialize records into segment-file bytes. Records are sorted by key so
/// the same set of artifacts always produces byte-identical segments.
pub fn encode_segment(records: &[Record]) -> Vec<u8> {
    let mut sorted: Vec<&Record> = records.iter().collect();
    sorted.sort_by_key(|r| r.key);
    let mut out = Vec::with_capacity(
        SEGMENT_HEADER_LEN + sorted.iter().map(|r| r.body.len() + 96).sum::<usize>(),
    );
    out.extend_from_slice(&SEGMENT_MAGIC);
    out.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // flags
    out.extend_from_slice(&(sorted.len() as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // reserved
    for rec in sorted {
        let mut payload = Vec::with_capacity(STORE_KEY_LEN + 32 + 4 + rec.body.len());
        payload.extend_from_slice(&rec.key.encode());
        payload.extend_from_slice(&rec.id.0);
        payload.extend_from_slice(&(rec.body.len() as u32).to_le_bytes());
        payload.extend_from_slice(&rec.body);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let checksum = fnv1a(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&checksum.to_le_bytes());
    }
    out
}

/// Decode segment bytes. Returns every record up to the first corruption;
/// if corruption was found, also returns the error describing it. Never
/// panics on hostile input.
pub fn decode_segment(bytes: &[u8]) -> (Vec<Record>, Option<SegmentError>) {
    let mut records = Vec::new();
    if bytes.len() < SEGMENT_HEADER_LEN {
        return (
            records,
            Some(SegmentError::BadHeader("short header".into())),
        );
    }
    if bytes[..4] != SEGMENT_MAGIC {
        return (records, Some(SegmentError::BadHeader("bad magic".into())));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != SEGMENT_VERSION {
        return (
            records,
            Some(SegmentError::BadHeader(format!(
                "unknown version {version}"
            ))),
        );
    }
    let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let mut off = SEGMENT_HEADER_LEN;
    for idx in 0..count {
        if bytes.len() < off + 4 {
            return (records, Some(SegmentError::Truncated { record: idx }));
        }
        let payload_len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 4;
        if !(STORE_KEY_LEN + 32 + 4..=MAX_BODY_LEN + 128).contains(&payload_len) {
            return (records, Some(SegmentError::BadLength { record: idx }));
        }
        if bytes.len() < off + payload_len + 8 {
            return (records, Some(SegmentError::Truncated { record: idx }));
        }
        let payload = &bytes[off..off + payload_len];
        let stored_sum = u64::from_le_bytes(
            bytes[off + payload_len..off + payload_len + 8]
                .try_into()
                .unwrap(),
        );
        if fnv1a(payload) != stored_sum {
            return (records, Some(SegmentError::BadChecksum { record: idx }));
        }
        let key = match StoreKey::decode(payload) {
            Some(k) => k,
            None => return (records, Some(SegmentError::BadLength { record: idx })),
        };
        let mut id = [0u8; 32];
        id.copy_from_slice(&payload[STORE_KEY_LEN..STORE_KEY_LEN + 32]);
        let body_len = u32::from_le_bytes(
            payload[STORE_KEY_LEN + 32..STORE_KEY_LEN + 36]
                .try_into()
                .unwrap(),
        ) as usize;
        // The inner body length must agree exactly with the outer payload
        // length — a forged inner length cannot smuggle extra bytes.
        if body_len != payload_len - STORE_KEY_LEN - 36 {
            return (records, Some(SegmentError::BadLength { record: idx }));
        }
        let body = payload[STORE_KEY_LEN + 36..].to_vec();
        // End-to-end integrity: the stored content id must match the body.
        if ArtifactId::of(&body) != ArtifactId(id) {
            return (
                records,
                Some(SegmentError::ContentHashMismatch { record: idx }),
            );
        }
        records.push(Record {
            key,
            id: ArtifactId(id),
            body,
        });
        off += payload_len + 8;
    }
    (records, None)
}

struct SegmentInfo {
    seq: u64,
    bytes: u64,
    keys: Vec<StoreKey>,
}

struct Inner {
    keys: BTreeMap<StoreKey, ArtifactId>,
    bodies: HashMap<ArtifactId, Arc<Vec<u8>>>,
    /// Latest segment each key was persisted in (0 = not yet persisted).
    key_origin: HashMap<StoreKey, u64>,
    segments: Vec<SegmentInfo>,
    next_seq: u64,
    pending: Vec<StoreKey>,
}

/// Persistent content-addressed store over a directory of segment files.
pub struct SegmentStore {
    dir: PathBuf,
    inner: Mutex<Inner>,
    counters: StoreCounters,
    /// Soft cap on total on-disk bytes; oldest segments are evicted at
    /// commit time once the cap is exceeded. `None` = unbounded.
    capacity_bytes: Option<u64>,
}

fn segment_name(seq: u64) -> String {
    format!("seg-{seq:06}.mbas")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".mbas")?;
    rest.parse().ok()
}

impl SegmentStore {
    /// Open (or create) a store rooted at `dir`. Corrupt or partial
    /// segments are consumed up to the first bad record; the store never
    /// refuses to open because of hostile contents.
    pub fn open(dir: impl AsRef<Path>) -> Result<SegmentStore, SegmentError> {
        Self::open_with_capacity(dir, None)
    }

    pub fn open_with_capacity(
        dir: impl AsRef<Path>,
        capacity_bytes: Option<u64>,
    ) -> Result<SegmentStore, SegmentError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| SegmentError::Io(e.to_string()))?;
        let mut seqs: Vec<u64> = fs::read_dir(&dir)
            .map_err(|e| SegmentError::Io(e.to_string()))?
            .filter_map(|entry| entry.ok())
            .filter_map(|entry| parse_segment_name(&entry.file_name().to_string_lossy()))
            .collect();
        seqs.sort_unstable();

        let counters = StoreCounters::default();
        let mut inner = Inner {
            keys: BTreeMap::new(),
            bodies: HashMap::new(),
            key_origin: HashMap::new(),
            segments: Vec::new(),
            next_seq: seqs.last().copied().unwrap_or(0) + 1,
            pending: Vec::new(),
        };
        for seq in seqs {
            let path = dir.join(segment_name(seq));
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(_) => {
                    // Racing writer or vanished file: skip, fail closed.
                    counters.integrity_failures.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            let (records, err) = decode_segment(&bytes);
            if err.is_some() {
                counters.integrity_failures.fetch_add(1, Ordering::Relaxed);
            }
            let mut seg_keys = Vec::with_capacity(records.len());
            for rec in records {
                inner.keys.insert(rec.key, rec.id);
                inner
                    .bodies
                    .entry(rec.id)
                    .or_insert_with(|| Arc::new(rec.body));
                inner.key_origin.insert(rec.key, seq);
                seg_keys.push(rec.key);
            }
            inner.segments.push(SegmentInfo {
                seq,
                bytes: bytes.len() as u64,
                keys: seg_keys,
            });
        }
        Ok(SegmentStore {
            dir,
            inner: Mutex::new(inner),
            counters,
            capacity_bytes,
        })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of records inserted since the last commit.
    pub fn pending(&self) -> usize {
        self.inner.lock().unwrap().pending.len()
    }

    /// Persist all pending records as one new immutable segment
    /// (write-temp-then-rename, so a crash never leaves a half segment
    /// under a committed name). Returns the number of records written.
    pub fn commit(&self) -> Result<usize, SegmentError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.pending.is_empty() {
            return Ok(0);
        }
        let mut pending: Vec<StoreKey> = std::mem::take(&mut inner.pending);
        pending.sort();
        pending.dedup();
        let records: Vec<Record> = pending
            .iter()
            .filter_map(|key| {
                let id = *inner.keys.get(key)?;
                let body = inner.bodies.get(&id)?;
                Some(Record {
                    key: *key,
                    id,
                    body: (**body).clone(),
                })
            })
            .collect();
        if records.is_empty() {
            return Ok(0);
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let bytes = encode_segment(&records);
        let tmp = self.dir.join(format!("{}.tmp", segment_name(seq)));
        let final_path = self.dir.join(segment_name(seq));
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, &final_path)?;
            Ok(())
        };
        if let Err(e) = write() {
            let _ = fs::remove_file(&tmp);
            // Put the pending keys back so a retry can succeed.
            inner.pending = pending;
            return Err(SegmentError::Io(e.to_string()));
        }
        for rec in &records {
            inner.key_origin.insert(rec.key, seq);
        }
        inner.segments.push(SegmentInfo {
            seq,
            bytes: bytes.len() as u64,
            keys: records.iter().map(|r| r.key).collect(),
        });
        let written = records.len();
        if let Some(cap) = self.capacity_bytes {
            self.evict_locked(&mut inner, cap);
        }
        Ok(written)
    }

    fn evict_locked(&self, inner: &mut Inner, cap: u64) {
        while inner.segments.len() > 1 && inner.segments.iter().map(|s| s.bytes).sum::<u64>() > cap
        {
            let seg = inner.segments.remove(0);
            let _ = fs::remove_file(self.dir.join(segment_name(seg.seq)));
            for key in seg.keys {
                // Only forget keys whose latest copy lived in this segment.
                if inner.key_origin.get(&key) == Some(&seg.seq) {
                    inner.keys.remove(&key);
                    inner.key_origin.remove(&key);
                    self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            let live: HashSet<ArtifactId> = inner.keys.values().copied().collect();
            inner.bodies.retain(|id, _| live.contains(id));
        }
    }
}

impl ArtifactStore for SegmentStore {
    fn put(&self, key: StoreKey, body: &[u8]) -> ArtifactId {
        let mut inner = self.inner.lock().unwrap();
        let id = ArtifactId::of(body);
        let prev = inner.keys.insert(key, id);
        if prev.is_none() {
            self.counters.inserts.fetch_add(1, Ordering::Relaxed);
        }
        match inner.bodies.entry(id) {
            std::collections::hash_map::Entry::Occupied(_) => {
                self.counters.dedup_hits.fetch_add(1, Ordering::Relaxed);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Arc::new(body.to_vec()));
            }
        }
        if prev != Some(id) {
            inner.pending.push(key);
        }
        id
    }

    fn get(&self, key: &StoreKey) -> Option<(ArtifactId, Arc<Vec<u8>>)> {
        let inner = self.inner.lock().unwrap();
        match inner.keys.get(key) {
            Some(id) => {
                let body = inner.bodies.get(id).cloned()?;
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some((*id, body))
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn contains(&self, key: &StoreKey) -> bool {
        self.inner.lock().unwrap().keys.contains_key(key)
    }

    fn keys(&self) -> Vec<(StoreKey, ArtifactId)> {
        let inner = self.inner.lock().unwrap();
        inner.keys.iter().map(|(k, v)| (*k, *v)).collect()
    }

    fn body(&self, id: &ArtifactId) -> Option<Arc<Vec<u8>>> {
        self.inner.lock().unwrap().bodies.get(id).cloned()
    }

    fn len(&self) -> usize {
        self.inner.lock().unwrap().keys.len()
    }

    fn stats(&self) -> StoreStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ArtifactKind;

    fn key(n: u64) -> StoreKey {
        StoreKey {
            kind: ArtifactKind::WireProgram,
            left_fp: n as u128,
            right_fp: !(n as u128),
            subtype: false,
            rules_fp: 0xabcd,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mb-artifact-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persist_and_reopen_round_trip() {
        let dir = tmpdir("roundtrip");
        let store = SegmentStore::open(&dir).unwrap();
        for n in 0..20u64 {
            store.put(key(n), format!("body-{n}").as_bytes());
        }
        assert_eq!(store.commit().unwrap(), 20);
        assert_eq!(store.commit().unwrap(), 0); // idempotent

        let reopened = SegmentStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 20);
        for n in 0..20u64 {
            let (_, body) = reopened.get(&key(n)).unwrap();
            assert_eq!(&**body, format!("body-{n}").as_bytes());
        }
        assert_eq!(store.digest(), reopened.digest());
        assert_eq!(reopened.stats().integrity_failures, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn same_artifacts_yield_byte_identical_segments() {
        let dir_a = tmpdir("det-a");
        let dir_b = tmpdir("det-b");
        let a = SegmentStore::open(&dir_a).unwrap();
        let b = SegmentStore::open(&dir_b).unwrap();
        // Insert in different orders; segment bytes must still match.
        for n in 0..10u64 {
            a.put(key(n), format!("body-{n}").as_bytes());
        }
        for n in (0..10u64).rev() {
            b.put(key(n), format!("body-{n}").as_bytes());
        }
        a.commit().unwrap();
        b.commit().unwrap();
        let bytes_a = fs::read(dir_a.join("seg-000001.mbas")).unwrap();
        let bytes_b = fs::read(dir_b.join("seg-000001.mbas")).unwrap();
        assert_eq!(bytes_a, bytes_b);
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn truncated_segment_fails_closed() {
        let dir = tmpdir("trunc");
        let store = SegmentStore::open(&dir).unwrap();
        for n in 0..5u64 {
            store.put(key(n), b"same-body-every-time");
        }
        store.commit().unwrap();
        let path = dir.join("seg-000001.mbas");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 13]).unwrap();

        let reopened = SegmentStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 4); // last record lost, earlier ones kept
        assert_eq!(reopened.stats().integrity_failures, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_checksum_byte_fails_closed() {
        let dir = tmpdir("checksum");
        let store = SegmentStore::open(&dir).unwrap();
        store.put(key(1), b"alpha");
        store.put(key(2), b"beta");
        store.commit().unwrap();
        let path = dir.join("seg-000001.mbas");
        let mut bytes = fs::read(&path).unwrap();
        // Flip a byte inside the first record's body.
        let target = SEGMENT_HEADER_LEN + 4 + STORE_KEY_LEN + 36;
        bytes[target] ^= 0xff;
        fs::write(&path, &bytes).unwrap();

        let reopened = SegmentStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 0); // consumption stops at the bad record
        assert_eq!(reopened.stats().integrity_failures, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn forged_record_length_fails_closed() {
        let dir = tmpdir("forged");
        let store = SegmentStore::open(&dir).unwrap();
        store.put(key(1), b"alpha");
        store.commit().unwrap();
        let path = dir.join("seg-000001.mbas");
        let mut bytes = fs::read(&path).unwrap();
        // Forge the outer record length to a huge value.
        bytes[SEGMENT_HEADER_LEN..SEGMENT_HEADER_LEN + 4]
            .copy_from_slice(&0xffff_ffffu32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let reopened = SegmentStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 0);
        assert_eq!(reopened.stats().integrity_failures, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn content_hash_mismatch_rejected_even_with_valid_checksum() {
        let dir = tmpdir("content");
        let store = SegmentStore::open(&dir).unwrap();
        store.put(key(1), b"alpha");
        store.commit().unwrap();
        let path = dir.join("seg-000001.mbas");
        let bytes = fs::read(&path).unwrap();
        // Rebuild the record with a tampered body and a *recomputed* valid
        // checksum, keeping the stale content id.
        let (records, _) = decode_segment(&bytes);
        let mut rec = records[0].clone();
        rec.body = b"tampered".to_vec(); // id left stale on purpose
        let forged = encode_segment(std::slice::from_ref(&rec));
        fs::write(&path, forged).unwrap();
        let reopened = SegmentStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 0);
        assert_eq!(reopened.stats().integrity_failures, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn capacity_evicts_oldest_segments() {
        let dir = tmpdir("evict");
        let store = SegmentStore::open_with_capacity(&dir, Some(400)).unwrap();
        for gen in 0..6u64 {
            for n in 0..3u64 {
                store.put(key(gen * 10 + n), format!("gen-{gen}-body-{n}").as_bytes());
            }
            store.commit().unwrap();
        }
        assert!(store.stats().evictions > 0);
        // Newest generation always survives.
        for n in 0..3u64 {
            assert!(store.contains(&key(50 + n)));
        }
        // Reopen agrees with the in-memory view.
        let reopened = SegmentStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), store.len());
        assert_eq!(reopened.digest(), store.digest());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_while_append_never_panics() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let dir = tmpdir("concurrent");
        {
            let seed = SegmentStore::open(&dir).unwrap();
            seed.put(key(0), b"seed");
            seed.commit().unwrap();
        }
        let stop = Arc::new(AtomicBool::new(false));
        let writer_dir = dir.clone();
        let writer_stop = stop.clone();
        let writer = std::thread::spawn(move || {
            let store = SegmentStore::open(&writer_dir).unwrap();
            let mut n = 1u64;
            while !writer_stop.load(Ordering::Relaxed) {
                store.put(key(n), format!("concurrent-{n}").as_bytes());
                store.commit().unwrap();
                n += 1;
            }
        });
        for _ in 0..50 {
            // Every concurrent open must succeed and see a consistent prefix.
            let reader = SegmentStore::open(&dir).unwrap();
            assert!(reader.contains(&key(0)));
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }
}
