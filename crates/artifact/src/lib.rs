//! Content-addressed artifact store for Mockingbird compile products.
//!
//! Every Mockingbird artifact — a compare verdict, a compiled `WireProgram`,
//! the metadata of an emitted native stub — is a pure function of its
//! declaration fingerprints and rule set, which makes the whole compile
//! pipeline content-addressable. This crate provides:
//!
//! * [`blake3`] — an in-workspace BLAKE3 hash (no external crates);
//! * [`ArtifactId`] / [`StoreKey`] — content address + nominal fingerprint
//!   key, the two levels of the store index;
//! * [`ArtifactStore`] — the unified persistence trait, with an in-memory
//!   implementation ([`MemoryStore`]) and a crash-safe, append-only
//!   segmented file store ([`SegmentStore`]);
//! * [`xfer`] — the `MBAR` peer-fetch payload codec used to ship artifacts
//!   between mesh nodes whose fingerprints already proved agreement.

pub mod blake3;
pub mod segment;
pub mod store;
pub mod xfer;

pub use segment::{decode_segment, encode_segment, Record, SegmentError, SegmentStore};
pub use store::{
    ArtifactId, ArtifactKind, ArtifactStore, MemoryStore, StoreKey, StoreStats, STORE_KEY_LEN,
};
pub use xfer::{FetchReply, FetchRequest, XferError, XferRecord};
