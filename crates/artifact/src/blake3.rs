//! In-workspace BLAKE3 hash.
//!
//! A from-spec implementation of the BLAKE3 tree hash (plain hashing mode
//! only: no keyed mode, no key derivation, 32-byte output). Artifact bodies
//! are at most a few hundred kilobytes, so the portable single-lane
//! implementation is plenty; we keep the exact spec semantics (chunk tree,
//! flags, counter) so digests match the reference implementation and any
//! future SIMD drop-in.

const OUT_LEN: usize = 32;
const BLOCK_LEN: usize = 64;
const CHUNK_LEN: usize = 1024;

const CHUNK_START: u32 = 1 << 0;
const CHUNK_END: u32 = 1 << 1;
const PARENT: u32 = 1 << 2;
const ROOT: u32 = 1 << 3;

const IV: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

const MSG_PERMUTATION: [usize; 16] = [2, 6, 3, 10, 7, 0, 4, 13, 1, 11, 12, 5, 9, 14, 15, 8];

#[inline(always)]
fn g(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize, mx: u32, my: u32) {
    state[a] = state[a].wrapping_add(state[b]).wrapping_add(mx);
    state[d] = (state[d] ^ state[a]).rotate_right(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_right(12);
    state[a] = state[a].wrapping_add(state[b]).wrapping_add(my);
    state[d] = (state[d] ^ state[a]).rotate_right(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_right(7);
}

fn round(state: &mut [u32; 16], m: &[u32; 16]) {
    // Columns.
    g(state, 0, 4, 8, 12, m[0], m[1]);
    g(state, 1, 5, 9, 13, m[2], m[3]);
    g(state, 2, 6, 10, 14, m[4], m[5]);
    g(state, 3, 7, 11, 15, m[6], m[7]);
    // Diagonals.
    g(state, 0, 5, 10, 15, m[8], m[9]);
    g(state, 1, 6, 11, 12, m[10], m[11]);
    g(state, 2, 7, 8, 13, m[12], m[13]);
    g(state, 3, 4, 9, 14, m[14], m[15]);
}

fn permute(m: &mut [u32; 16]) {
    let mut permuted = [0u32; 16];
    for i in 0..16 {
        permuted[i] = m[MSG_PERMUTATION[i]];
    }
    *m = permuted;
}

fn compress(
    chaining_value: &[u32; 8],
    block_words: &[u32; 16],
    counter: u64,
    block_len: u32,
    flags: u32,
) -> [u32; 16] {
    let mut state = [
        chaining_value[0],
        chaining_value[1],
        chaining_value[2],
        chaining_value[3],
        chaining_value[4],
        chaining_value[5],
        chaining_value[6],
        chaining_value[7],
        IV[0],
        IV[1],
        IV[2],
        IV[3],
        counter as u32,
        (counter >> 32) as u32,
        block_len,
        flags,
    ];
    let mut block = *block_words;
    round(&mut state, &block); // round 1
    permute(&mut block);
    round(&mut state, &block); // round 2
    permute(&mut block);
    round(&mut state, &block); // round 3
    permute(&mut block);
    round(&mut state, &block); // round 4
    permute(&mut block);
    round(&mut state, &block); // round 5
    permute(&mut block);
    round(&mut state, &block); // round 6
    permute(&mut block);
    round(&mut state, &block); // round 7

    for i in 0..8 {
        state[i] ^= state[i + 8];
        state[i + 8] ^= chaining_value[i];
    }
    state
}

fn words_from_block(bytes: &[u8]) -> [u32; 16] {
    debug_assert!(bytes.len() <= BLOCK_LEN);
    let mut block = [0u8; BLOCK_LEN];
    block[..bytes.len()].copy_from_slice(bytes);
    let mut words = [0u32; 16];
    for (i, w) in words.iter_mut().enumerate() {
        *w = u32::from_le_bytes([
            block[4 * i],
            block[4 * i + 1],
            block[4 * i + 2],
            block[4 * i + 3],
        ]);
    }
    words
}

fn first_8(words: [u32; 16]) -> [u32; 8] {
    [
        words[0], words[1], words[2], words[3], words[4], words[5], words[6], words[7],
    ]
}

/// The deferred final compression of a chunk or parent node: kept symbolic so
/// the ROOT flag can be applied only once we know the node really is the root.
struct Output {
    input_chaining_value: [u32; 8],
    block_words: [u32; 16],
    counter: u64,
    block_len: u32,
    flags: u32,
}

impl Output {
    fn chaining_value(&self) -> [u32; 8] {
        first_8(compress(
            &self.input_chaining_value,
            &self.block_words,
            self.counter,
            self.block_len,
            self.flags,
        ))
    }

    fn root_hash(&self) -> [u8; OUT_LEN] {
        let words = compress(
            &self.input_chaining_value,
            &self.block_words,
            0,
            self.block_len,
            self.flags | ROOT,
        );
        let mut out = [0u8; OUT_LEN];
        for (i, word) in words[..8].iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }
}

struct ChunkState {
    chaining_value: [u32; 8],
    chunk_counter: u64,
    block: [u8; BLOCK_LEN],
    block_len: u8,
    blocks_compressed: u8,
}

impl ChunkState {
    fn new(chunk_counter: u64) -> Self {
        ChunkState {
            chaining_value: IV,
            chunk_counter,
            block: [0; BLOCK_LEN],
            block_len: 0,
            blocks_compressed: 0,
        }
    }

    fn len(&self) -> usize {
        BLOCK_LEN * self.blocks_compressed as usize + self.block_len as usize
    }

    fn start_flag(&self) -> u32 {
        if self.blocks_compressed == 0 {
            CHUNK_START
        } else {
            0
        }
    }

    fn update(&mut self, mut input: &[u8]) {
        while !input.is_empty() {
            // If the buffered block is full, it cannot be the chunk's last
            // block (more input remains), so compress it through.
            if self.block_len as usize == BLOCK_LEN {
                let block_words = words_from_block(&self.block);
                self.chaining_value = first_8(compress(
                    &self.chaining_value,
                    &block_words,
                    self.chunk_counter,
                    BLOCK_LEN as u32,
                    self.start_flag(),
                ));
                self.blocks_compressed += 1;
                self.block = [0; BLOCK_LEN];
                self.block_len = 0;
            }
            let want = BLOCK_LEN - self.block_len as usize;
            let take = want.min(input.len());
            self.block[self.block_len as usize..self.block_len as usize + take]
                .copy_from_slice(&input[..take]);
            self.block_len += take as u8;
            input = &input[take..];
        }
    }

    fn output(&self) -> Output {
        Output {
            input_chaining_value: self.chaining_value,
            block_words: words_from_block(&self.block[..self.block_len as usize]),
            counter: self.chunk_counter,
            block_len: self.block_len as u32,
            flags: self.start_flag() | CHUNK_END,
        }
    }
}

fn parent_output(left: [u32; 8], right: [u32; 8]) -> Output {
    let mut block_words = [0u32; 16];
    block_words[..8].copy_from_slice(&left);
    block_words[8..].copy_from_slice(&right);
    Output {
        input_chaining_value: IV,
        block_words,
        counter: 0,
        block_len: BLOCK_LEN as u32,
        flags: PARENT,
    }
}

/// Incremental BLAKE3 hasher (plain hashing mode, 32-byte output).
pub struct Hasher {
    chunk: ChunkState,
    // Stack of left-sibling chaining values awaiting their right subtree.
    cv_stack: Vec<[u32; 8]>,
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher {
    pub fn new() -> Self {
        Hasher {
            chunk: ChunkState::new(0),
            cv_stack: Vec::new(),
        }
    }

    fn add_chunk_chaining_value(&mut self, mut cv: [u32; 8], mut total_chunks: u64) {
        // For each completed subtree (trailing one bit of total_chunks),
        // merge with the left sibling on the stack.
        while total_chunks & 1 == 0 {
            let left = self.cv_stack.pop().expect("cv stack underflow");
            cv = parent_output(left, cv).chaining_value();
            total_chunks >>= 1;
        }
        self.cv_stack.push(cv);
    }

    pub fn update(&mut self, mut input: &[u8]) -> &mut Self {
        while !input.is_empty() {
            if self.chunk.len() == CHUNK_LEN {
                let cv = self.chunk.output().chaining_value();
                let total_chunks = self.chunk.chunk_counter + 1;
                self.add_chunk_chaining_value(cv, total_chunks);
                self.chunk = ChunkState::new(total_chunks);
            }
            let want = CHUNK_LEN - self.chunk.len();
            let take = want.min(input.len());
            self.chunk.update(&input[..take]);
            input = &input[take..];
        }
        self
    }

    pub fn finalize(&self) -> [u8; OUT_LEN] {
        // Merge the stack from the top (most recent, smallest subtrees) down.
        let mut output = self.chunk.output();
        for left in self.cv_stack.iter().rev() {
            output = parent_output(*left, output.chaining_value());
        }
        output.root_hash()
    }
}

/// One-shot BLAKE3 of `input`.
pub fn hash(input: &[u8]) -> [u8; OUT_LEN] {
    let mut hasher = Hasher::new();
    hasher.update(input);
    hasher.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_input_matches_official_vector() {
        assert_eq!(
            hex(&hash(b"")),
            "af1349b9f5f9a1a6a0404dea36dcc9499bcb25c9adc112b7cc9a93cae41f3262"
        );
    }

    #[test]
    fn one_byte_matches_official_vector() {
        // Official test vector input: bytes 0, 1, 2, ... — length 1 is [0x00].
        assert_eq!(
            hex(&hash(&[0u8])),
            "2d3adedff11b61f14c886e35afa036736dcd87a74d27b5c1510225d0f592e213"
        );
    }

    #[test]
    fn incremental_matches_one_shot_across_boundaries() {
        // Exercise block and chunk boundaries: partial blocks, exactly one
        // block, one chunk, multi-chunk trees with odd tails.
        let sizes = [
            0usize, 1, 63, 64, 65, 127, 128, 1023, 1024, 1025, 2048, 3072, 4096, 5000, 9001,
        ];
        let data: Vec<u8> = (0..9001u32).map(|i| (i % 251) as u8).collect();
        for &n in &sizes {
            let one_shot = hash(&data[..n]);
            // Feed in ragged pieces.
            let mut h = Hasher::new();
            let mut off = 0;
            let mut step = 1;
            while off < n {
                let take = step.min(n - off);
                h.update(&data[off..off + take]);
                off += take;
                step = (step * 7 + 3) % 97 + 1;
            }
            assert_eq!(h.finalize(), one_shot, "size {n}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        let a = hash(b"mockingbird");
        let b = hash(b"mockingbirD");
        assert_ne!(a, b);
        assert_eq!(a, hash(b"mockingbird"));
    }
}
