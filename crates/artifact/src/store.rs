//! The `ArtifactStore` trait plus its two implementations: an in-memory
//! store (tests, ephemeral sessions) and the persistent segmented store.
//!
//! Artifacts are addressed two ways at once:
//!
//! * **nominally** by [`StoreKey`] — the compiler-facing fingerprint tuple
//!   `(kind, left_fp, right_fp, subtype, rules_fp)` that mirrors the
//!   comparer's `CacheKey`, so cache lookups stay O(1) on the key the
//!   compiler already computes; and
//! * **by content** via [`ArtifactId`] — the BLAKE3 hash of the canonical
//!   serialized body, so identical bodies reached through different nominal
//!   keys (e.g. the same wire program compiled in two projects) are stored
//!   once and can be verified end-to-end after a peer transfer.

use crate::blake3;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Content hash of an artifact body (BLAKE3, 32 bytes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtifactId(pub [u8; 32]);

impl ArtifactId {
    /// Hash `body` into its content address.
    pub fn of(body: &[u8]) -> Self {
        ArtifactId(blake3::hash(body))
    }

    /// First 8 hex digits — enough for logs.
    pub fn short(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }

    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for ArtifactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ArtifactId({})", self.to_hex())
    }
}

impl fmt::Display for ArtifactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// What kind of artifact a record holds. The kind participates in the
/// nominal key: a verdict and a wire program for the same fingerprint pair
/// are distinct records.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
#[repr(u8)]
pub enum ArtifactKind {
    /// A compare verdict (match / mismatch with reason + depth).
    Verdict = 1,
    /// Serialized `WireProgram` bytes (the wire codec's own format).
    WireProgram = 2,
    /// Metadata about an emitted native stub (module name, symbol, source hash).
    NativeStubMeta = 3,
}

impl ArtifactKind {
    pub fn from_u8(b: u8) -> Option<ArtifactKind> {
        match b {
            1 => Some(ArtifactKind::Verdict),
            2 => Some(ArtifactKind::WireProgram),
            3 => Some(ArtifactKind::NativeStubMeta),
            _ => None,
        }
    }
}

/// Nominal key of an artifact: the fingerprint tuple the compiler already
/// uses for cache lookups, plus the artifact kind. Mirrors the comparer's
/// `CacheKey` (with `Mode` flattened to the `subtype` bool) so the two can
/// convert without this crate depending on the comparer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct StoreKey {
    pub kind: ArtifactKind,
    pub left_fp: u128,
    pub right_fp: u128,
    pub subtype: bool,
    pub rules_fp: u64,
}

/// Canonical encoded size of a `StoreKey`.
pub const STORE_KEY_LEN: usize = 1 + 16 + 16 + 1 + 8;

impl StoreKey {
    /// Canonical fixed-width encoding (used in store records and on the wire).
    pub fn encode(&self) -> [u8; STORE_KEY_LEN] {
        let mut out = [0u8; STORE_KEY_LEN];
        out[0] = self.kind as u8;
        out[1..17].copy_from_slice(&self.left_fp.to_le_bytes());
        out[17..33].copy_from_slice(&self.right_fp.to_le_bytes());
        out[33] = self.subtype as u8;
        out[34..42].copy_from_slice(&self.rules_fp.to_le_bytes());
        out
    }

    pub fn decode(bytes: &[u8]) -> Option<StoreKey> {
        if bytes.len() < STORE_KEY_LEN {
            return None;
        }
        let kind = ArtifactKind::from_u8(bytes[0])?;
        if bytes[33] > 1 {
            return None;
        }
        Some(StoreKey {
            kind,
            left_fp: u128::from_le_bytes(bytes[1..17].try_into().unwrap()),
            right_fp: u128::from_le_bytes(bytes[17..33].try_into().unwrap()),
            subtype: bytes[33] == 1,
            rules_fp: u64::from_le_bytes(bytes[34..42].try_into().unwrap()),
        })
    }
}

/// Counters every store keeps. Snapshots are plain data.
#[derive(Default)]
pub struct StoreCounters {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub inserts: AtomicU64,
    pub dedup_hits: AtomicU64,
    pub evictions: AtomicU64,
    pub integrity_failures: AtomicU64,
}

/// Plain-data snapshot of [`StoreCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// `get` calls that found the key.
    pub hits: u64,
    /// `get` calls that missed.
    pub misses: u64,
    /// Records inserted (new nominal keys).
    pub inserts: u64,
    /// Inserts whose body already existed under another key (deduplicated).
    pub dedup_hits: u64,
    /// Records dropped by capacity eviction.
    pub evictions: u64,
    /// Records rejected for failing checksum / length / content-hash checks.
    pub integrity_failures: u64,
}

impl StoreCounters {
    pub fn snapshot(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            integrity_failures: self.integrity_failures.load(Ordering::Relaxed),
        }
    }
}

/// The unified persistence seam: everything that used to flow through
/// `CompareCache::export/absorb` or the project-file cache sections now
/// reads and writes artifacts through this trait.
pub trait ArtifactStore: Send + Sync {
    /// Insert a body under `key`. Returns the content id. Identical bodies
    /// are stored once regardless of how many keys reference them.
    fn put(&self, key: StoreKey, body: &[u8]) -> ArtifactId;

    /// Look up the body for a nominal key.
    fn get(&self, key: &StoreKey) -> Option<(ArtifactId, Arc<Vec<u8>>)>;

    /// Does the store hold this nominal key?
    fn contains(&self, key: &StoreKey) -> bool;

    /// All nominal keys with their content ids, in key order.
    fn keys(&self) -> Vec<(StoreKey, ArtifactId)>;

    /// Fetch a body by content id alone.
    fn body(&self, id: &ArtifactId) -> Option<Arc<Vec<u8>>>;

    /// Number of nominal keys.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Order-independent digest over `(key, id)` pairs; two stores with the
    /// same digest hold the same artifacts. Advertised through the mesh so
    /// joining nodes can tell which peers have something they lack.
    fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (key, id) in self.keys() {
            for b in key.encode() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            for b in id.0 {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }

    /// Counter snapshot.
    fn stats(&self) -> StoreStats;
}

#[derive(Default)]
struct Index {
    keys: BTreeMap<StoreKey, ArtifactId>,
    bodies: HashMap<ArtifactId, Arc<Vec<u8>>>,
}

impl Index {
    fn insert(&mut self, key: StoreKey, body: &[u8], counters: &StoreCounters) -> ArtifactId {
        let id = ArtifactId::of(body);
        if self.keys.insert(key, id).is_none() {
            counters.inserts.fetch_add(1, Ordering::Relaxed);
        }
        match self.bodies.entry(id) {
            std::collections::hash_map::Entry::Occupied(_) => {
                counters.dedup_hits.fetch_add(1, Ordering::Relaxed);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Arc::new(body.to_vec()));
            }
        }
        id
    }

    /// Drop bodies no longer referenced by any key.
    fn sweep(&mut self) {
        let live: std::collections::HashSet<ArtifactId> = self.keys.values().copied().collect();
        self.bodies.retain(|id, _| live.contains(id));
    }
}

/// Purely in-memory artifact store.
#[derive(Default)]
pub struct MemoryStore {
    index: RwLock<Index>,
    counters: StoreCounters,
}

impl MemoryStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets one key, dropping its body if no other key shares it.
    /// Returns whether the key was present.
    pub fn remove(&self, key: &StoreKey) -> bool {
        let mut index = self.index.write().unwrap_or_else(|e| e.into_inner());
        let removed = index.keys.remove(key).is_some();
        if removed {
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            index.sweep();
        }
        removed
    }
}

impl ArtifactStore for MemoryStore {
    fn put(&self, key: StoreKey, body: &[u8]) -> ArtifactId {
        self.index
            .write()
            .unwrap()
            .insert(key, body, &self.counters)
    }

    fn get(&self, key: &StoreKey) -> Option<(ArtifactId, Arc<Vec<u8>>)> {
        let index = self.index.read().unwrap();
        match index.keys.get(key) {
            Some(id) => {
                let body = index.bodies.get(id).cloned()?;
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some((*id, body))
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn contains(&self, key: &StoreKey) -> bool {
        self.index.read().unwrap().keys.contains_key(key)
    }

    fn keys(&self) -> Vec<(StoreKey, ArtifactId)> {
        let index = self.index.read().unwrap();
        index.keys.iter().map(|(k, v)| (*k, *v)).collect()
    }

    fn body(&self, id: &ArtifactId) -> Option<Arc<Vec<u8>>> {
        self.index.read().unwrap().bodies.get(id).cloned()
    }

    fn len(&self) -> usize {
        self.index.read().unwrap().keys.len()
    }

    fn stats(&self) -> StoreStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8, kind: ArtifactKind) -> StoreKey {
        StoreKey {
            kind,
            left_fp: n as u128,
            right_fp: (n as u128) << 64,
            subtype: n.is_multiple_of(2),
            rules_fp: 0xfeed,
        }
    }

    #[test]
    fn key_codec_round_trips() {
        let k = key(7, ArtifactKind::WireProgram);
        assert_eq!(StoreKey::decode(&k.encode()), Some(k));
        assert_eq!(StoreKey::decode(&[0u8; STORE_KEY_LEN]), None); // kind 0 invalid
        let mut bad = k.encode();
        bad[33] = 9; // subtype must be 0/1
        assert_eq!(StoreKey::decode(&bad), None);
    }

    #[test]
    fn memory_store_round_trip_and_dedup() {
        let store = MemoryStore::new();
        let id1 = store.put(key(1, ArtifactKind::Verdict), b"body-a");
        let id2 = store.put(key(2, ArtifactKind::Verdict), b"body-a");
        let id3 = store.put(key(3, ArtifactKind::WireProgram), b"body-b");
        assert_eq!(id1, id2);
        assert_ne!(id1, id3);
        assert_eq!(store.len(), 3);

        let (got_id, got) = store.get(&key(1, ArtifactKind::Verdict)).unwrap();
        assert_eq!(got_id, id1);
        assert_eq!(&**got, b"body-a");
        assert!(store.get(&key(9, ArtifactKind::Verdict)).is_none());

        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.inserts, 3);
        assert_eq!(stats.dedup_hits, 1);
    }

    #[test]
    fn digest_tracks_contents() {
        let a = MemoryStore::new();
        let b = MemoryStore::new();
        assert_eq!(a.digest(), b.digest());
        a.put(key(1, ArtifactKind::Verdict), b"x");
        assert_ne!(a.digest(), b.digest());
        b.put(key(1, ArtifactKind::Verdict), b"x");
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn remove_forgets_key_and_sweeps_unshared_bodies() {
        let store = MemoryStore::new();
        store.put(key(1, ArtifactKind::Verdict), b"shared");
        store.put(key(2, ArtifactKind::Verdict), b"shared");
        store.put(key(3, ArtifactKind::Verdict), b"alone");

        assert!(store.remove(&key(3, ArtifactKind::Verdict)));
        assert!(!store.remove(&key(3, ArtifactKind::Verdict)));
        assert!(store.get(&key(3, ArtifactKind::Verdict)).is_none());

        // The shared body survives the removal of one of its two keys.
        assert!(store.remove(&key(1, ArtifactKind::Verdict)));
        let survivor = store.get(&key(2, ArtifactKind::Verdict)).unwrap();
        assert_eq!(survivor.1.as_slice(), b"shared");
        assert_eq!(store.stats().evictions, 2);
    }
}
