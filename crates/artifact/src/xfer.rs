//! Payload codec for the `MBAR` artifact-fetch exchange.
//!
//! The GIOP layer frames these payloads (message type `Artifact`); this
//! module only defines the bytes inside. Both sides are hostile-input
//! hardened: every length is bounds-checked against the buffer and against
//! hard caps, and every received record carries its content id so the
//! receiver can re-hash the body before trusting it.

use crate::store::{ArtifactId, ArtifactStore, StoreKey, STORE_KEY_LEN};

/// Payload magic, doubling as the protocol name in service contexts.
pub const XFER_MAGIC: [u8; 4] = *b"MBAR";
pub const XFER_VERSION: u8 = 1;
/// Caps keep a hostile peer from ballooning allocations.
pub const MAX_FETCH_KEYS: usize = 65_536;
pub const MAX_FETCH_RECORDS: usize = 65_536;
pub const MAX_XFER_BODY: usize = crate::segment::MAX_BODY_LEN;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XferError(pub String);

impl std::fmt::Display for XferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "artifact transfer codec error: {}", self.0)
    }
}

fn err(msg: impl Into<String>) -> XferError {
    XferError(msg.into())
}

/// What a joining node asks a peer for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchRequest {
    /// The requester's rule-set fingerprint; the peer only ships artifacts
    /// compiled under the same rules.
    pub rules_fp: u64,
    /// `None` = everything the peer has under `rules_fp`; otherwise the
    /// specific keys the requester is missing.
    pub want: Option<Vec<StoreKey>>,
}

impl FetchRequest {
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&XFER_MAGIC);
        out.push(XFER_VERSION);
        out.push(0); // role: request
        out.extend_from_slice(&self.rules_fp.to_le_bytes());
        match &self.want {
            None => out.push(0),
            Some(keys) => {
                out.push(1);
                out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
                for key in keys {
                    out.extend_from_slice(&key.encode());
                }
            }
        }
        out
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<FetchRequest, XferError> {
        let rest = check_prelude(bytes, 0)?;
        if rest.len() < 9 {
            return Err(err("request too short"));
        }
        let rules_fp = u64::from_le_bytes(rest[..8].try_into().unwrap());
        let want = match rest[8] {
            0 => {
                if rest.len() != 9 {
                    return Err(err("trailing bytes after want-all"));
                }
                None
            }
            1 => {
                if rest.len() < 13 {
                    return Err(err("missing key count"));
                }
                let count = u32::from_le_bytes(rest[9..13].try_into().unwrap()) as usize;
                if count > MAX_FETCH_KEYS {
                    return Err(err(format!("key count {count} exceeds cap")));
                }
                let keys_bytes = &rest[13..];
                if keys_bytes.len() != count * STORE_KEY_LEN {
                    return Err(err("key list length mismatch"));
                }
                let mut keys = Vec::with_capacity(count);
                for i in 0..count {
                    let off = i * STORE_KEY_LEN;
                    keys.push(
                        StoreKey::decode(&keys_bytes[off..off + STORE_KEY_LEN])
                            .ok_or_else(|| err("malformed store key"))?,
                    );
                }
                Some(keys)
            }
            other => return Err(err(format!("unknown want tag {other}"))),
        };
        Ok(FetchRequest { rules_fp, want })
    }
}

/// One shipped artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XferRecord {
    pub key: StoreKey,
    pub id: ArtifactId,
    pub body: Vec<u8>,
}

impl XferRecord {
    /// Re-hash the body and compare with the claimed content id.
    pub fn verify(&self) -> bool {
        ArtifactId::of(&self.body) == self.id
    }
}

/// The peer's answer: its store digest plus the records it could serve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchReply {
    pub store_digest: u64,
    pub records: Vec<XferRecord>,
}

impl FetchReply {
    /// Build a reply from a store: everything matching `req` (by rules fp
    /// and, if given, the requested key set).
    pub fn from_store(store: &dyn ArtifactStore, req: &FetchRequest) -> FetchReply {
        let mut records = Vec::new();
        match &req.want {
            Some(keys) => {
                for key in keys.iter().take(MAX_FETCH_RECORDS) {
                    if key.rules_fp != req.rules_fp {
                        continue;
                    }
                    if let Some((id, body)) = store.get(key) {
                        records.push(XferRecord {
                            key: *key,
                            id,
                            body: (*body).clone(),
                        });
                    }
                }
            }
            None => {
                for (key, id) in store.keys() {
                    if key.rules_fp != req.rules_fp {
                        continue;
                    }
                    if records.len() >= MAX_FETCH_RECORDS {
                        break;
                    }
                    if let Some(body) = store.body(&id) {
                        records.push(XferRecord {
                            key,
                            id,
                            body: (*body).clone(),
                        });
                    }
                }
            }
        }
        FetchReply {
            store_digest: store.digest(),
            records,
        }
    }

    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&XFER_MAGIC);
        out.push(XFER_VERSION);
        out.push(1); // role: reply
        out.extend_from_slice(&self.store_digest.to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        for rec in &self.records {
            out.extend_from_slice(&rec.key.encode());
            out.extend_from_slice(&rec.id.0);
            out.extend_from_slice(&(rec.body.len() as u32).to_le_bytes());
            out.extend_from_slice(&rec.body);
        }
        out
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<FetchReply, XferError> {
        let rest = check_prelude(bytes, 1)?;
        if rest.len() < 12 {
            return Err(err("reply too short"));
        }
        let store_digest = u64::from_le_bytes(rest[..8].try_into().unwrap());
        let count = u32::from_le_bytes(rest[8..12].try_into().unwrap()) as usize;
        if count > MAX_FETCH_RECORDS {
            return Err(err(format!("record count {count} exceeds cap")));
        }
        let mut off = 12;
        let mut records = Vec::with_capacity(count.min(1024));
        for idx in 0..count {
            if rest.len() < off + STORE_KEY_LEN + 36 {
                return Err(err(format!("reply truncated at record {idx}")));
            }
            let key = StoreKey::decode(&rest[off..off + STORE_KEY_LEN])
                .ok_or_else(|| err("malformed store key"))?;
            off += STORE_KEY_LEN;
            let mut id = [0u8; 32];
            id.copy_from_slice(&rest[off..off + 32]);
            off += 32;
            let body_len = u32::from_le_bytes(rest[off..off + 4].try_into().unwrap()) as usize;
            off += 4;
            if body_len > MAX_XFER_BODY {
                return Err(err(format!(
                    "record {idx} body length {body_len} exceeds cap"
                )));
            }
            if rest.len() < off + body_len {
                return Err(err(format!("reply truncated in record {idx} body")));
            }
            records.push(XferRecord {
                key,
                id: ArtifactId(id),
                body: rest[off..off + body_len].to_vec(),
            });
            off += body_len;
        }
        if off != rest.len() {
            return Err(err("trailing bytes after records"));
        }
        Ok(FetchReply {
            store_digest,
            records,
        })
    }
}

fn check_prelude(bytes: &[u8], role: u8) -> Result<&[u8], XferError> {
    if bytes.len() < 6 {
        return Err(err("payload too short"));
    }
    if bytes[..4] != XFER_MAGIC {
        return Err(err("bad MBAR magic"));
    }
    if bytes[4] != XFER_VERSION {
        return Err(err(format!("unknown MBAR version {}", bytes[4])));
    }
    if bytes[5] != role {
        return Err(err(format!("unexpected role {} (want {role})", bytes[5])));
    }
    Ok(&bytes[6..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{ArtifactKind, MemoryStore};

    fn key(n: u64, rules_fp: u64) -> StoreKey {
        StoreKey {
            kind: ArtifactKind::WireProgram,
            left_fp: n as u128,
            right_fp: (n as u128) << 32,
            subtype: false,
            rules_fp,
        }
    }

    #[test]
    fn request_round_trips() {
        for req in [
            FetchRequest {
                rules_fp: 7,
                want: None,
            },
            FetchRequest {
                rules_fp: 7,
                want: Some(vec![key(1, 7), key(2, 7)]),
            },
        ] {
            assert_eq!(FetchRequest::from_bytes(&req.to_bytes()).unwrap(), req);
        }
    }

    #[test]
    fn reply_round_trips_and_verifies() {
        let store = MemoryStore::new();
        store.put(key(1, 7), b"program-one");
        store.put(key(2, 7), b"program-two");
        store.put(key(3, 99), b"other-rules"); // filtered out
        let req = FetchRequest {
            rules_fp: 7,
            want: None,
        };
        let reply = FetchReply::from_store(&store, &req);
        assert_eq!(reply.records.len(), 2);
        assert!(reply.records.iter().all(|r| r.verify()));
        let decoded = FetchReply::from_bytes(&reply.to_bytes()).unwrap();
        assert_eq!(decoded, reply);
    }

    #[test]
    fn tampered_record_fails_verification() {
        let store = MemoryStore::new();
        store.put(key(1, 7), b"program-one");
        let reply = FetchReply::from_store(
            &store,
            &FetchRequest {
                rules_fp: 7,
                want: None,
            },
        );
        let mut tampered = reply.clone();
        tampered.records[0].body[0] ^= 0x01;
        assert!(!tampered.records[0].verify());
        // The codec round-trips tampered bytes fine — verification is the
        // receiver's job, and it catches the flip.
        let decoded = FetchReply::from_bytes(&tampered.to_bytes()).unwrap();
        assert!(!decoded.records[0].verify());
    }

    #[test]
    fn hostile_payloads_are_rejected_not_panicked() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            b"MBAR".to_vec(),
            b"MBAR\x01\x09".to_vec(),                   // bad role
            b"XXXX\x01\x00\0\0\0\0\0\0\0\0\0".to_vec(), // bad magic
            b"MBAR\x02\x00\0\0\0\0\0\0\0\0\0".to_vec(), // bad version
            {
                // Forged huge record count.
                let mut b = b"MBAR\x01\x01".to_vec();
                b.extend_from_slice(&0u64.to_le_bytes());
                b.extend_from_slice(&u32::MAX.to_le_bytes());
                b
            },
        ];
        for bytes in cases {
            assert!(FetchRequest::from_bytes(&bytes).is_err());
            assert!(FetchReply::from_bytes(&bytes).is_err());
        }
    }
}
