//! Parsing function/interface shapes out of Mtypes.
//!
//! Functions lower to `port(Record(I..., port(O)))` and objects by
//! reference to `port(Choice(inv_1..inv_n))` (paper §3.3). Stubs need
//! the pieces back: the invocation record, the input children, and the
//! reply payload record.

use std::fmt;

use mockingbird_mtype::{MtypeGraph, MtypeId, MtypeKind};

/// Errors from shape parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError(pub String);

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error: {}", self.0)
    }
}

impl std::error::Error for ShapeError {}

/// The dissected shape of one function/method Mtype.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnShape {
    /// The invocation record `Record(I..., port(O))`.
    pub invocation: MtypeId,
    /// The input children, in record order (reply port excluded).
    pub inputs: Vec<MtypeId>,
    /// Index of the reply port within the invocation record.
    pub reply_index: usize,
    /// The reply payload record `O`.
    pub output: MtypeId,
}

impl FnShape {
    /// Parses an invocation record node.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless the node is a Record with exactly
    /// one `port(Record(...))` child.
    pub fn of_invocation(graph: &MtypeGraph, invocation: MtypeId) -> Result<FnShape, ShapeError> {
        let inv = graph.resolve(invocation);
        let MtypeKind::Record(children) = graph.kind(inv) else {
            return Err(ShapeError(format!(
                "invocation is not a Record: {}",
                graph.display(inv)
            )));
        };
        let mut inputs = Vec::new();
        let mut reply = None;
        for (i, &c) in children.iter().enumerate() {
            match graph.kind(graph.resolve(c)) {
                MtypeKind::Port(payload) => {
                    if reply.is_some() {
                        // More than one port: treat later ports as inputs
                        // (callback parameters) and keep the first as the
                        // reply, matching lowering order.
                        inputs.push(c);
                    } else {
                        reply = Some((i, *payload));
                    }
                }
                _ => inputs.push(c),
            }
        }
        let Some((reply_index, output)) = reply else {
            return Err(ShapeError(format!(
                "invocation record has no reply port: {}",
                graph.display(inv)
            )));
        };
        Ok(FnShape {
            invocation: inv,
            inputs,
            reply_index,
            output,
        })
    }

    /// Parses a function Mtype `port(Record(I..., port(O)))`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the node is not a function port. A
    /// singleton `Choice` around the invocation (a one-method interface)
    /// is accepted.
    pub fn of_function(graph: &MtypeGraph, id: MtypeId) -> Result<FnShape, ShapeError> {
        let port = graph.resolve(id);
        let MtypeKind::Port(payload) = graph.kind(port) else {
            return Err(ShapeError(format!(
                "not a function port: {}",
                graph.display(port)
            )));
        };
        let mut payload = graph.resolve(*payload);
        if let MtypeKind::Choice(alts) = graph.kind(payload) {
            if alts.len() == 1 {
                payload = graph.resolve(alts[0]);
            } else {
                return Err(ShapeError(
                    "this is a multi-method interface; use InterfaceStub".into(),
                ));
            }
        }
        Self::of_invocation(graph, payload)
    }
}

/// Parses an object-reference Mtype `port(Choice(inv...))` into the
/// per-method invocation shapes, in alternative order. Single-method
/// functions yield one shape.
///
/// # Errors
///
/// Returns [`ShapeError`] if the node is not a port over invocations.
pub fn methods_of(graph: &MtypeGraph, id: MtypeId) -> Result<Vec<FnShape>, ShapeError> {
    let port = graph.resolve(id);
    let MtypeKind::Port(payload) = graph.kind(port) else {
        return Err(ShapeError(format!(
            "not an object port: {}",
            graph.display(port)
        )));
    };
    let payload = graph.resolve(*payload);
    match graph.kind(payload) {
        MtypeKind::Choice(alts) => alts
            .clone()
            .into_iter()
            .map(|a| FnShape::of_invocation(graph, a))
            .collect(),
        MtypeKind::Record(_) => Ok(vec![FnShape::of_invocation(graph, payload)?]),
        other => Err(ShapeError(format!(
            "port payload is neither Choice nor Record: {}",
            other.tag()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_mtype::{IntRange, RealPrecision};

    #[test]
    fn function_shape_parses() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let r = g.real(RealPrecision::SINGLE);
        let f = g.function(vec![i, r], vec![r]);
        let shape = FnShape::of_function(&g, f).unwrap();
        assert_eq!(shape.inputs, vec![i, r]);
        assert_eq!(shape.reply_index, 2);
        let MtypeKind::Record(outs) = g.kind(shape.output) else {
            panic!()
        };
        assert_eq!(outs, &vec![r]);
    }

    #[test]
    fn singleton_interface_parses_as_function() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let out = g.record(vec![i]);
        let reply = g.port(out);
        let inv = g.record(vec![i, reply]);
        let obj = g.object_reference(vec![inv]);
        let shape = FnShape::of_function(&g, obj).unwrap();
        assert_eq!(shape.inputs, vec![i]);
    }

    #[test]
    fn multi_method_interface_needs_interface_stub() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let out = g.record(vec![i]);
        let reply = g.port(out);
        let inv1 = g.record(vec![i, reply]);
        let inv2 = g.record(vec![i, i, reply]);
        let obj = g.object_reference(vec![inv1, inv2]);
        assert!(FnShape::of_function(&g, obj).is_err());
        let methods = methods_of(&g, obj).unwrap();
        assert_eq!(methods.len(), 2);
        assert_eq!(methods[0].inputs.len(), 1);
        assert_eq!(methods[1].inputs.len(), 2);
    }

    #[test]
    fn non_functions_are_rejected() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::boolean());
        assert!(FnShape::of_function(&g, i).is_err());
        let p = g.port(i);
        assert!(
            FnShape::of_function(&g, p).is_err(),
            "payload is not an invocation record"
        );
        let rec = g.record(vec![i]);
        assert!(
            FnShape::of_invocation(&g, rec).is_err(),
            "no reply port in the record"
        );
    }
}
