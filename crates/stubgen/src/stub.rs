//! Executable stubs.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use mockingbird_comparer::{Entry, Mode};
use mockingbird_plan::{CoercionPlan, ConvertError};
use mockingbird_runtime::{RemoteRef, RuntimeError, Servant};
use mockingbird_values::{MValue, PortRef};
use mockingbird_wire::{
    CdrReader, NativeDecodeFn, NativeEncodeInvocationFn, NativeStubRegistry, WireProgram,
};

use crate::shape::{methods_of, FnShape, ShapeError};

/// Errors from stub construction or invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StubError {
    /// The Mtypes do not have function/interface shape.
    Shape(ShapeError),
    /// A conversion failed.
    Convert(ConvertError),
    /// The target implementation failed.
    Target(String),
    /// Transport/dispatch failed.
    Runtime(String),
    /// The plan cannot back a two-way stub.
    OneWayPlan,
}

impl fmt::Display for StubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StubError::Shape(e) => write!(f, "{e}"),
            StubError::Convert(e) => write!(f, "{e}"),
            StubError::Target(m) => write!(f, "target failed: {m}"),
            StubError::Runtime(m) => write!(f, "runtime failure: {m}"),
            StubError::OneWayPlan => {
                write!(f, "function stubs require an equivalence (two-way) plan")
            }
        }
    }
}

impl std::error::Error for StubError {}

impl From<ShapeError> for StubError {
    fn from(e: ShapeError) -> Self {
        StubError::Shape(e)
    }
}

impl From<ConvertError> for StubError {
    fn from(e: ConvertError) -> Self {
        StubError::Convert(e)
    }
}

/// A local two-way function stub: adapts calls made against the *left*
/// declaration onto an implementation of the *right* declaration.
///
/// This is the paper's "efficient local stub that can be used when the
/// components reside in the same process" (§1): no wire format is
/// involved, only the structural conversion.
pub struct FunctionStub {
    plan: Arc<CoercionPlan>,
    left: FnShape,
    right: FnShape,
}

impl FunctionStub {
    /// Builds a function stub from an equivalence plan over two function
    /// Mtypes.
    ///
    /// # Errors
    ///
    /// Returns [`StubError::OneWayPlan`] for subtype plans and
    /// [`StubError::Shape`] when either root is not a function port.
    pub fn new(plan: Arc<CoercionPlan>) -> Result<Self, StubError> {
        if plan.mode() != Mode::Equivalence {
            return Err(StubError::OneWayPlan);
        }
        let left = FnShape::of_function(plan.left_graph(), plan.left_root())?;
        let right = FnShape::of_function(plan.right_graph(), plan.right_root())?;
        Ok(FunctionStub { plan, left, right })
    }

    /// The left-side shape (caller's declaration).
    pub fn left_shape(&self) -> &FnShape {
        &self.left
    }

    /// The right-side shape (implementation's declaration).
    pub fn right_shape(&self) -> &FnShape {
        &self.right
    }

    /// The underlying plan.
    pub fn plan(&self) -> &CoercionPlan {
        &self.plan
    }

    /// Converts left-side inputs into the right-side argument record.
    ///
    /// # Errors
    ///
    /// Returns [`StubError::Convert`] on shape mismatches.
    pub fn convert_args(&self, inputs: &[MValue]) -> Result<MValue, StubError> {
        if inputs.len() != self.left.inputs.len() {
            return Err(StubError::Convert(ConvertError(format!(
                "stub takes {} inputs, got {}",
                self.left.inputs.len(),
                inputs.len()
            ))));
        }
        // Build the left invocation record with a placeholder reply port.
        let mut items: Vec<MValue> = Vec::with_capacity(inputs.len() + 1);
        items.extend(inputs.iter().cloned());
        items.insert(self.left.reply_index, MValue::Port(PortRef(0)));
        let inv_l = MValue::Record(items);
        let inv_r = self
            .plan
            .convert_pair(self.left.invocation, self.right.invocation, &inv_l)?;
        let MValue::Record(mut ritems) = inv_r else {
            return Err(StubError::Convert(ConvertError(
                "converted invocation is not a record".into(),
            )));
        };
        ritems.remove(self.right.reply_index);
        Ok(MValue::Record(ritems))
    }

    /// Converts a right-side output record back to the left side.
    ///
    /// # Errors
    ///
    /// Returns [`StubError::Convert`] on shape mismatches.
    pub fn convert_result(&self, out_r: &MValue) -> Result<MValue, StubError> {
        Ok(self
            .plan
            .convert_pair_back(self.left.output, self.right.output, out_r)?)
    }

    /// Adapts one call: converts inputs, invokes `target` with the
    /// right-side argument record, converts the result record back.
    ///
    /// # Errors
    ///
    /// Propagates conversion failures and the target's error string.
    pub fn call(
        &self,
        inputs: &[MValue],
        target: &dyn Fn(MValue) -> Result<MValue, String>,
    ) -> Result<MValue, StubError> {
        let args_r = self.convert_args(inputs)?;
        let out_r = target(args_r).map_err(StubError::Target)?;
        self.convert_result(&out_r)
    }
}

/// A local stub over a multi-method interface pair
/// (`port(Choice(inv...))` on both sides): resolves which right-side
/// method each left-side method corresponds to, then adapts like a
/// [`FunctionStub`] per method.
pub struct InterfaceStub {
    plan: Arc<CoercionPlan>,
    left_methods: Vec<FnShape>,
    right_methods: Vec<FnShape>,
    /// `method_map[i] = j`: left method `i` is right method `j`.
    method_map: Vec<usize>,
}

impl InterfaceStub {
    /// Builds an interface stub from an equivalence plan over two object
    /// reference Mtypes.
    ///
    /// # Errors
    ///
    /// Returns [`StubError::Shape`] when either side is not an object
    /// port, or [`StubError::Convert`] when the method Choice pair is
    /// missing from the proof.
    pub fn new(plan: Arc<CoercionPlan>) -> Result<Self, StubError> {
        if plan.mode() != Mode::Equivalence {
            return Err(StubError::OneWayPlan);
        }
        let left_methods = methods_of(plan.left_graph(), plan.left_root())?;
        let right_methods = methods_of(plan.right_graph(), plan.right_root())?;
        let method_map = if left_methods.len() == 1 && right_methods.len() == 1 {
            vec![0]
        } else {
            // The Choice entry at the port payloads records the mapping.
            let lport = plan.left_graph().resolve(plan.left_root());
            let rport = plan.right_graph().resolve(plan.right_root());
            let (lpay, rpay) = match (
                plan.left_graph().kind(lport),
                plan.right_graph().kind(rport),
            ) {
                (
                    mockingbird_mtype::MtypeKind::Port(lp),
                    mockingbird_mtype::MtypeKind::Port(rp),
                ) => (*lp, *rp),
                _ => {
                    return Err(StubError::Shape(ShapeError(
                        "interface stubs need port roots".into(),
                    )))
                }
            };
            match plan.matched_entry(lpay, rpay)? {
                Entry::Choice { alt_map, .. } => alt_map,
                _ => {
                    return Err(StubError::Shape(ShapeError(
                        "interface payloads did not match as a Choice".into(),
                    )))
                }
            }
        };
        Ok(InterfaceStub {
            plan,
            left_methods,
            right_methods,
            method_map,
        })
    }

    /// Number of methods on the left interface.
    pub fn method_count(&self) -> usize {
        self.left_methods.len()
    }

    /// Which right-side method a left-side method maps to.
    pub fn target_method(&self, left_method: usize) -> Option<usize> {
        self.method_map.get(left_method).copied()
    }

    /// Adapts a call to left method `left_method`. The target receives
    /// `(right_method_index, right_args_record)`.
    ///
    /// # Errors
    ///
    /// Propagates conversion failures and the target's error string.
    pub fn call_method(
        &self,
        left_method: usize,
        inputs: &[MValue],
        target: &dyn Fn(usize, MValue) -> Result<MValue, String>,
    ) -> Result<MValue, StubError> {
        let lshape = self
            .left_methods
            .get(left_method)
            .ok_or_else(|| StubError::Shape(ShapeError(format!("no method {left_method}"))))?;
        let right_method = self.method_map[left_method];
        let rshape = &self.right_methods[right_method];
        if inputs.len() != lshape.inputs.len() {
            return Err(StubError::Convert(ConvertError(format!(
                "method takes {} inputs, got {}",
                lshape.inputs.len(),
                inputs.len()
            ))));
        }
        let mut items: Vec<MValue> = inputs.to_vec();
        items.insert(lshape.reply_index, MValue::Port(PortRef(0)));
        let inv_r =
            self.plan
                .convert_pair(lshape.invocation, rshape.invocation, &MValue::Record(items))?;
        let MValue::Record(mut ritems) = inv_r else {
            return Err(StubError::Convert(ConvertError(
                "converted invocation is not a record".into(),
            )));
        };
        ritems.remove(rshape.reply_index);
        let out_r = target(right_method, MValue::Record(ritems)).map_err(StubError::Target)?;
        Ok(self
            .plan
            .convert_pair_back(lshape.output, rshape.output, &out_r)?)
    }
}

/// A network-enabled client stub: the same conversions as a
/// [`FunctionStub`], but the right-side argument record is marshalled
/// and sent to a remote object (the paper's "network-enabled stub for
/// the case where the components are in different processes", §1).
pub struct RemoteStub {
    inner: FunctionStub,
    remote: Arc<RemoteRef>,
    operation: String,
    /// Fused one-pass marshal: left inputs → right-side wire bytes with
    /// the reply port elided, straight into a pooled buffer. `None`
    /// falls back to the interpretive convert-then-encode pipeline.
    args_program: Option<Arc<WireProgram>>,
    /// Fused unmarshal: right-side reply bytes → left output record.
    result_program: Option<Arc<WireProgram>>,
    /// Emitted native marshal stub (the second Futamura projection):
    /// resolved from the global registry by nominal fingerprint at
    /// construction, used ahead of `args_program`'s opcode VM.
    native_args: Option<NativeEncodeInvocationFn>,
    /// Emitted native unmarshal stub, ahead of `result_program`.
    native_result: Option<NativeDecodeFn>,
}

impl RemoteStub {
    /// Wraps a function stub around a remote reference, compiling the
    /// fused wire programs for its argument and result coercions (pairs
    /// the program compiler declines run interpretively).
    pub fn new(inner: FunctionStub, remote: Arc<RemoteRef>, operation: impl Into<String>) -> Self {
        let args_program = WireProgram::compile_invocation(
            inner.plan(),
            inner.left.invocation,
            inner.right.invocation,
            inner.right.reply_index,
        )
        .ok()
        .map(Arc::new);
        let result_program =
            WireProgram::compile_pair(inner.plan(), inner.left.output, inner.right.output)
                .ok()
                .filter(|p| p.two_way())
                .map(Arc::new);
        let compiled = args_program.is_some() as u64 + result_program.is_some() as u64;
        if compiled > 0 {
            remote.metrics().add_programs_compiled(compiled);
        }
        // Native tier: an emitted stub may stand in for each direction's
        // opcode program. Gated on the program having compiled — the
        // native stub was emitted *from* that program, so a pair the
        // compiler declines stays interpretive even if a stale stub is
        // registered under its fingerprint.
        let (args_key, result_key) = crate::native::native_keys_for(&inner);
        let registry = NativeStubRegistry::global();
        let native_args = args_program
            .as_ref()
            .and_then(|_| registry.lookup(&args_key))
            .and_then(|s| s.encode_invocation);
        let native_result = result_program
            .as_ref()
            .and_then(|_| registry.lookup(&result_key))
            .and_then(|s| s.decode);
        RemoteStub {
            inner,
            remote,
            operation: operation.into(),
            args_program,
            result_program,
            native_args,
            native_result,
        }
    }

    /// The remote operation name.
    pub fn operation(&self) -> &str {
        &self.operation
    }

    /// Whether calls run the fused data plane end to end (both the
    /// argument and result coercions compiled to wire programs).
    pub fn is_fused(&self) -> bool {
        self.args_program.is_some() && self.result_program.is_some()
    }

    /// The marshal tier calls will use, barring a handshake demotion:
    /// `"native"` (emitted stubs both ways), `"opcode"` (at least one
    /// direction on the wire-program VM), or `"interpretive"`.
    pub fn dispatch_tier(&self) -> &'static str {
        if !self.is_fused() {
            "interpretive"
        } else if self.native_args.is_some() && self.native_result.is_some() {
            "native"
        } else {
            "opcode"
        }
    }

    /// Performs one remote call: convert, marshal, send, await, convert
    /// back. Uses the remote reference's default call options.
    ///
    /// # Errors
    ///
    /// Propagates conversion failures and remote/transport failures.
    pub fn call(&self, inputs: &[MValue]) -> Result<MValue, StubError> {
        self.call_with(inputs, &self.remote.options().clone())
    }

    /// As [`call`](RemoteStub::call), under explicit per-call options
    /// (deadline, retry policy).
    ///
    /// # Errors
    ///
    /// Propagates conversion failures and remote/transport failures,
    /// including expired deadlines as runtime errors.
    pub fn call_with(
        &self,
        inputs: &[MValue],
        options: &mockingbird_runtime::CallOptions,
    ) -> Result<MValue, StubError> {
        // A handshake that agreed on shapes but not on coercion rules
        // demotes the connection to the interpretive path: the fused
        // programs were compiled under *our* rules, so they stay unused.
        if let (Some(args_p), Some(result_p)) = (&self.args_program, &self.result_program) {
            if self.remote.fused_allowed() {
                return self.call_fused(args_p, result_p, inputs, options);
            }
        }
        let args_r = self.inner.convert_args(inputs)?;
        let out_r = self
            .remote
            .invoke_with(&self.operation, &args_r, options)
            .map_err(remote_err)?;
        self.inner.convert_result(&out_r)
    }

    /// The fused data plane: inputs marshal straight into a pooled
    /// request buffer (no intermediate right-side value is built), the
    /// raw reply bytes unmarshal straight into the left output record.
    fn call_fused(
        &self,
        args_p: &WireProgram,
        result_p: &WireProgram,
        inputs: &[MValue],
        options: &mockingbird_runtime::CallOptions,
    ) -> Result<MValue, StubError> {
        if inputs.len() != self.inner.left.inputs.len() {
            return Err(StubError::Convert(ConvertError(format!(
                "stub takes {} inputs, got {}",
                self.inner.left.inputs.len(),
                inputs.len()
            ))));
        }
        let native_used = self.native_args.is_some() as u32 + self.native_result.is_some() as u32;
        if native_used > 0 {
            self.remote.metrics().add_native_call();
        }
        if native_used < 2 {
            self.remote.metrics().add_native_fallback();
        }
        let mut enc = self.remote.buffers().encoder(self.remote.endian());
        if let Some(native) = self.native_args {
            native(enc.writer(), inputs, self.inner.left.reply_index)
                .map_err(|e| StubError::Convert(ConvertError(e.to_string())))?;
        } else {
            args_p
                .encode_invocation(enc.writer(), inputs, self.inner.left.reply_index)
                .map_err(|e| StubError::Convert(ConvertError(e.to_string())))?;
        }
        let body = enc.finish();
        self.remote
            .metrics()
            .add_bytes_marshalled(body.len() as u64);
        let idempotent = self.remote.is_idempotent(&self.operation);
        let (reply, endian) = self
            .remote
            .invoke_body_with(&self.operation, body, idempotent, options)
            .map_err(remote_err)?;
        let mut r = CdrReader::new(&reply, endian);
        let out = if let Some(native) = self.native_result {
            native(&mut r).map_err(|e| StubError::Convert(ConvertError(e.to_string())))?
        } else {
            result_p
                .decode_value(&mut r)
                .map_err(|e| StubError::Convert(ConvertError(e.to_string())))?
        };
        self.remote
            .metrics()
            .add_bytes_unmarshalled((reply.len() - r.remaining()) as u64);
        Ok(out)
    }
}

fn remote_err(e: RuntimeError) -> StubError {
    match e {
        RuntimeError::Application(m) => StubError::Target(m),
        other => StubError::Runtime(other.to_string()),
    }
}

/// Builders for the §5 collaboration study's messaging model: custom
/// "send" and "receive" stubs for declared message types, carried as
/// oneway requests.
pub struct MessagingStubs;

type MessageHandler = Arc<dyn Fn(MValue) + Send + Sync>;

impl MessagingStubs {
    /// A servant that dispatches received messages to per-message-type
    /// handlers (keyed by operation name) and returns an empty record
    /// (messaging expects no reply).
    pub fn receive_servant(handlers: HashMap<String, MessageHandler>) -> Arc<dyn Servant> {
        Arc::new(
            move |operation: &str, args: MValue| match handlers.get(operation) {
                Some(h) => {
                    h(args);
                    Ok(MValue::Record(vec![]))
                }
                None => Err(RuntimeError::UnknownOperation(operation.to_string())),
            },
        )
    }

    /// A send stub: converts a left-declared message through `plan` and
    /// sends it oneway as `operation`.
    ///
    /// # Errors
    ///
    /// Returns conversion or transport failures.
    pub fn send(
        plan: &CoercionPlan,
        remote: &RemoteRef,
        operation: &str,
        message: &MValue,
    ) -> Result<(), StubError> {
        let converted = plan.convert(message)?;
        remote
            .send(operation, &converted)
            .map_err(|e| StubError::Runtime(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_comparer::{Comparer, RuleSet};
    use mockingbird_mtype::{IntRange, MtypeGraph, RealPrecision};

    /// The fitter pair at the Mtype level: Java-style (list)->(line) vs
    /// C-style (list)->(point, point).
    fn fitter_plan() -> (Arc<CoercionPlan>, MtypeGraph) {
        let mut g = MtypeGraph::new();
        let r = g.real(RealPrecision::SINGLE);
        let point = g.record(vec![r, r]);
        let line = g.record(vec![point, point]);
        let jlist = g.list_of(point);
        let java = g.function(vec![jlist], vec![line]);
        let clist = g.list_of(point);
        let cfun = g.function(vec![clist], vec![point, point]);
        let corr = Comparer::new(&g, &g)
            .compare(java, cfun, Mode::Equivalence)
            .unwrap();
        let plan = CoercionPlan::new(&g, &g, corr, RuleSet::full(), Mode::Equivalence);
        (Arc::new(plan), g)
    }

    fn point(x: f64, y: f64) -> MValue {
        MValue::Record(vec![MValue::Real(x), MValue::Real(y)])
    }

    #[test]
    fn fitter_stub_adapts_java_call_onto_c_function() {
        let (plan, _g) = fitter_plan();
        let stub = FunctionStub::new(plan).unwrap();
        // The C-side implementation: a real line fitter over the points.
        let c_fitter = |args: MValue| -> Result<MValue, String> {
            let MValue::Record(items) = args else {
                return Err("bad args".into());
            };
            let MValue::List(pts) = &items[0] else {
                return Err("bad pts".into());
            };
            let first = pts.first().cloned().ok_or("empty")?;
            let last = pts.last().cloned().ok_or("empty")?;
            // Outputs in C shape: Record(start_point, end_point).
            Ok(MValue::Record(vec![first, last]))
        };
        let java_pts = MValue::List(vec![point(0.0, 0.0), point(1.0, 1.0), point(2.0, 2.0)]);
        let out = stub.call(&[java_pts], &c_fitter).unwrap();
        // Java shape: Record(Line) = Record(Record(point, point)).
        assert_eq!(
            out,
            MValue::Record(vec![MValue::Record(vec![point(0.0, 0.0), point(2.0, 2.0)])])
        );
    }

    #[test]
    fn stub_rejects_wrong_arity_and_propagates_target_errors() {
        let (plan, _g) = fitter_plan();
        let stub = FunctionStub::new(plan).unwrap();
        assert!(matches!(
            stub.call(&[], &|_| Ok(MValue::Unit)),
            Err(StubError::Convert(_))
        ));
        let e = stub
            .call(&[MValue::List(vec![])], &|_| {
                Err("fitter needs points".into())
            })
            .unwrap_err();
        assert!(matches!(e, StubError::Target(m) if m.contains("needs points")));
    }

    #[test]
    fn subtype_plans_cannot_back_function_stubs() {
        let mut g = MtypeGraph::new();
        let small = g.integer(IntRange::signed_bits(16));
        let big = g.integer(IntRange::signed_bits(32));
        let corr = Comparer::new(&g, &g)
            .compare(small, big, Mode::Subtype)
            .unwrap();
        let plan = CoercionPlan::new(&g, &g, corr, RuleSet::full(), Mode::Subtype);
        assert!(matches!(
            FunctionStub::new(Arc::new(plan)),
            Err(StubError::OneWayPlan)
        ));
    }

    #[test]
    fn interface_stub_maps_methods_across_orderings() {
        // Left interface: { get(): int, set(int): void }
        // Right interface: { set(int): void, get(): int } — reordered.
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let get_out = g.record(vec![i]);
        let get_reply = g.port(get_out);
        let get_inv = g.record(vec![get_reply]);
        let set_out = g.record(vec![]);
        let set_reply = g.port(set_out);
        let set_inv = g.record(vec![i, set_reply]);
        let left = g.object_reference(vec![get_inv, set_inv]);
        let right = g.object_reference(vec![set_inv, get_inv]);
        let corr = Comparer::new(&g, &g)
            .compare(left, right, Mode::Equivalence)
            .unwrap();
        let plan = Arc::new(CoercionPlan::new(
            &g,
            &g,
            corr,
            RuleSet::full(),
            Mode::Equivalence,
        ));
        let stub = InterfaceStub::new(plan).unwrap();
        assert_eq!(stub.method_count(), 2);
        assert_eq!(stub.target_method(0), Some(1), "left get is right method 1");
        assert_eq!(stub.target_method(1), Some(0));

        let cell = std::sync::Mutex::new(0i128);
        let target = |method: usize, args: MValue| -> Result<MValue, String> {
            match method {
                1 => Ok(MValue::Record(vec![MValue::Int(*cell.lock().unwrap())])),
                0 => {
                    let MValue::Record(items) = args else {
                        return Err("bad".into());
                    };
                    let MValue::Int(v) = items[0] else {
                        return Err("bad".into());
                    };
                    *cell.lock().unwrap() = v;
                    Ok(MValue::Record(vec![]))
                }
                _ => Err("no such method".into()),
            }
        };
        // Left method 1 = set.
        stub.call_method(1, &[MValue::Int(7)], &target).unwrap();
        // Left method 0 = get.
        let out = stub.call_method(0, &[], &target).unwrap();
        assert_eq!(out, MValue::Record(vec![MValue::Int(7)]));
    }

    #[test]
    fn remote_stub_runs_the_fused_data_plane() {
        use mockingbird_runtime::{Dispatcher, InMemoryConnection, WireOp, WireServant};
        use mockingbird_values::Endian;

        let (plan, g) = fitter_plan();
        // Wire types the server speaks: the C-side invocation minus its
        // reply port, and the C-side output record.
        let mut g = g;
        let r = g.real(RealPrecision::SINGLE);
        let pt = g.record(vec![r, r]);
        let c_args = {
            let list = g.list_of(pt);
            g.record(vec![list])
        };
        let c_out = g.record(vec![pt, pt]);
        let graph = Arc::new(g);
        let servant: Arc<dyn Servant> = Arc::new(|_: &str, args: MValue| {
            let MValue::Record(items) = args else {
                return Err(RuntimeError::Application("bad args".into()));
            };
            let MValue::List(pts) = &items[0] else {
                return Err(RuntimeError::Application("bad pts".into()));
            };
            let first = pts.first().cloned().unwrap();
            let last = pts.last().cloned().unwrap();
            Ok(MValue::Record(vec![first, last]))
        });
        let op = WireOp::new(graph, c_args, c_out);
        let mut ops = HashMap::new();
        ops.insert("fit".to_string(), op.clone());
        let d = Arc::new(Dispatcher::new());
        let mut server_ops = HashMap::new();
        server_ops.insert("fit".to_string(), op);
        d.register(b"fitter".to_vec(), WireServant::new(servant, server_ops));
        let remote = Arc::new(RemoteRef::new(
            Arc::new(InMemoryConnection::new(d)),
            b"fitter".to_vec(),
            ops,
            Endian::Little,
        ));
        let stub = RemoteStub::new(FunctionStub::new(plan).unwrap(), remote.clone(), "fit");
        assert!(stub.is_fused(), "the fitter pair must compile to programs");
        let java_pts = MValue::List(vec![point(0.0, 0.0), point(1.0, 1.0), point(2.0, 2.0)]);
        let out = stub.call(&[java_pts]).unwrap();
        assert_eq!(
            out,
            MValue::Record(vec![MValue::Record(vec![point(0.0, 0.0), point(2.0, 2.0)])])
        );
        // The pooled request buffer came back after the call.
        assert_eq!(remote.buffers().idle(), 1);
    }

    #[test]
    fn messaging_receive_servant_dispatches() {
        let received = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = received.clone();
        let mut handlers: HashMap<String, MessageHandler> = HashMap::new();
        handlers.insert(
            "update".to_string(),
            Arc::new(move |v: MValue| sink.lock().unwrap().push(v)),
        );
        let servant = MessagingStubs::receive_servant(handlers);
        servant
            .invoke("update", MValue::Record(vec![MValue::Int(1)]))
            .unwrap();
        assert!(servant.invoke("unknown", MValue::Unit).is_err());
        assert_eq!(received.lock().unwrap().len(), 1);
    }
}
