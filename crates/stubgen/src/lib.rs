//! The Mockingbird *Stub Generator* (paper §3, §4).
//!
//! "When the Comparer asserts that two types match, the Stub Generator
//! produces code that may be compiled and linked with applications and a
//! runtime system to provide a bridge between heterogeneous components."
//!
//! Two complementary outputs:
//!
//! - [`stub`] — *executable* stubs: [`stub::FunctionStub`] adapts a call
//!   through a coercion plan (argument conversion, target invocation,
//!   result back-conversion), [`stub::InterfaceStub`] adds method
//!   selection across matched `port(Choice(...))` Mtypes,
//!   [`stub::RemoteStub`] runs the same conversions against a
//!   [`RemoteRef`] over a wire transport, and [`stub::MessagingStubs`]
//!   builds the §5 collaboration study's send/receive pairs;
//! - [`emit`] — stub *source text*: C client stubs, JNI bridge code for
//!   local Java↔C (the paper's local-stub output), Java caller stubs,
//!   and Rust adapters, each derived from the same coercion plan;
//! - [`native`] — the second Futamura projection: cached wire programs
//!   specialised into straight-line native Rust marshal stubs,
//!   registered by nominal fingerprint and resolved ahead of the opcode
//!   VM at call time.
//!
//! The executable stubs are the behavioural ground truth; the emitters
//! show the code a build system would compile.

pub mod emit;
pub mod native;
pub mod shape;
pub mod stub;

pub use native::{emit_native_module, native_keys_for, EmitError};
pub use shape::{FnShape, ShapeError};
pub use stub::{FunctionStub, InterfaceStub, MessagingStubs, RemoteStub, StubError};
