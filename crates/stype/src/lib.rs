//! Annotated declaration ASTs (*Stypes*) and their translation to Mtypes.
//!
//! "Type declarations are parsed into an internal data structure, called
//! Stype, which is an abstract syntax tree representation of the original
//! declaration. It also records all relevant annotations, both defaults
//! and those explicitly applied by the programmer." (paper §4)
//!
//! This crate provides:
//!
//! - [`ast`] — the language-neutral declaration AST produced by every
//!   frontend (C/C++, Java, CORBA IDL), with per-node [`ann::Ann`]
//!   annotation slots;
//! - [`ann`] — the annotation model (integer ranges, repertoires,
//!   non-null/no-alias, parameter directions, array lengths, pass modes);
//! - [`selector`] — paths addressing parts of a declaration, used to apply
//!   annotations programmatically;
//! - [`script`] — the batch *annotation script* language (paper §5: "a
//!   scripting technique that allows annotations ... to be applied in
//!   batch mode to a much larger set");
//! - [`lower`] — the Stype→Mtype translation (paper §3), honouring all
//!   annotations;
//! - [`project`] — project files: saving and restoring a parsed and
//!   annotated session (paper §3: "the programmer can save the current
//!   state of the parsed and annotated declarations in a project file").
//!
//! # Example
//!
//! ```
//! use mockingbird_stype::ast::{Decl, Field, Lang, Stype, Universe};
//! use mockingbird_stype::lower::Lowerer;
//! use mockingbird_mtype::MtypeGraph;
//!
//! let mut uni = Universe::new();
//! uni.insert(Decl::new(
//!     "Point",
//!     Lang::Java,
//!     Stype::class(
//!         vec![Field::new("x", Stype::f32()), Field::new("y", Stype::f32())],
//!         vec![],
//!     ),
//! ))?;
//!
//! let mut graph = MtypeGraph::new();
//! let point = Lowerer::new(&uni, &mut graph).lower_named("Point")?;
//! assert_eq!(graph.display(point).to_string(), "Record(Real{24,8}, Real{24,8})");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ann;
pub mod ast;
pub mod json;
pub mod lower;
pub mod project;
pub mod script;
pub mod selector;

pub use ann::{Ann, Direction, LengthAnn, PassMode};
pub use ast::{Decl, Field, Lang, Method, Param, Prim, SNode, Signature, Stype, Universe};
pub use lower::{LowerError, Lowerer};
pub use project::Project;
pub use script::apply_script;
pub use selector::Selector;
