//! Project files: persisted sessions.
//!
//! "At any point, the programmer can save the current state of the parsed
//! and annotated declarations in a project file for later use." (paper
//! §3). A [`Project`] serialises the whole [`Universe`] — declarations
//! *with* their annotations — to JSON and restores it, and is one of the
//! four input kinds the tool can parse (Fig. 6).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io;
use std::path::Path;

use crate::ast::Universe;

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

/// A saved Mockingbird session: the annotated declaration universe plus
/// bookkeeping metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Project {
    /// On-disk format version; readers reject unknown versions.
    pub version: u32,
    /// Human-readable project name.
    pub name: String,
    /// The annotated declarations.
    pub universe: Universe,
}

/// Errors from loading or saving projects.
#[derive(Debug)]
pub enum ProjectError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The JSON is malformed or structurally wrong.
    Format(serde_json::Error),
    /// The format version is not supported.
    Version(u32),
}

impl fmt::Display for ProjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjectError::Io(e) => write!(f, "project i/o error: {e}"),
            ProjectError::Format(e) => write!(f, "project format error: {e}"),
            ProjectError::Version(v) => {
                write!(f, "unsupported project version {v} (supported: {FORMAT_VERSION})")
            }
        }
    }
}

impl std::error::Error for ProjectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProjectError::Io(e) => Some(e),
            ProjectError::Format(e) => Some(e),
            ProjectError::Version(_) => None,
        }
    }
}

impl From<io::Error> for ProjectError {
    fn from(e: io::Error) -> Self {
        ProjectError::Io(e)
    }
}

impl From<serde_json::Error> for ProjectError {
    fn from(e: serde_json::Error) -> Self {
        ProjectError::Format(e)
    }
}

impl Project {
    /// Wraps a universe into a project.
    pub fn new(name: impl Into<String>, universe: Universe) -> Self {
        Project { version: FORMAT_VERSION, name: name.into(), universe }
    }

    /// Serialises to pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ProjectError::Format`] if serialisation fails (it will
    /// not for well-formed universes).
    pub fn to_json(&self) -> Result<String, ProjectError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Restores a project from JSON, rebuilding internal indexes.
    ///
    /// # Errors
    ///
    /// Returns [`ProjectError::Format`] on malformed JSON and
    /// [`ProjectError::Version`] on an unsupported format version.
    pub fn from_json(json: &str) -> Result<Self, ProjectError> {
        let mut p: Project = serde_json::from_str(json)?;
        if p.version != FORMAT_VERSION {
            return Err(ProjectError::Version(p.version));
        }
        p.universe.reindex();
        Ok(p)
    }

    /// Saves to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialisation failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ProjectError> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Loads from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O and parse failures.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ProjectError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ann::LengthAnn;
    use crate::ast::{Decl, Field, Lang, Stype};
    use crate::script::apply_script;

    fn sample() -> Universe {
        let mut u = Universe::new();
        u.insert(Decl::new(
            "Point",
            Lang::Java,
            Stype::class(
                vec![Field::new("x", Stype::f32()), Field::new("y", Stype::f32())],
                vec![],
            ),
        ))
        .unwrap();
        u.insert(Decl::new("point", Lang::C, Stype::array_fixed(Stype::f32(), 2)))
            .unwrap();
        u
    }

    #[test]
    fn round_trip_preserves_declarations_and_annotations() {
        let mut u = sample();
        apply_script(&mut u, "annotate point length=static(2)").unwrap();
        let p = Project::new("fitter-session", u);
        let json = p.to_json().unwrap();
        let restored = Project::from_json(&json).unwrap();
        assert_eq!(restored.name, "fitter-session");
        assert_eq!(restored.universe.len(), 2);
        assert_eq!(
            restored.universe.get("point").unwrap().ty.ann.length,
            Some(LengthAnn::Static(2))
        );
        // Index rebuilt: lookups work.
        assert!(restored.universe.get("Point").is_some());
    }

    #[test]
    fn version_mismatch_rejected() {
        let p = Project::new("x", sample());
        let json = p.to_json().unwrap().replace("\"version\": 1", "\"version\": 99");
        let err = Project::from_json(&json).unwrap_err();
        assert!(matches!(err, ProjectError::Version(99)));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(matches!(
            Project::from_json("{ not json").unwrap_err(),
            ProjectError::Format(_)
        ));
    }

    #[test]
    fn file_save_load() {
        let dir = std::env::temp_dir().join("mockingbird-project-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.mbproj.json");
        let p = Project::new("disk", sample());
        p.save(&path).unwrap();
        let restored = Project::load(&path).unwrap();
        assert_eq!(restored.universe.len(), 2);
        std::fs::remove_file(&path).ok();
    }
}
