//! Project files: persisted sessions.
//!
//! "At any point, the programmer can save the current state of the parsed
//! and annotated declarations in a project file for later use." (paper
//! §3). A [`Project`] serialises the whole [`Universe`] — declarations
//! *with* their annotations — to JSON and restores it, and is one of the
//! four input kinds the tool can parse (Fig. 6).

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;

use mockingbird_mtype::{IntRange, RealPrecision, Repertoire};

use crate::ann::{Ann, Direction, LengthAnn, PassMode};
use crate::ast::{ArrayLen, Decl, Field, Lang, Method, Param, SNode, Signature, Stype, Universe};
use crate::json::{Json, JsonError};

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

/// A saved Mockingbird session: the annotated declaration universe plus
/// bookkeeping metadata.
#[derive(Debug, Clone)]
pub struct Project {
    /// On-disk format version; readers reject unknown versions.
    pub version: u32,
    /// Human-readable project name.
    pub name: String,
    /// The annotated declarations.
    pub universe: Universe,
    /// Auxiliary sections carried alongside the universe (for example the
    /// compile cache persisted by `Session::save_project`). Unknown
    /// top-level keys decode into this map and re-encode verbatim, so
    /// producers can extend project files without bumping
    /// [`FORMAT_VERSION`] and old readers keep working.
    pub extra: BTreeMap<String, Json>,
}

/// Errors from loading or saving projects.
#[derive(Debug)]
pub enum ProjectError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The JSON is malformed or structurally wrong.
    Format(JsonError),
    /// The format version is not supported.
    Version(u32),
}

impl fmt::Display for ProjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjectError::Io(e) => write!(f, "project i/o error: {e}"),
            ProjectError::Format(e) => write!(f, "project format error: {e}"),
            ProjectError::Version(v) => {
                write!(
                    f,
                    "unsupported project version {v} (supported: {FORMAT_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for ProjectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProjectError::Io(e) => Some(e),
            ProjectError::Format(e) => Some(e),
            ProjectError::Version(_) => None,
        }
    }
}

impl From<io::Error> for ProjectError {
    fn from(e: io::Error) -> Self {
        ProjectError::Io(e)
    }
}

impl From<JsonError> for ProjectError {
    fn from(e: JsonError) -> Self {
        ProjectError::Format(e)
    }
}

impl Project {
    /// Wraps a universe into a project.
    pub fn new(name: impl Into<String>, universe: Universe) -> Self {
        Project {
            version: FORMAT_VERSION,
            name: name.into(),
            universe,
            extra: BTreeMap::new(),
        }
    }

    /// Serialises to pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ProjectError::Format`] if serialisation fails (it will
    /// not for well-formed universes).
    pub fn to_json(&self) -> Result<String, ProjectError> {
        let mut map = BTreeMap::new();
        map.insert("version".to_string(), Json::Int(i128::from(self.version)));
        map.insert("name".to_string(), Json::str(&self.name));
        map.insert("universe".to_string(), encode_universe(&self.universe));
        for (k, v) in &self.extra {
            // Reserved keys always win over extras of the same name.
            map.entry(k.clone()).or_insert_with(|| v.clone());
        }
        Ok(Json::Object(map).pretty())
    }

    /// Restores a project from JSON, rebuilding internal indexes.
    ///
    /// # Errors
    ///
    /// Returns [`ProjectError::Format`] on malformed JSON and
    /// [`ProjectError::Version`] on an unsupported format version.
    pub fn from_json(json: &str) -> Result<Self, ProjectError> {
        let v = Json::parse(json)?;
        let version = u32::try_from(v.req("version")?.as_int()?)
            .map_err(|_| JsonError("version out of range".into()))?;
        if version != FORMAT_VERSION {
            return Err(ProjectError::Version(version));
        }
        let name = v.req("name")?.as_str()?.to_string();
        let mut universe = decode_universe(v.req("universe")?)?;
        universe.reindex();
        let mut extra = BTreeMap::new();
        if let Json::Object(map) = &v {
            for (k, val) in map {
                if !matches!(k.as_str(), "version" | "name" | "universe") {
                    extra.insert(k.clone(), val.clone());
                }
            }
        }
        Ok(Project {
            version,
            name,
            universe,
            extra,
        })
    }

    /// Saves to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialisation failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ProjectError> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Loads from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O and parse failures.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ProjectError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text)
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn encode_universe(u: &Universe) -> Json {
    Json::obj([("decls", Json::Array(u.iter().map(encode_decl).collect()))])
}

fn encode_decl(d: &Decl) -> Json {
    let mut v = Json::obj([
        ("name", Json::str(&d.name)),
        ("lang", Json::str(lang_tag(d.lang))),
        ("ty", encode_stype(&d.ty)),
    ]);
    if let Some(doc) = &d.doc {
        if let Json::Object(m) = &mut v {
            m.insert("doc".into(), Json::str(doc));
        }
    }
    v
}

fn lang_tag(l: Lang) -> &'static str {
    match l {
        Lang::C => "C",
        Lang::Cxx => "Cxx",
        Lang::Java => "Java",
        Lang::Idl => "Idl",
    }
}

fn prim_tag(p: crate::ast::Prim) -> &'static str {
    use crate::ast::Prim::*;
    match p {
        Bool => "Bool",
        Char8 => "Char8",
        Char16 => "Char16",
        I8 => "I8",
        U8 => "U8",
        I16 => "I16",
        U16 => "U16",
        I32 => "I32",
        U32 => "U32",
        I64 => "I64",
        U64 => "U64",
        F32 => "F32",
        F64 => "F64",
        Void => "Void",
        Any => "Any",
    }
}

fn encode_stype(s: &Stype) -> Json {
    let mut map = std::collections::BTreeMap::new();
    map.insert("node".to_string(), encode_node(&s.node));
    if !s.ann.is_empty() {
        map.insert("ann".to_string(), encode_ann(&s.ann));
    }
    Json::Object(map)
}

fn encode_node(n: &SNode) -> Json {
    match n {
        SNode::Prim(p) => Json::obj([("Prim", Json::str(prim_tag(*p)))]),
        SNode::Named(name) => Json::obj([("Named", Json::str(name))]),
        SNode::Pointer(t) => Json::obj([("Pointer", encode_stype(t))]),
        SNode::Array { elem, len } => Json::obj([(
            "Array",
            Json::obj([
                ("elem", encode_stype(elem)),
                (
                    "len",
                    match len {
                        ArrayLen::Fixed(n) => Json::obj([("Fixed", Json::Int(*n as i128))]),
                        ArrayLen::Indefinite => Json::str("Indefinite"),
                    },
                ),
            ]),
        )]),
        SNode::Struct(fs) => {
            Json::obj([("Struct", Json::Array(fs.iter().map(encode_field).collect()))])
        }
        SNode::Union(fs) => {
            Json::obj([("Union", Json::Array(fs.iter().map(encode_field).collect()))])
        }
        SNode::Enum(ms) => Json::obj([("Enum", Json::Array(ms.iter().map(Json::str).collect()))]),
        SNode::Class {
            fields,
            methods,
            extends,
        } => Json::obj([(
            "Class",
            Json::obj([
                (
                    "fields",
                    Json::Array(fields.iter().map(encode_field).collect()),
                ),
                (
                    "methods",
                    Json::Array(methods.iter().map(encode_method).collect()),
                ),
                ("extends", extends.as_ref().map_or(Json::Null, Json::str)),
            ]),
        )]),
        SNode::Interface { methods, extends } => Json::obj([(
            "Interface",
            Json::obj([
                (
                    "methods",
                    Json::Array(methods.iter().map(encode_method).collect()),
                ),
                (
                    "extends",
                    Json::Array(extends.iter().map(Json::str).collect()),
                ),
            ]),
        )]),
        SNode::Function(sig) => Json::obj([("Function", encode_signature(sig))]),
        SNode::Sequence(e) => Json::obj([("Sequence", encode_stype(e))]),
        SNode::Str => Json::str("Str"),
    }
}

fn encode_field(f: &Field) -> Json {
    Json::obj([("name", Json::str(&f.name)), ("ty", encode_stype(&f.ty))])
}

fn encode_param(p: &Param) -> Json {
    Json::obj([("name", Json::str(&p.name)), ("ty", encode_stype(&p.ty))])
}

fn encode_signature(sig: &Signature) -> Json {
    let mut map = std::collections::BTreeMap::new();
    map.insert(
        "params".to_string(),
        Json::Array(sig.params.iter().map(encode_param).collect()),
    );
    map.insert("ret".to_string(), encode_stype(&sig.ret));
    if !sig.throws.is_empty() {
        map.insert(
            "throws".to_string(),
            Json::Array(sig.throws.iter().map(encode_stype).collect()),
        );
    }
    Json::Object(map)
}

fn encode_method(m: &Method) -> Json {
    Json::obj([
        ("name", Json::str(&m.name)),
        ("sig", encode_signature(&m.sig)),
    ])
}

fn encode_ann(a: &Ann) -> Json {
    let mut map = std::collections::BTreeMap::new();
    if let Some(r) = &a.int_range {
        map.insert(
            "int_range".to_string(),
            Json::obj([("lo", Json::Int(r.lo)), ("hi", Json::Int(r.hi))]),
        );
    }
    if let Some(rep) = &a.repertoire {
        map.insert(
            "repertoire".to_string(),
            match rep {
                Repertoire::Ascii => Json::str("Ascii"),
                Repertoire::Latin1 => Json::str("Latin1"),
                Repertoire::Unicode => Json::str("Unicode"),
                Repertoire::Custom(name) => Json::obj([("Custom", Json::str(name))]),
            },
        );
    }
    if a.as_integer {
        map.insert("as_integer".to_string(), Json::Bool(true));
    }
    if let Some(p) = &a.real_precision {
        map.insert(
            "real_precision".to_string(),
            Json::obj([
                ("mantissa_bits", Json::Int(i128::from(p.mantissa_bits))),
                ("exponent_bits", Json::Int(i128::from(p.exponent_bits))),
            ]),
        );
    }
    if a.non_null {
        map.insert("non_null".to_string(), Json::Bool(true));
    }
    if a.no_alias {
        map.insert("no_alias".to_string(), Json::Bool(true));
    }
    if let Some(l) = &a.length {
        map.insert(
            "length".to_string(),
            match l {
                LengthAnn::Static(n) => Json::obj([("Static", Json::Int(*n as i128))]),
                LengthAnn::Runtime => Json::str("Runtime"),
                LengthAnn::Param(p) => Json::obj([("Param", Json::str(p))]),
            },
        );
    }
    if let Some(d) = &a.direction {
        map.insert(
            "direction".to_string(),
            Json::str(match d {
                Direction::In => "In",
                Direction::Out => "Out",
                Direction::InOut => "InOut",
            }),
        );
    }
    if let Some(pm) = &a.pass_mode {
        map.insert(
            "pass_mode".to_string(),
            Json::str(match pm {
                PassMode::ByValue => "ByValue",
                PassMode::ByReference => "ByReference",
            }),
        );
    }
    if let Some(e) = &a.element {
        map.insert("element".to_string(), Json::str(e));
    }
    if a.is_string {
        map.insert("is_string".to_string(), Json::Bool(true));
    }
    Json::Object(map)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn decode_universe(v: &Json) -> Result<Universe, JsonError> {
    let mut u = Universe::new();
    for d in v.req("decls")?.as_array()? {
        let decl = decode_decl(d)?;
        u.insert(decl)
            .map_err(|e| JsonError(format!("duplicate declaration: {e}")))?;
    }
    Ok(u)
}

fn decode_decl(v: &Json) -> Result<Decl, JsonError> {
    let name = v.req("name")?.as_str()?.to_string();
    let lang = match v.req("lang")?.as_str()? {
        "C" => Lang::C,
        "Cxx" => Lang::Cxx,
        "Java" => Lang::Java,
        "Idl" => Lang::Idl,
        other => return Err(JsonError(format!("unknown lang `{other}`"))),
    };
    let ty = decode_stype(v.req("ty")?)?;
    let doc = match v.get("doc") {
        Some(Json::Str(s)) => Some(s.clone()),
        Some(Json::Null) | None => None,
        Some(other) => return Err(JsonError(format!("bad doc field {other:?}"))),
    };
    Ok(Decl {
        name,
        lang,
        ty,
        doc,
    })
}

fn decode_stype(v: &Json) -> Result<Stype, JsonError> {
    let node = decode_node(v.req("node")?)?;
    let ann = match v.get("ann") {
        Some(a) => decode_ann(a)?,
        None => Ann::default(),
    };
    Ok(Stype { node, ann })
}

/// Unwraps the externally-tagged enum form: either `"UnitVariant"` or
/// `{"Variant": payload}` with exactly one key.
fn variant(v: &Json) -> Result<(&str, Option<&Json>), JsonError> {
    match v {
        Json::Str(tag) => Ok((tag, None)),
        Json::Object(m) if m.len() == 1 => {
            let (tag, payload) = m.iter().next().expect("len checked");
            Ok((tag, Some(payload)))
        }
        other => Err(JsonError(format!("expected enum variant, got {other:?}"))),
    }
}

fn payload<'a>(p: Option<&'a Json>, tag: &str) -> Result<&'a Json, JsonError> {
    p.ok_or_else(|| JsonError(format!("variant `{tag}` needs a payload")))
}

fn decode_node(v: &Json) -> Result<SNode, JsonError> {
    let (tag, p) = variant(v)?;
    match tag {
        "Prim" => {
            use crate::ast::Prim::*;
            let name = payload(p, tag)?.as_str()?;
            let prim = match name {
                "Bool" => Bool,
                "Char8" => Char8,
                "Char16" => Char16,
                "I8" => I8,
                "U8" => U8,
                "I16" => I16,
                "U16" => U16,
                "I32" => I32,
                "U32" => U32,
                "I64" => I64,
                "U64" => U64,
                "F32" => F32,
                "F64" => F64,
                "Void" => Void,
                "Any" => Any,
                other => return Err(JsonError(format!("unknown prim `{other}`"))),
            };
            Ok(SNode::Prim(prim))
        }
        "Named" => Ok(SNode::Named(payload(p, tag)?.as_str()?.to_string())),
        "Pointer" => Ok(SNode::Pointer(Box::new(decode_stype(payload(p, tag)?)?))),
        "Array" => {
            let p = payload(p, tag)?;
            let elem = Box::new(decode_stype(p.req("elem")?)?);
            let (ltag, lp) = variant(p.req("len")?)?;
            let len = match ltag {
                "Fixed" => ArrayLen::Fixed(usize_of(payload(lp, ltag)?)?),
                "Indefinite" => ArrayLen::Indefinite,
                other => return Err(JsonError(format!("unknown array len `{other}`"))),
            };
            Ok(SNode::Array { elem, len })
        }
        "Struct" => Ok(SNode::Struct(decode_fields(payload(p, tag)?)?)),
        "Union" => Ok(SNode::Union(decode_fields(payload(p, tag)?)?)),
        "Enum" => {
            let members = payload(p, tag)?
                .as_array()?
                .iter()
                .map(|m| m.as_str().map(str::to_string))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(SNode::Enum(members))
        }
        "Class" => {
            let p = payload(p, tag)?;
            let fields = decode_fields(p.req("fields")?)?;
            let methods = decode_methods(p.req("methods")?)?;
            let extends = match p.get("extends") {
                Some(Json::Str(s)) => Some(s.clone()),
                Some(Json::Null) | None => None,
                Some(other) => return Err(JsonError(format!("bad extends field {other:?}"))),
            };
            Ok(SNode::Class {
                fields,
                methods,
                extends,
            })
        }
        "Interface" => {
            let p = payload(p, tag)?;
            let methods = decode_methods(p.req("methods")?)?;
            let extends = p
                .req("extends")?
                .as_array()?
                .iter()
                .map(|s| s.as_str().map(str::to_string))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(SNode::Interface { methods, extends })
        }
        "Function" => Ok(SNode::Function(decode_signature(payload(p, tag)?)?)),
        "Sequence" => Ok(SNode::Sequence(Box::new(decode_stype(payload(p, tag)?)?))),
        "Str" => Ok(SNode::Str),
        other => Err(JsonError(format!("unknown Stype node `{other}`"))),
    }
}

fn usize_of(v: &Json) -> Result<usize, JsonError> {
    usize::try_from(v.as_int()?).map_err(|_| JsonError("length out of range".into()))
}

fn decode_fields(v: &Json) -> Result<Vec<Field>, JsonError> {
    v.as_array()?
        .iter()
        .map(|f| {
            Ok(Field {
                name: f.req("name")?.as_str()?.to_string(),
                ty: decode_stype(f.req("ty")?)?,
            })
        })
        .collect()
}

fn decode_signature(v: &Json) -> Result<Signature, JsonError> {
    let params = v
        .req("params")?
        .as_array()?
        .iter()
        .map(|p| {
            Ok(Param {
                name: p.req("name")?.as_str()?.to_string(),
                ty: decode_stype(p.req("ty")?)?,
            })
        })
        .collect::<Result<Vec<_>, JsonError>>()?;
    let ret = Box::new(decode_stype(v.req("ret")?)?);
    let throws = match v.get("throws") {
        Some(t) => t
            .as_array()?
            .iter()
            .map(decode_stype)
            .collect::<Result<Vec<_>, _>>()?,
        None => Vec::new(),
    };
    Ok(Signature {
        params,
        ret,
        throws,
    })
}

fn decode_methods(v: &Json) -> Result<Vec<Method>, JsonError> {
    v.as_array()?
        .iter()
        .map(|m| {
            Ok(Method {
                name: m.req("name")?.as_str()?.to_string(),
                sig: decode_signature(m.req("sig")?)?,
            })
        })
        .collect()
}

fn decode_ann(v: &Json) -> Result<Ann, JsonError> {
    let mut a = Ann::default();
    if let Some(r) = v.get("int_range") {
        a.int_range = Some(IntRange {
            lo: r.req("lo")?.as_int()?,
            hi: r.req("hi")?.as_int()?,
        });
    }
    if let Some(rep) = v.get("repertoire") {
        let (tag, p) = variant(rep)?;
        a.repertoire = Some(match tag {
            "Ascii" => Repertoire::Ascii,
            "Latin1" => Repertoire::Latin1,
            "Unicode" => Repertoire::Unicode,
            "Custom" => Repertoire::Custom(payload(p, tag)?.as_str()?.to_string()),
            other => return Err(JsonError(format!("unknown repertoire `{other}`"))),
        });
    }
    if let Some(b) = v.get("as_integer") {
        a.as_integer = b.as_bool()?;
    }
    if let Some(p) = v.get("real_precision") {
        let mantissa = p.req("mantissa_bits")?.as_int()?;
        let exponent = p.req("exponent_bits")?.as_int()?;
        a.real_precision = Some(RealPrecision {
            mantissa_bits: u16::try_from(mantissa)
                .map_err(|_| JsonError("mantissa_bits out of range".into()))?,
            exponent_bits: u16::try_from(exponent)
                .map_err(|_| JsonError("exponent_bits out of range".into()))?,
        });
    }
    if let Some(b) = v.get("non_null") {
        a.non_null = b.as_bool()?;
    }
    if let Some(b) = v.get("no_alias") {
        a.no_alias = b.as_bool()?;
    }
    if let Some(l) = v.get("length") {
        let (tag, p) = variant(l)?;
        a.length = Some(match tag {
            "Static" => LengthAnn::Static(usize_of(payload(p, tag)?)?),
            "Runtime" => LengthAnn::Runtime,
            "Param" => LengthAnn::Param(payload(p, tag)?.as_str()?.to_string()),
            other => return Err(JsonError(format!("unknown length ann `{other}`"))),
        });
    }
    if let Some(d) = v.get("direction") {
        a.direction = Some(match d.as_str()? {
            "In" => Direction::In,
            "Out" => Direction::Out,
            "InOut" => Direction::InOut,
            other => return Err(JsonError(format!("unknown direction `{other}`"))),
        });
    }
    if let Some(pm) = v.get("pass_mode") {
        a.pass_mode = Some(match pm.as_str()? {
            "ByValue" => PassMode::ByValue,
            "ByReference" => PassMode::ByReference,
            other => return Err(JsonError(format!("unknown pass mode `{other}`"))),
        });
    }
    if let Some(e) = v.get("element") {
        a.element = Some(e.as_str()?.to_string());
    }
    if let Some(b) = v.get("is_string") {
        a.is_string = b.as_bool()?;
    }
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ann::LengthAnn;
    use crate::ast::{Decl, Field, Lang, Stype};
    use crate::script::apply_script;

    fn sample() -> Universe {
        let mut u = Universe::new();
        u.insert(Decl::new(
            "Point",
            Lang::Java,
            Stype::class(
                vec![Field::new("x", Stype::f32()), Field::new("y", Stype::f32())],
                vec![],
            ),
        ))
        .unwrap();
        u.insert(Decl::new(
            "point",
            Lang::C,
            Stype::array_fixed(Stype::f32(), 2),
        ))
        .unwrap();
        u
    }

    #[test]
    fn round_trip_preserves_declarations_and_annotations() {
        let mut u = sample();
        apply_script(&mut u, "annotate point length=static(2)").unwrap();
        let p = Project::new("fitter-session", u);
        let json = p.to_json().unwrap();
        let restored = Project::from_json(&json).unwrap();
        assert_eq!(restored.name, "fitter-session");
        assert_eq!(restored.universe.len(), 2);
        assert_eq!(
            restored.universe.get("point").unwrap().ty.ann.length,
            Some(LengthAnn::Static(2))
        );
        // Index rebuilt: lookups work.
        assert!(restored.universe.get("Point").is_some());
    }

    #[test]
    fn version_mismatch_rejected() {
        let p = Project::new("x", sample());
        let json = p
            .to_json()
            .unwrap()
            .replace("\"version\": 1", "\"version\": 99");
        let err = Project::from_json(&json).unwrap_err();
        assert!(matches!(err, ProjectError::Version(99)));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(matches!(
            Project::from_json("{ not json").unwrap_err(),
            ProjectError::Format(_)
        ));
    }

    #[test]
    fn file_save_load() {
        let dir = std::env::temp_dir().join("mockingbird-project-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.mbproj.json");
        let p = Project::new("disk", sample());
        p.save(&path).unwrap();
        let restored = Project::load(&path).unwrap();
        assert_eq!(restored.universe.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rich_ann_fields_round_trip() {
        let mut u = Universe::new();
        let ty = Stype::pointer(Stype::char8()).with_ann(|a| {
            a.non_null = true;
            a.no_alias = true;
            a.is_string = true;
            a.as_integer = true;
            a.int_range = Some(IntRange { lo: -5, hi: 300 });
            a.repertoire = Some(Repertoire::Custom("ebcdic".into()));
            a.real_precision = Some(RealPrecision::SINGLE);
            a.length = Some(LengthAnn::Param("count".into()));
            a.direction = Some(Direction::InOut);
            a.pass_mode = Some(PassMode::ByReference);
            a.element = Some("Point".into());
        });
        u.insert(Decl::new("buf", Lang::C, ty)).unwrap();
        let p = Project::new("anns", u);
        let restored = Project::from_json(&p.to_json().unwrap()).unwrap();
        assert_eq!(
            restored.universe.get("buf").unwrap(),
            p.universe.get("buf").unwrap()
        );
    }

    #[test]
    fn extra_sections_round_trip_and_stay_versionless() {
        let mut p = Project::new("warm", Universe::new());
        p.extra.insert(
            "compile_cache".to_string(),
            Json::obj([(
                "verdicts",
                Json::Array(vec![Json::obj([
                    ("l", Json::str("00ff")),
                    ("ok", Json::Bool(true)),
                ])]),
            )]),
        );
        let text = p.to_json().unwrap();
        let restored = Project::from_json(&text).unwrap();
        assert_eq!(restored.version, FORMAT_VERSION, "no version bump needed");
        assert_eq!(restored.extra, p.extra, "unknown sections carried verbatim");
        // A reader that knows nothing about extras still round-trips them.
        let again = Project::from_json(&restored.to_json().unwrap()).unwrap();
        assert_eq!(again.extra, p.extra);
    }
}
