//! The annotation model.
//!
//! Annotations refine the translation of declarations into Mtypes where
//! the mapping would otherwise be ambiguous (paper §3): explicit integer
//! ranges, glyph repertoires, whether an integral type holds characters or
//! integers, floating point precision, pointer nullability and aliasing,
//! array length sources, parameter directions, and pass modes.

use mockingbird_mtype::{IntRange, RealPrecision, Repertoire};
use std::fmt;

/// Direction of a function or method parameter (paper §3.3: "any
/// parameter may be annotated as in, out, or in-out").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// The parameter carries data into the callee (the default).
    In,
    /// The parameter carries data back to the caller; for a C pointer
    /// parameter the *referent* type is the output.
    Out,
    /// The parameter is both an input and an output.
    InOut,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::In => write!(f, "in"),
            Direction::Out => write!(f, "out"),
            Direction::InOut => write!(f, "inout"),
        }
    }
}

/// Where an array's length comes from (paper §3.2: "annotations may
/// provide either a static length (resulting in a Record Mtype) or a
/// runtime length (resulting in a Recursive Mtype)").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LengthAnn {
    /// The array has exactly this many elements: lowers to a Record.
    Static(usize),
    /// The length is known only at runtime: lowers to the recursive list.
    Runtime,
    /// The length is carried by the named sibling parameter (the fitter
    /// example's `pts`/`count` pairing); lowers to the recursive list and
    /// the named parameter is absorbed into it.
    Param(String),
}

/// How a class/struct type crosses the interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassMode {
    /// Passed by value: lowers to a `Record` over the fields (paper §3.2).
    ByValue,
    /// Passed by reference: lowers to `port(Choice(methods))` (paper §3.3).
    ByReference,
}

/// The annotation slot carried by every Stype node.
///
/// All fields default to "no annotation"; [`Ann::merge_under`] layers a
/// use-site annotation over a declaration-site one (use-site wins).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ann {
    /// Override the integer range (e.g. "this Java int is unsigned").
    pub int_range: Option<IntRange>,
    /// Treat an integral type as characters with this repertoire, or
    /// override a character type's default repertoire.
    pub repertoire: Option<Repertoire>,
    /// Treat a character type as an integer (paper §3.1: programmers
    /// "can state which of the two Mtype families is intended").
    pub as_integer: bool,
    /// Override floating point precision.
    pub real_precision: Option<RealPrecision>,
    /// This pointer/reference is never null.
    pub non_null: bool,
    /// This pointer/reference never introduces an alias; together with
    /// `non_null` it lets a reference field lower to the referent's
    /// Record directly (the paper's `Line`/`Point` example).
    pub no_alias: bool,
    /// Array/pointer length source.
    pub length: Option<LengthAnn>,
    /// Parameter direction (meaningful on parameter types).
    pub direction: Option<Direction>,
    /// Pass mode override for class/struct types.
    pub pass_mode: Option<PassMode>,
    /// Element type of a collection (the paper's "PointVector can only
    /// contain non-null Point objects"). Names a declaration.
    pub element: Option<String>,
    /// Treat a `char*`/pointer as a string (a list of characters).
    pub is_string: bool,
}

impl Ann {
    /// The empty annotation.
    pub fn new() -> Self {
        Ann::default()
    }

    /// Whether no annotation is set.
    pub fn is_empty(&self) -> bool {
        *self == Ann::default()
    }

    /// Layers `self` (the use site) over `decl` (the declaration site):
    /// any field set at the use site wins, otherwise the declaration-site
    /// value is taken.
    pub fn merge_under(&self, decl: &Ann) -> Ann {
        Ann {
            int_range: self.int_range.or(decl.int_range),
            repertoire: self.repertoire.clone().or_else(|| decl.repertoire.clone()),
            as_integer: self.as_integer || decl.as_integer,
            real_precision: self.real_precision.or(decl.real_precision),
            non_null: self.non_null || decl.non_null,
            no_alias: self.no_alias || decl.no_alias,
            length: self.length.clone().or_else(|| decl.length.clone()),
            direction: self.direction.or(decl.direction),
            pass_mode: self.pass_mode.or(decl.pass_mode),
            element: self.element.clone().or_else(|| decl.element.clone()),
            is_string: self.is_string || decl.is_string,
        }
    }
}

impl fmt::Display for Ann {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(r) = &self.int_range {
            parts.push(format!("range({},{})", r.lo, r.hi));
        }
        if let Some(rep) = &self.repertoire {
            parts.push(format!("repertoire({rep})"));
        }
        if self.as_integer {
            parts.push("as-integer".into());
        }
        if let Some(p) = &self.real_precision {
            parts.push(format!("precision({p})"));
        }
        if self.non_null {
            parts.push("non-null".into());
        }
        if self.no_alias {
            parts.push("no-alias".into());
        }
        match &self.length {
            Some(LengthAnn::Static(n)) => parts.push(format!("length(static {n})")),
            Some(LengthAnn::Runtime) => parts.push("length(runtime)".into()),
            Some(LengthAnn::Param(p)) => parts.push(format!("length(param {p})")),
            None => {}
        }
        if let Some(d) = &self.direction {
            parts.push(format!("direction({d})"));
        }
        match self.pass_mode {
            Some(PassMode::ByValue) => parts.push("by-value".into()),
            Some(PassMode::ByReference) => parts.push("by-ref".into()),
            None => {}
        }
        if let Some(e) = &self.element {
            parts.push(format!("element({e})"));
        }
        if self.is_string {
            parts.push("string".into());
        }
        write!(f, "{}", parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty() {
        assert!(Ann::new().is_empty());
        let mut a = Ann::new();
        a.non_null = true;
        assert!(!a.is_empty());
    }

    #[test]
    fn merge_prefers_use_site() {
        let mut decl = Ann::new();
        decl.int_range = Some(IntRange::signed_bits(16));
        decl.non_null = true;

        let mut use_site = Ann::new();
        use_site.int_range = Some(IntRange::unsigned_bits(8));

        let merged = use_site.merge_under(&decl);
        assert_eq!(merged.int_range, Some(IntRange::unsigned_bits(8)));
        assert!(merged.non_null, "decl-site flags persist");
    }

    #[test]
    fn merge_keeps_decl_when_use_site_empty() {
        let mut decl = Ann::new();
        decl.length = Some(LengthAnn::Param("count".into()));
        let merged = Ann::new().merge_under(&decl);
        assert_eq!(merged.length, Some(LengthAnn::Param("count".into())));
    }

    #[test]
    fn display_round_trips_the_vocabulary() {
        let mut a = Ann::new();
        a.non_null = true;
        a.no_alias = true;
        a.direction = Some(Direction::Out);
        a.length = Some(LengthAnn::Static(2));
        let s = a.to_string();
        assert!(s.contains("non-null"));
        assert!(s.contains("no-alias"));
        assert!(s.contains("direction(out)"));
        assert!(s.contains("length(static 2)"));
    }
}
