//! A minimal JSON value, parser, and pretty-printer.
//!
//! Project files are plain JSON (paper §3: saved sessions are one of the
//! four input kinds). The workspace carries no external dependencies, so
//! this module implements the small JSON subset the project format
//! needs: objects, arrays, strings (with escapes), integers, floats,
//! booleans, and null.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any JSON number; project files only store integers that fit i128
    /// exactly, floats are carried for completeness.
    Int(i128),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; ordered map so output is deterministic.
    Object(BTreeMap<String, Json>),
}

/// A JSON syntax or shape error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value under `key`, when `self` is an object holding it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value under `key`, or a shape error naming the key.
    pub fn req(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError(format!("missing key `{key}`")))
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError(format!("expected string, got {other:?}"))),
        }
    }

    /// This value as an integer.
    pub fn as_int(&self) -> Result<i128, JsonError> {
        match self {
            Json::Int(i) => Ok(*i),
            other => Err(JsonError(format!("expected integer, got {other:?}"))),
        }
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError(format!("expected bool, got {other:?}"))),
        }
    }

    /// This value as an array slice.
    pub fn as_array(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Array(v) => Ok(v),
            other => Err(JsonError(format!("expected array, got {other:?}"))),
        }
    }

    /// Pretty-prints with two-space indentation (`"key": value`).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError(format!("trailing data at byte {pos}")));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError(format!(
            "expected `{}` at byte {}",
            c as char, *pos
        )))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(JsonError("unexpected end of input".into())),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(map));
                    }
                    _ => {
                        return Err(JsonError(format!(
                            "expected `,` or `}}` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => {
                        return Err(JsonError(format!(
                            "expected `,` or `]` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => keyword(b, pos, "true", Json::Bool(true)),
        Some(b'f') => keyword(b, pos, "false", Json::Bool(false)),
        Some(b'n') => keyword(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn keyword(b: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, JsonError> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError(format!("bad literal at byte {}", *pos)))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(JsonError("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| JsonError("bad \\u escape".into()))?,
                            16,
                        )
                        .map_err(|_| JsonError("bad \\u escape".into()))?;
                        // Surrogate pairs are not needed by the project
                        // format; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonError("bad escape".into())),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| JsonError("invalid UTF-8".into()))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("digits are ASCII");
    if text.is_empty() || text == "-" {
        return Err(JsonError(format!("bad number at byte {start}")));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError(format!("bad number `{text}`")))
    } else {
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|_| JsonError(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let v = Json::obj([
            ("version", Json::Int(1)),
            ("name", Json::str("fitter")),
            (
                "decls",
                Json::Array(vec![
                    Json::obj([("k", Json::Bool(true))]),
                    Json::Null,
                    Json::Float(2.5),
                ]),
            ),
        ]);
        let text = v.pretty();
        assert!(text.contains("\"version\": 1"), "{text}");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::str("a\"b\\c\nd\tταβ");
        let text = v.pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(Json::parse("{ not json").is_err());
        assert!(Json::parse("").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("00x").is_err());
    }

    #[test]
    fn numbers_parse_both_kinds() {
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn accessors_report_shape_errors() {
        let v = Json::parse("{\"a\": 1}").unwrap();
        assert_eq!(v.req("a").unwrap().as_int().unwrap(), 1);
        assert!(v.req("b").is_err());
        assert!(v.req("a").unwrap().as_str().is_err());
    }
}
