//! The batch annotation script language.
//!
//! Paper §5: "We have developed a scripting technique that allows
//! annotations, worked out in detail with representative classes, to be
//! applied in batch mode to a much larger set." This module implements
//! that technique as a small line-oriented language:
//!
//! ```text
//! # Fitter example annotations (paper §3.4)
//! annotate fitter.param(pts) length=param(count)
//! annotate fitter.param(start) direction=out
//! annotate fitter.param(end) direction=out
//! annotate Line.field(start) non-null no-alias
//! annotate Line.field(end) non-null no-alias
//! annotate PointVector element=Point non-null
//! ```
//!
//! Each `annotate` line names a [`Selector`] path and one or more
//! annotation operations:
//!
//! | operation | effect |
//! |---|---|
//! | `non-null` / `no-alias` | pointer discipline flags |
//! | `by-value` / `by-ref` | class pass mode |
//! | `string` | treat a `char*` as a character list |
//! | `as-integer` | treat a char type as an integer |
//! | `direction=in\|out\|inout` | parameter direction |
//! | `length=static(N)` / `length=runtime` / `length=param(NAME)` | array length source |
//! | `range=LO..HI` | integer range override |
//! | `repertoire=ascii\|latin1\|unicode\|custom(NAME)` | glyph repertoire |
//! | `precision=single\|double` | floating point precision |
//! | `element=NAME` | collection element type |

use std::fmt;

use mockingbird_mtype::{IntRange, RealPrecision, Repertoire};

use crate::ann::{Ann, Direction, LengthAnn, PassMode};
use crate::ast::Universe;
use crate::selector::{Selector, SelectorError};

/// Errors from parsing or applying annotation scripts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptError {
    /// A line failed to parse (1-based line number, message).
    Parse(usize, String),
    /// A selector failed to resolve.
    Selector(usize, SelectorError),
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Parse(line, m) => write!(f, "line {line}: {m}"),
            ScriptError::Selector(line, e) => write!(f, "line {line}: {e}"),
        }
    }
}

impl std::error::Error for ScriptError {}

/// Applies an annotation script to a universe, mutating the addressed
/// annotation slots in place. Returns the number of `annotate`
/// statements applied.
///
/// # Errors
///
/// Stops at the first malformed line or unresolvable selector; earlier
/// statements remain applied (scripts are idempotent in practice, so
/// rerunning after a fix is safe).
pub fn apply_script(uni: &mut Universe, script: &str) -> Result<usize, ScriptError> {
    let mut applied = 0usize;
    for (i, raw) in script.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
            continue;
        }
        let rest = line
            .strip_prefix("annotate ")
            .ok_or_else(|| ScriptError::Parse(lineno, format!("expected `annotate`: `{line}`")))?;
        let mut tokens = tokenise(rest);
        if tokens.is_empty() {
            return Err(ScriptError::Parse(lineno, "missing selector".into()));
        }
        let selector_text = tokens.remove(0);
        if tokens.is_empty() {
            return Err(ScriptError::Parse(
                lineno,
                "missing annotation operations".into(),
            ));
        }
        let selector =
            Selector::parse(&selector_text).map_err(|e| ScriptError::Selector(lineno, e))?;
        let ty = selector
            .resolve_mut(uni)
            .map_err(|e| ScriptError::Selector(lineno, e))?;
        for tok in &tokens {
            apply_op(&mut ty.ann, tok).map_err(|m| ScriptError::Parse(lineno, m))?;
        }
        applied += 1;
    }
    Ok(applied)
}

/// Splits on whitespace outside parentheses, so `length=param(count)`
/// stays one token.
fn tokenise(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut depth = 0usize;
    for ch in text.chars() {
        match ch {
            '(' => {
                depth += 1;
                cur.push(ch);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            c if c.is_whitespace() && depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn apply_op(ann: &mut Ann, op: &str) -> Result<(), String> {
    match op {
        "non-null" => ann.non_null = true,
        "no-alias" => ann.no_alias = true,
        "by-value" => ann.pass_mode = Some(PassMode::ByValue),
        "by-ref" => ann.pass_mode = Some(PassMode::ByReference),
        "string" => ann.is_string = true,
        "as-integer" => ann.as_integer = true,
        _ => {
            let (key, value) = op
                .split_once('=')
                .ok_or_else(|| format!("unknown annotation `{op}`"))?;
            match key {
                "direction" => {
                    ann.direction = Some(match value {
                        "in" => Direction::In,
                        "out" => Direction::Out,
                        "inout" => Direction::InOut,
                        _ => return Err(format!("bad direction `{value}`")),
                    });
                }
                "length" => {
                    ann.length = Some(parse_length(value)?);
                }
                "range" => {
                    let (lo, hi) = value
                        .split_once("..")
                        .ok_or_else(|| format!("bad range `{value}`, expected LO..HI"))?;
                    let lo: i128 = lo
                        .parse()
                        .map_err(|_| format!("bad range low bound `{lo}`"))?;
                    let hi: i128 = hi
                        .parse()
                        .map_err(|_| format!("bad range high bound `{hi}`"))?;
                    if lo > hi {
                        return Err(format!("empty range `{value}`"));
                    }
                    ann.int_range = Some(IntRange::new(lo, hi));
                }
                "repertoire" => {
                    ann.repertoire = Some(match value {
                        "ascii" => Repertoire::Ascii,
                        "latin1" => Repertoire::Latin1,
                        "unicode" => Repertoire::Unicode,
                        _ => match value
                            .strip_prefix("custom(")
                            .and_then(|v| v.strip_suffix(')'))
                        {
                            Some(name) => Repertoire::Custom(name.to_string()),
                            None => return Err(format!("bad repertoire `{value}`")),
                        },
                    });
                }
                "precision" => {
                    ann.real_precision = Some(match value {
                        "single" => RealPrecision::SINGLE,
                        "double" => RealPrecision::DOUBLE,
                        _ => return Err(format!("bad precision `{value}`")),
                    });
                }
                "element" => {
                    if value.is_empty() {
                        return Err("element needs a type name".into());
                    }
                    ann.element = Some(value.to_string());
                }
                _ => return Err(format!("unknown annotation key `{key}`")),
            }
        }
    }
    Ok(())
}

fn parse_length(value: &str) -> Result<LengthAnn, String> {
    if value == "runtime" {
        return Ok(LengthAnn::Runtime);
    }
    if let Some(n) = value
        .strip_prefix("static(")
        .and_then(|v| v.strip_suffix(')'))
    {
        let n: usize = n.parse().map_err(|_| format!("bad static length `{n}`"))?;
        return Ok(LengthAnn::Static(n));
    }
    if let Some(p) = value
        .strip_prefix("param(")
        .and_then(|v| v.strip_suffix(')'))
    {
        if p.is_empty() {
            return Err("length=param(..) needs a parameter name".into());
        }
        return Ok(LengthAnn::Param(p.to_string()));
    }
    Err(format!("bad length `{value}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Decl, Field, Lang, Param, Stype};

    fn fitter_universe() -> Universe {
        let mut u = Universe::new();
        u.insert(Decl::new(
            "point",
            Lang::C,
            Stype::array_fixed(Stype::f32(), 2),
        ))
        .unwrap();
        u.insert(Decl::new(
            "fitter",
            Lang::C,
            Stype::function(
                vec![
                    Param::new("pts", Stype::array_indefinite(Stype::named("point"))),
                    Param::new("count", Stype::i32()),
                    Param::new("start", Stype::pointer(Stype::named("point"))),
                    Param::new("end", Stype::pointer(Stype::named("point"))),
                ],
                Stype::void(),
            ),
        ))
        .unwrap();
        u.insert(Decl::new(
            "Line",
            Lang::Java,
            Stype::class(
                vec![
                    Field::new("start", Stype::pointer(Stype::named("Point"))),
                    Field::new("end", Stype::pointer(Stype::named("Point"))),
                ],
                vec![],
            ),
        ))
        .unwrap();
        u
    }

    #[test]
    fn fitter_script_applies() {
        let mut u = fitter_universe();
        let n = apply_script(
            &mut u,
            r#"
            # fitter annotations (paper 3.4)
            annotate fitter.param(pts) length=param(count)
            annotate fitter.param(start) direction=out
            annotate fitter.param(end) direction=out
            annotate Line.field(start) non-null no-alias
            annotate Line.field(end) non-null no-alias
            "#,
        )
        .unwrap();
        assert_eq!(n, 5);
        let fitter = u.get("fitter").unwrap();
        let crate::ast::SNode::Function(sig) = &fitter.ty.node else {
            panic!()
        };
        assert_eq!(
            sig.param("pts").unwrap().ty.ann.length,
            Some(LengthAnn::Param("count".into()))
        );
        assert_eq!(
            sig.param("start").unwrap().ty.ann.direction,
            Some(Direction::Out)
        );
        let line = u.get("Line").unwrap();
        let crate::ast::SNode::Class { fields, .. } = &line.ty.node else {
            panic!()
        };
        assert!(fields[0].ty.ann.non_null && fields[0].ty.ann.no_alias);
    }

    #[test]
    fn all_value_ops_parse() {
        let mut u = Universe::new();
        u.insert(Decl::new("T", Lang::C, Stype::i32())).unwrap();
        apply_script(&mut u, "annotate T range=0..100").unwrap();
        assert_eq!(
            u.get("T").unwrap().ty.ann.int_range,
            Some(IntRange::new(0, 100))
        );
        apply_script(&mut u, "annotate T repertoire=unicode").unwrap();
        apply_script(&mut u, "annotate T repertoire=custom(EBCDIC)").unwrap();
        assert_eq!(
            u.get("T").unwrap().ty.ann.repertoire,
            Some(Repertoire::Custom("EBCDIC".into()))
        );
        apply_script(&mut u, "annotate T precision=double").unwrap();
        apply_script(&mut u, "annotate T element=Point").unwrap();
        apply_script(&mut u, "annotate T length=static(4)").unwrap();
        assert_eq!(
            u.get("T").unwrap().ty.ann.length,
            Some(LengthAnn::Static(4))
        );
        apply_script(&mut u, "annotate T length=runtime").unwrap();
        apply_script(&mut u, "annotate T by-value as-integer string").unwrap();
        let ann = &u.get("T").unwrap().ty.ann;
        assert!(ann.as_integer && ann.is_string);
        assert_eq!(ann.pass_mode, Some(PassMode::ByValue));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let mut u = fitter_universe();
        let err = apply_script(&mut u, "\n\nannotate fitter.param(pts) bogus-op").unwrap_err();
        assert_eq!(err.to_string(), "line 3: unknown annotation `bogus-op`");

        let err = apply_script(&mut u, "annotate missing.field(x) non-null").unwrap_err();
        assert!(matches!(err, ScriptError::Selector(1, _)));

        let err = apply_script(&mut u, "not-a-statement").unwrap_err();
        assert!(err.to_string().contains("expected `annotate`"));

        let err = apply_script(&mut u, "annotate fitter.param(pts)").unwrap_err();
        assert!(err.to_string().contains("missing annotation operations"));

        let err = apply_script(&mut u, "annotate fitter.param(pts) range=9..1").unwrap_err();
        assert!(err.to_string().contains("empty range"));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let mut u = fitter_universe();
        let n = apply_script(&mut u, "# nothing\n\n// also nothing\n").unwrap();
        assert_eq!(n, 0);
    }
}
