//! Selectors: textual paths addressing parts of a declaration.
//!
//! The paper's GUI lets the programmer click any part of a declaration to
//! annotate it (Fig. 7). The programmatic equivalent is a selector path:
//!
//! ```text
//! fitter.param(pts)              — a parameter of a function
//! Line.field(start)              — a field of a class/struct
//! Stack.method(push).param(v)    — a parameter of a method
//! Stack.method(pop).ret          — a method's return type
//! Matrix.elem                    — an array/sequence element type
//! Node.field(next).pointee       — a pointer's referent
//! Shape.arm(circle)              — a union arm
//! ```

use std::fmt;

use crate::ast::{SNode, Signature, Stype, Universe};

/// One step of a selector path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Seg {
    /// `field(name)` — a struct/union/class field.
    Field(String),
    /// `param(name)` — a function/method parameter.
    Param(String),
    /// `method(name)` — a class/interface method.
    Method(String),
    /// `ret` — the return type of a function/method.
    Ret,
    /// `elem` — the element type of an array or sequence.
    Elem,
    /// `pointee` — the referent of a pointer.
    Pointee,
    /// `arm(name)` — a union arm.
    Arm(String),
}

impl fmt::Display for Seg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Seg::Field(n) => write!(f, "field({n})"),
            Seg::Param(n) => write!(f, "param({n})"),
            Seg::Method(n) => write!(f, "method({n})"),
            Seg::Ret => write!(f, "ret"),
            Seg::Elem => write!(f, "elem"),
            Seg::Pointee => write!(f, "pointee"),
            Seg::Arm(n) => write!(f, "arm({n})"),
        }
    }
}

/// A parsed selector: a declaration name plus a path of segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selector {
    /// The declaration the path starts at.
    pub decl: String,
    /// The navigation segments, outermost first.
    pub segs: Vec<Seg>,
}

/// Errors from parsing or resolving selectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectorError {
    /// The selector text is malformed.
    Parse(String),
    /// The declaration is not in the universe.
    UnknownDecl(String),
    /// A segment does not apply to the node it reached.
    BadPath {
        /// The selector being resolved.
        selector: String,
        /// Which segment failed.
        segment: String,
        /// Why.
        reason: String,
    },
}

impl fmt::Display for SelectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectorError::Parse(m) => write!(f, "selector parse error: {m}"),
            SelectorError::UnknownDecl(n) => write!(f, "unknown declaration `{n}`"),
            SelectorError::BadPath {
                selector,
                segment,
                reason,
            } => {
                write!(f, "cannot resolve `{segment}` in `{selector}`: {reason}")
            }
        }
    }
}

impl std::error::Error for SelectorError {}

impl Selector {
    /// Parses a selector from its textual form.
    ///
    /// # Errors
    ///
    /// Returns [`SelectorError::Parse`] on malformed input.
    ///
    /// ```
    /// use mockingbird_stype::selector::{Selector, Seg};
    /// let s = Selector::parse("fitter.param(pts)")?;
    /// assert_eq!(s.decl, "fitter");
    /// assert_eq!(s.segs, vec![Seg::Param("pts".into())]);
    /// # Ok::<(), mockingbird_stype::selector::SelectorError>(())
    /// ```
    pub fn parse(text: &str) -> Result<Self, SelectorError> {
        let text = text.trim();
        if text.is_empty() {
            return Err(SelectorError::Parse("empty selector".into()));
        }
        let mut parts = split_path(text);
        let decl = parts.remove(0);
        if decl.is_empty() {
            return Err(SelectorError::Parse("empty declaration name".into()));
        }
        if decl.contains('(') || decl.contains(')') {
            return Err(SelectorError::Parse(format!(
                "unknown segment in declaration position: `{decl}`"
            )));
        }
        let mut segs = Vec::new();
        for p in parts {
            segs.push(parse_seg(&p)?);
        }
        Ok(Selector { decl, segs })
    }

    /// Resolves the selector to the addressed [`Stype`] within `uni`,
    /// returning a mutable reference (annotations are applied in place).
    ///
    /// # Errors
    ///
    /// Returns [`SelectorError::UnknownDecl`] or
    /// [`SelectorError::BadPath`] when the path cannot be followed.
    pub fn resolve_mut<'u>(&self, uni: &'u mut Universe) -> Result<&'u mut Stype, SelectorError> {
        let full = self.to_string();
        let decl = uni
            .get_mut(&self.decl)
            .ok_or_else(|| SelectorError::UnknownDecl(self.decl.clone()))?;
        let mut cursor = Cursor::Type(&mut decl.ty);
        for seg in &self.segs {
            cursor = step(cursor, seg, &full)?;
        }
        match cursor {
            Cursor::Type(t) => Ok(t),
            Cursor::Sig(_) => Err(SelectorError::BadPath {
                selector: full,
                segment: "(end)".into(),
                reason: "selector ends at a method, not a type; add .param(..) or .ret".into(),
            }),
        }
    }
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.decl)?;
        for s in &self.segs {
            write!(f, ".{s}")?;
        }
        Ok(())
    }
}

fn split_path(text: &str) -> Vec<String> {
    // Split on '.' but not inside parentheses (names may be qualified
    // like java.util.Vector only in the decl position — decl names with
    // dots must be written with the segments absent or quoted; we accept
    // dotted decl names by treating leading parts with no '(' and no
    // known segment keyword as part of the name).
    let mut parts: Vec<String> = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for ch in text.chars() {
        match ch {
            '(' => {
                depth += 1;
                cur.push(ch);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            '.' if depth == 0 => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(ch),
        }
    }
    parts.push(cur);
    // Re-join leading parts that are not segment keywords: supports
    // dotted declaration names ("java.util.Vector").
    let is_seg = |s: &str| {
        s == "ret"
            || s == "elem"
            || s == "pointee"
            || s.starts_with("field(")
            || s.starts_with("param(")
            || s.starts_with("method(")
            || s.starts_with("arm(")
    };
    let first_seg = parts.iter().position(|p| is_seg(p)).unwrap_or(parts.len());
    let decl = parts[..first_seg].join(".");
    let mut out = vec![decl];
    out.extend(parts[first_seg..].iter().cloned());
    out
}

fn parse_seg(p: &str) -> Result<Seg, SelectorError> {
    let named = |prefix: &str| -> Option<String> {
        p.strip_prefix(prefix)
            .and_then(|rest| rest.strip_suffix(')'))
            .map(|s| s.to_string())
    };
    match p {
        "ret" => Ok(Seg::Ret),
        "elem" => Ok(Seg::Elem),
        "pointee" => Ok(Seg::Pointee),
        _ => {
            if let Some(n) = named("field(") {
                Ok(Seg::Field(n))
            } else if let Some(n) = named("param(") {
                Ok(Seg::Param(n))
            } else if let Some(n) = named("method(") {
                Ok(Seg::Method(n))
            } else if let Some(n) = named("arm(") {
                Ok(Seg::Arm(n))
            } else {
                Err(SelectorError::Parse(format!("unknown segment `{p}`")))
            }
        }
    }
}

enum Cursor<'a> {
    Type(&'a mut Stype),
    Sig(&'a mut Signature),
}

fn step<'a>(cursor: Cursor<'a>, seg: &Seg, full: &str) -> Result<Cursor<'a>, SelectorError> {
    let bad = |segment: &Seg, reason: &str| SelectorError::BadPath {
        selector: full.to_string(),
        segment: segment.to_string(),
        reason: reason.to_string(),
    };
    match cursor {
        Cursor::Sig(sig) => match seg {
            Seg::Param(name) => sig
                .param_mut(name)
                .map(|p| Cursor::Type(&mut p.ty))
                .ok_or_else(|| bad(seg, "no such parameter")),
            Seg::Ret => Ok(Cursor::Type(&mut sig.ret)),
            other => Err(bad(other, "only param(..)/ret apply to a method")),
        },
        Cursor::Type(ty) => match (&mut ty.node, seg) {
            (SNode::Struct(fields), Seg::Field(name))
            | (SNode::Class { fields, .. }, Seg::Field(name)) => fields
                .iter_mut()
                .find(|f| f.name == *name)
                .map(|f| Cursor::Type(&mut f.ty))
                .ok_or_else(|| bad(seg, "no such field")),
            (SNode::Union(arms), Seg::Arm(name)) => arms
                .iter_mut()
                .find(|f| f.name == *name)
                .map(|f| Cursor::Type(&mut f.ty))
                .ok_or_else(|| bad(seg, "no such arm")),
            (SNode::Class { methods, .. }, Seg::Method(name))
            | (SNode::Interface { methods, .. }, Seg::Method(name)) => methods
                .iter_mut()
                .find(|m| m.name == *name)
                .map(|m| Cursor::Sig(&mut m.sig))
                .ok_or_else(|| bad(seg, "no such method")),
            (SNode::Function(sig), Seg::Param(name)) => sig
                .param_mut(name)
                .map(|p| Cursor::Type(&mut p.ty))
                .ok_or_else(|| bad(seg, "no such parameter")),
            (SNode::Function(sig), Seg::Ret) => Ok(Cursor::Type(&mut sig.ret)),
            (SNode::Array { elem, .. }, Seg::Elem) => Ok(Cursor::Type(elem)),
            (SNode::Sequence(elem), Seg::Elem) => Ok(Cursor::Type(elem)),
            (SNode::Pointer(target), Seg::Pointee) => Ok(Cursor::Type(target)),
            // Convenience: elem also traverses pointers-used-as-arrays.
            (SNode::Pointer(target), Seg::Elem) => Ok(Cursor::Type(target)),
            (_, seg) => Err(bad(seg, "segment does not apply to this node")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Decl, Field, Lang, Method, Param};

    fn sample_universe() -> Universe {
        let mut u = Universe::new();
        u.insert(Decl::new(
            "Line",
            Lang::Java,
            Stype::class(
                vec![
                    Field::new("start", Stype::pointer(Stype::named("Point"))),
                    Field::new("end", Stype::pointer(Stype::named("Point"))),
                ],
                vec![],
            ),
        ))
        .unwrap();
        u.insert(Decl::new(
            "fitter",
            Lang::C,
            Stype::function(
                vec![
                    Param::new("pts", Stype::array_indefinite(Stype::named("point"))),
                    Param::new("count", Stype::i32()),
                ],
                Stype::void(),
            ),
        ))
        .unwrap();
        u.insert(Decl::new(
            "Stack",
            Lang::Java,
            Stype::interface(vec![Method::new(
                "push",
                Signature::new(vec![Param::new("v", Stype::i32())], Stype::void()),
            )]),
        ))
        .unwrap();
        u
    }

    #[test]
    fn parse_and_display_round_trip() {
        for text in [
            "fitter.param(pts)",
            "Line.field(start)",
            "Stack.method(push).param(v)",
            "Stack.method(push).ret",
            "M.elem",
            "N.field(next).pointee",
            "U.arm(circle)",
        ] {
            let s = Selector::parse(text).unwrap();
            assert_eq!(s.to_string(), text);
        }
    }

    #[test]
    fn dotted_decl_names_parse() {
        let s = Selector::parse("java.util.Vector.field(size)").unwrap();
        assert_eq!(s.decl, "java.util.Vector");
        assert_eq!(s.segs.len(), 1);
    }

    #[test]
    fn resolve_field_and_annotate() {
        let mut u = sample_universe();
        let sel = Selector::parse("Line.field(start)").unwrap();
        let ty = sel.resolve_mut(&mut u).unwrap();
        ty.ann.non_null = true;
        // Verify via fresh resolution.
        let ty2 = Selector::parse("Line.field(start)")
            .unwrap()
            .resolve_mut(&mut u)
            .unwrap();
        assert!(ty2.ann.non_null);
    }

    #[test]
    fn resolve_param_and_method() {
        let mut u = sample_universe();
        assert!(Selector::parse("fitter.param(pts)")
            .unwrap()
            .resolve_mut(&mut u)
            .is_ok());
        assert!(Selector::parse("Stack.method(push).param(v)")
            .unwrap()
            .resolve_mut(&mut u)
            .is_ok());
        assert!(Selector::parse("Stack.method(push).ret")
            .unwrap()
            .resolve_mut(&mut u)
            .is_ok());
    }

    #[test]
    fn errors_are_descriptive() {
        let mut u = sample_universe();
        let e = Selector::parse("Nope.field(x)")
            .unwrap()
            .resolve_mut(&mut u)
            .unwrap_err();
        assert!(matches!(e, SelectorError::UnknownDecl(_)));

        let e = Selector::parse("Line.field(middle)")
            .unwrap()
            .resolve_mut(&mut u)
            .unwrap_err();
        assert!(e.to_string().contains("no such field"));

        let e = Selector::parse("Line.param(x)")
            .unwrap()
            .resolve_mut(&mut u)
            .unwrap_err();
        assert!(e.to_string().contains("does not apply"));

        let e = Selector::parse("Stack.method(push)")
            .unwrap()
            .resolve_mut(&mut u)
            .unwrap_err();
        assert!(e.to_string().contains("ends at a method"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Selector::parse("").is_err());
        assert!(Selector::parse("X.bogus(1)").is_err());
    }
}
