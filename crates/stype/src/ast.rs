//! The language-neutral declaration AST.
//!
//! Every frontend (C/C++, Java class files or source, CORBA IDL) parses
//! declarations into this representation. Each node carries an [`Ann`]
//! annotation slot; a [`Universe`] holds the set of named declarations
//! loaded into a session (the left-hand panel of the paper's Fig. 7).

use std::collections::HashMap;
use std::fmt;

use crate::ann::Ann;

/// The source language of a declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lang {
    /// C declarations.
    C,
    /// C++ declarations.
    Cxx,
    /// Java declarations (from `.class` files or source).
    Java,
    /// CORBA IDL declarations.
    Idl,
}

impl fmt::Display for Lang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lang::C => write!(f, "C"),
            Lang::Cxx => write!(f, "C++"),
            Lang::Java => write!(f, "Java"),
            Lang::Idl => write!(f, "CORBA IDL"),
        }
    }
}

/// Language-level primitive types, annotated-translation targets of §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prim {
    /// A boolean (`bool`, Java `boolean`, IDL `boolean`).
    Bool,
    /// An 8-bit character (`char` in C, IDL `char`).
    Char8,
    /// A 16-bit character (Java `char`, `wchar_t`, IDL `wchar`).
    Char16,
    /// Signed 8-bit integer (Java `byte`, `signed char`).
    I8,
    /// Unsigned 8-bit integer (`unsigned char`, IDL `octet`).
    U8,
    /// Signed 16-bit integer (`short`).
    I16,
    /// Unsigned 16-bit integer (`unsigned short`, IDL `unsigned short`).
    U16,
    /// Signed 32-bit integer (`int`, `long` on 32-bit targets, IDL `long`).
    I32,
    /// Unsigned 32-bit integer.
    U32,
    /// Signed 64-bit integer (`long long`, Java `long`, IDL `long long`).
    I64,
    /// Unsigned 64-bit integer.
    U64,
    /// IEEE-754 binary32.
    F32,
    /// IEEE-754 binary64.
    F64,
    /// `void`.
    Void,
    /// The dynamic (Any-like) type, paper §6.
    Any,
}

/// Whether an array's size is part of its type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayLen {
    /// `float[2]` — the length is statically fixed.
    Fixed(usize),
    /// `float[]` — the length is not known until runtime.
    Indefinite,
}

/// A named field of a struct, union or class.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// The field's name.
    pub name: String,
    /// The field's type.
    pub ty: Stype,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, ty: Stype) -> Self {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// A named parameter of a function or method.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// The parameter's name.
    pub name: String,
    /// The parameter's type (direction annotations go on `ty.ann`).
    pub ty: Stype,
}

impl Param {
    /// Creates a parameter.
    pub fn new(name: impl Into<String>, ty: Stype) -> Self {
        Param {
            name: name.into(),
            ty,
        }
    }
}

/// A function or method signature.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// The return type (`Prim::Void` for none).
    pub ret: Box<Stype>,
    /// Declared exceptions (IDL `raises`, Java `throws`): each becomes
    /// an alternative of the reply Choice (paper §6's exception support).
    pub throws: Vec<Stype>,
}

impl Signature {
    /// Creates a signature with no declared exceptions.
    pub fn new(params: Vec<Param>, ret: Stype) -> Self {
        Signature {
            params,
            ret: Box::new(ret),
            throws: Vec::new(),
        }
    }

    /// Adds declared exceptions.
    pub fn with_throws(mut self, throws: Vec<Stype>) -> Self {
        self.throws = throws;
        self
    }

    /// Finds a parameter by name.
    pub fn param(&self, name: &str) -> Option<&Param> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Finds a parameter by name, mutably.
    pub fn param_mut(&mut self, name: &str) -> Option<&mut Param> {
        self.params.iter_mut().find(|p| p.name == name)
    }
}

/// A named method of a class or interface.
#[derive(Debug, Clone, PartialEq)]
pub struct Method {
    /// The method's name.
    pub name: String,
    /// The method's signature.
    pub sig: Signature,
}

impl Method {
    /// Creates a method.
    pub fn new(name: impl Into<String>, sig: Signature) -> Self {
        Method {
            name: name.into(),
            sig,
        }
    }
}

/// The node alternatives of an [`Stype`].
#[derive(Debug, Clone, PartialEq)]
pub enum SNode {
    /// A primitive type.
    Prim(Prim),
    /// A reference to a named declaration in the [`Universe`].
    Named(String),
    /// A C pointer or C++ reference.
    Pointer(Box<Stype>),
    /// An array.
    Array {
        /// Element type.
        elem: Box<Stype>,
        /// Length discipline.
        len: ArrayLen,
    },
    /// A value aggregate (`struct`, IDL `struct`).
    Struct(Vec<Field>),
    /// A tagged union (C `union` with a discipline, IDL `union`).
    Union(Vec<Field>),
    /// An enumeration with the given member names.
    Enum(Vec<String>),
    /// A class: fields plus methods, with an optional superclass name.
    Class {
        /// Instance fields in declaration order.
        fields: Vec<Field>,
        /// Public methods.
        methods: Vec<Method>,
        /// Superclass, if any (`java.util.Vector` triggers the predefined
        /// collection annotation).
        extends: Option<String>,
    },
    /// An interface: methods only.
    Interface {
        /// The interface's methods.
        methods: Vec<Method>,
        /// Extended interfaces.
        extends: Vec<String>,
    },
    /// A free function.
    Function(Signature),
    /// An ordered homogeneous collection of indefinite size
    /// (IDL `sequence`, Java `Vector`).
    Sequence(Box<Stype>),
    /// A string (Java `String`, IDL `string`): a list of characters.
    Str,
}

/// One annotated type term: an [`SNode`] plus its [`Ann`] slot.
#[derive(Debug, Clone, PartialEq)]
pub struct Stype {
    /// The syntactic node.
    pub node: SNode,
    /// Annotations attached to this node.
    pub ann: Ann,
}

impl Stype {
    /// Wraps a node with empty annotations.
    pub fn new(node: SNode) -> Self {
        Stype {
            node,
            ann: Ann::default(),
        }
    }

    /// Builder-style annotation attachment.
    pub fn with_ann(mut self, f: impl FnOnce(&mut Ann)) -> Self {
        f(&mut self.ann);
        self
    }

    /// A primitive.
    pub fn prim(p: Prim) -> Self {
        Stype::new(SNode::Prim(p))
    }

    /// `bool`.
    pub fn boolean() -> Self {
        Self::prim(Prim::Bool)
    }
    /// 8-bit `char`.
    pub fn char8() -> Self {
        Self::prim(Prim::Char8)
    }
    /// 16-bit `char`.
    pub fn char16() -> Self {
        Self::prim(Prim::Char16)
    }
    /// `i8`.
    pub fn i8() -> Self {
        Self::prim(Prim::I8)
    }
    /// `u8`.
    pub fn u8() -> Self {
        Self::prim(Prim::U8)
    }
    /// `i16`.
    pub fn i16() -> Self {
        Self::prim(Prim::I16)
    }
    /// `u16`.
    pub fn u16() -> Self {
        Self::prim(Prim::U16)
    }
    /// `i32`.
    pub fn i32() -> Self {
        Self::prim(Prim::I32)
    }
    /// `u32`.
    pub fn u32() -> Self {
        Self::prim(Prim::U32)
    }
    /// `i64`.
    pub fn i64() -> Self {
        Self::prim(Prim::I64)
    }
    /// `u64`.
    pub fn u64() -> Self {
        Self::prim(Prim::U64)
    }
    /// `f32`.
    pub fn f32() -> Self {
        Self::prim(Prim::F32)
    }
    /// `f64`.
    pub fn f64() -> Self {
        Self::prim(Prim::F64)
    }
    /// `void`.
    pub fn void() -> Self {
        Self::prim(Prim::Void)
    }
    /// The dynamic/Any type.
    pub fn any() -> Self {
        Self::prim(Prim::Any)
    }
    /// A string.
    pub fn string() -> Self {
        Stype::new(SNode::Str)
    }

    /// A reference to the named declaration.
    pub fn named(name: impl Into<String>) -> Self {
        Stype::new(SNode::Named(name.into()))
    }

    /// A pointer to `target`.
    pub fn pointer(target: Stype) -> Self {
        Stype::new(SNode::Pointer(Box::new(target)))
    }

    /// A fixed-length array.
    pub fn array_fixed(elem: Stype, len: usize) -> Self {
        Stype::new(SNode::Array {
            elem: Box::new(elem),
            len: ArrayLen::Fixed(len),
        })
    }

    /// An indefinite-length array.
    pub fn array_indefinite(elem: Stype) -> Self {
        Stype::new(SNode::Array {
            elem: Box::new(elem),
            len: ArrayLen::Indefinite,
        })
    }

    /// A struct over `fields`.
    pub fn struct_of(fields: Vec<Field>) -> Self {
        Stype::new(SNode::Struct(fields))
    }

    /// A union over `arms`.
    pub fn union_of(arms: Vec<Field>) -> Self {
        Stype::new(SNode::Union(arms))
    }

    /// An enum over `members`.
    pub fn enum_of(members: Vec<String>) -> Self {
        Stype::new(SNode::Enum(members))
    }

    /// A class.
    pub fn class(fields: Vec<Field>, methods: Vec<Method>) -> Self {
        Stype::new(SNode::Class {
            fields,
            methods,
            extends: None,
        })
    }

    /// A class extending `superclass`.
    pub fn class_extending(
        fields: Vec<Field>,
        methods: Vec<Method>,
        superclass: impl Into<String>,
    ) -> Self {
        Stype::new(SNode::Class {
            fields,
            methods,
            extends: Some(superclass.into()),
        })
    }

    /// An interface.
    pub fn interface(methods: Vec<Method>) -> Self {
        Stype::new(SNode::Interface {
            methods,
            extends: vec![],
        })
    }

    /// A free function.
    pub fn function(params: Vec<Param>, ret: Stype) -> Self {
        Stype::new(SNode::Function(Signature::new(params, ret)))
    }

    /// A sequence of `elem`.
    pub fn sequence(elem: Stype) -> Self {
        Stype::new(SNode::Sequence(Box::new(elem)))
    }
}

/// A named top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// The (possibly qualified) declaration name.
    pub name: String,
    /// Source language.
    pub lang: Lang,
    /// The declared type.
    pub ty: Stype,
    /// Optional documentation carried from the source.
    pub doc: Option<String>,
}

impl Decl {
    /// Creates a declaration.
    pub fn new(name: impl Into<String>, lang: Lang, ty: Stype) -> Self {
        Decl {
            name: name.into(),
            lang,
            ty,
            doc: None,
        }
    }
}

/// The set of declarations loaded into a session, in load order.
#[derive(Debug, Clone, Default)]
pub struct Universe {
    decls: Vec<Decl>,
    index: HashMap<String, usize>,
}

/// Error returned when inserting a declaration whose name already exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateDecl(pub String);

impl fmt::Display for DuplicateDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "declaration `{}` already loaded", self.0)
    }
}

impl std::error::Error for DuplicateDecl {}

impl Universe {
    /// Creates an empty universe.
    pub fn new() -> Self {
        Universe::default()
    }

    /// Number of declarations.
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// Whether the universe has no declarations.
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }

    /// Adds a declaration.
    ///
    /// # Errors
    ///
    /// Returns [`DuplicateDecl`] if a declaration with the same name is
    /// already present.
    pub fn insert(&mut self, decl: Decl) -> Result<(), DuplicateDecl> {
        if self.index.contains_key(&decl.name) {
            return Err(DuplicateDecl(decl.name));
        }
        self.index.insert(decl.name.clone(), self.decls.len());
        self.decls.push(decl);
        Ok(())
    }

    /// Adds or replaces a declaration, returning any previous one.
    pub fn upsert(&mut self, decl: Decl) -> Option<Decl> {
        match self.index.get(&decl.name) {
            Some(&i) => Some(std::mem::replace(&mut self.decls[i], decl)),
            None => {
                self.insert(decl).expect("name checked absent");
                None
            }
        }
    }

    /// Looks up a declaration by name.
    pub fn get(&self, name: &str) -> Option<&Decl> {
        self.index.get(name).map(|&i| &self.decls[i])
    }

    /// Looks up a declaration by name, mutably.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Decl> {
        match self.index.get(name) {
            Some(&i) => Some(&mut self.decls[i]),
            None => None,
        }
    }

    /// Iterates over declarations in load order.
    pub fn iter(&self) -> impl Iterator<Item = &Decl> {
        self.decls.iter()
    }

    /// Declaration names in load order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.decls.iter().map(|d| d.name.as_str())
    }

    /// Rebuilds the name index; called after deserialisation.
    pub(crate) fn reindex(&mut self) {
        self.index = self
            .decls
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.clone(), i))
            .collect();
    }

    /// Absorbs every declaration of `other` into `self`.
    ///
    /// # Errors
    ///
    /// Returns [`DuplicateDecl`] on the first name collision; earlier
    /// declarations remain inserted.
    pub fn absorb(&mut self, other: Universe) -> Result<(), DuplicateDecl> {
        for d in other.decls {
            self.insert(d)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_insert_get_and_duplicate() {
        let mut u = Universe::new();
        u.insert(Decl::new("Point", Lang::Java, Stype::class(vec![], vec![])))
            .unwrap();
        assert!(u.get("Point").is_some());
        assert_eq!(u.len(), 1);
        let err = u
            .insert(Decl::new("Point", Lang::C, Stype::void()))
            .unwrap_err();
        assert_eq!(err.to_string(), "declaration `Point` already loaded");
    }

    #[test]
    fn upsert_replaces() {
        let mut u = Universe::new();
        u.insert(Decl::new("T", Lang::C, Stype::i32())).unwrap();
        let old = u.upsert(Decl::new("T", Lang::C, Stype::i64()));
        assert_eq!(old.unwrap().ty, Stype::i32());
        assert_eq!(u.get("T").unwrap().ty, Stype::i64());
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn absorb_merges_and_reports_collisions() {
        let mut a = Universe::new();
        a.insert(Decl::new("A", Lang::C, Stype::i32())).unwrap();
        let mut b = Universe::new();
        b.insert(Decl::new("B", Lang::C, Stype::i32())).unwrap();
        a.absorb(b).unwrap();
        assert_eq!(a.len(), 2);

        let mut c = Universe::new();
        c.insert(Decl::new("A", Lang::Java, Stype::void())).unwrap();
        assert!(a.absorb(c).is_err());
    }

    #[test]
    fn builder_helpers_produce_expected_nodes() {
        assert!(matches!(Stype::f32().node, SNode::Prim(Prim::F32)));
        assert!(matches!(
            Stype::array_fixed(Stype::f32(), 2).node,
            SNode::Array {
                len: ArrayLen::Fixed(2),
                ..
            }
        ));
        let ptr = Stype::pointer(Stype::named("Point")).with_ann(|a| a.non_null = true);
        assert!(ptr.ann.non_null);
    }

    #[test]
    fn signature_param_lookup() {
        let sig = Signature::new(
            vec![
                Param::new("pts", Stype::i32()),
                Param::new("count", Stype::i32()),
            ],
            Stype::void(),
        );
        assert!(sig.param("count").is_some());
        assert!(sig.param("missing").is_none());
    }
}
