//! Translation of annotated Stypes into Mtypes (paper §3).
//!
//! The [`Lowerer`] walks a declaration, consulting annotations wherever
//! the mapping is ambiguous:
//!
//! - integer/character/real primitives honour range, repertoire and
//!   precision overrides (§3.1);
//! - fixed-size arrays become `Record`s, indefinite ones become the
//!   canonical recursive list (§3.2);
//! - nullable pointers become `Choice(Unit, referent)` unless annotated
//!   `non-null` (§3.2);
//! - functions become `port(Record(I, port(O)))`, with `in`/`out`/`inout`
//!   parameter directions and `length(param n)` absorption (§3.3);
//! - classes pass by value (`Record` over fields) or by reference
//!   (`port(Choice(methods))`) (§3.2–3.3);
//! - classes extending `java.util.Vector` receive the paper's predefined
//!   "ordered collection of indefinite size" treatment.

use std::collections::HashMap;
use std::fmt;

use mockingbird_mtype::{IntRange, MtypeGraph, MtypeId, RealPrecision, Repertoire};

use crate::ann::{Ann, Direction, LengthAnn, PassMode};
use crate::ast::{ArrayLen, Method, Prim, SNode, Signature, Stype, Universe};

/// The fully-qualified name of the collection root class that triggers
/// the predefined "ordered collection of indefinite size" annotation.
pub const JAVA_VECTOR: &str = "java.util.Vector";

/// Errors produced while lowering Stypes to Mtypes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// A `Named` reference does not resolve in the universe.
    UnknownDecl(String),
    /// A construct that cannot be lowered (with explanation).
    Unsupported(String),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::UnknownDecl(n) => write!(f, "unknown declaration `{n}`"),
            LowerError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
        }
    }
}

impl std::error::Error for LowerError {}

enum NamedState {
    InProgress { binder: Option<MtypeId> },
    Done(MtypeId),
}

/// Translates Stypes into Mtypes within one [`MtypeGraph`].
///
/// A single `Lowerer` may lower many declarations; named types are
/// memoised so shared structure becomes shared graph nodes, and recursive
/// declarations produce `Recursive` binders with back-edges (§3.2).
pub struct Lowerer<'u, 'g> {
    uni: &'u Universe,
    graph: &'g mut MtypeGraph,
    named: HashMap<String, NamedState>,
}

impl<'u, 'g> Lowerer<'u, 'g> {
    /// Creates a lowerer over `uni` that allocates into `graph`.
    pub fn new(uni: &'u Universe, graph: &'g mut MtypeGraph) -> Self {
        Lowerer {
            uni,
            graph,
            named: HashMap::new(),
        }
    }

    /// Seeds the memo table with an already-lowered named type (from a
    /// previous lowerer over the same graph), so repeated sessions share
    /// structure instead of re-lowering.
    pub fn preseed(&mut self, name: impl Into<String>, id: MtypeId) {
        self.named.insert(name.into(), NamedState::Done(id));
    }

    /// The completed `(name, Mtype)` memo entries, for carrying into a
    /// later lowerer via [`Lowerer::preseed`].
    pub fn done_entries(&self) -> Vec<(String, MtypeId)> {
        self.named
            .iter()
            .filter_map(|(k, v)| match v {
                NamedState::Done(id) => Some((k.clone(), *id)),
                NamedState::InProgress { .. } => None,
            })
            .collect()
    }

    /// Lowers the named declaration to its Mtype.
    ///
    /// # Errors
    ///
    /// Returns [`LowerError::UnknownDecl`] if `name` is not in the
    /// universe, or propagates any nested lowering failure.
    pub fn lower_named(&mut self, name: &str) -> Result<MtypeId, LowerError> {
        self.lower_named_with(name, &Ann::default())
    }

    /// Lowers a named declaration with use-site annotations layered over
    /// its declaration-site ones.
    pub fn lower_named_with(&mut self, name: &str, use_ann: &Ann) -> Result<MtypeId, LowerError> {
        let memoisable = use_ann.is_empty();
        if memoisable {
            match self.named.get_mut(name) {
                Some(NamedState::Done(id)) => return Ok(*id),
                Some(NamedState::InProgress { binder }) => {
                    // Recursive reference: materialise the binder on demand.
                    if let Some(b) = binder {
                        return Ok(*b);
                    }
                    let b = self.graph.recursive(|_, me| me); // placeholder body
                    self.graph.set_label(b, name.to_string());
                    if let Some(NamedState::InProgress { binder }) = self.named.get_mut(name) {
                        *binder = Some(b);
                    }
                    return Ok(b);
                }
                None => {
                    self.named
                        .insert(name.to_string(), NamedState::InProgress { binder: None });
                }
            }
        }
        let decl = self
            .uni
            .get(name)
            .ok_or_else(|| LowerError::UnknownDecl(name.to_string()))?
            .clone();
        let eff = use_ann.merge_under(&decl.ty.ann);
        let result = self.lower_node(&decl.ty.node, &eff);
        if memoisable {
            match result {
                Ok(body) => {
                    let state = self.named.remove(name);
                    let final_id = match state {
                        Some(NamedState::InProgress { binder: Some(b) }) => {
                            // A recursive reference was taken while this
                            // declaration was being lowered; tie the knot.
                            self.graph.patch_recursive(b, body);
                            b
                        }
                        _ => body,
                    };
                    if self.graph.label(final_id).is_none() {
                        self.graph.set_label(final_id, name.to_string());
                    }
                    self.named
                        .insert(name.to_string(), NamedState::Done(final_id));
                    Ok(final_id)
                }
                Err(e) => {
                    self.named.remove(name);
                    Err(e)
                }
            }
        } else {
            result
        }
    }

    /// Lowers an inline Stype term.
    pub fn lower(&mut self, ty: &Stype) -> Result<MtypeId, LowerError> {
        self.lower_with(ty, &Ann::default())
    }

    /// Lowers an inline Stype term with extra contextual annotations.
    pub fn lower_with(&mut self, ty: &Stype, ctx: &Ann) -> Result<MtypeId, LowerError> {
        let eff = ctx.merge_under(&ty.ann);
        self.lower_node(&ty.node, &eff)
    }

    fn lower_node(&mut self, node: &SNode, ann: &Ann) -> Result<MtypeId, LowerError> {
        match node {
            SNode::Prim(p) => Ok(self.lower_prim(*p, ann)),
            SNode::Named(n) => {
                let mut use_ann = ann.clone();
                // Direction/length relate to the reference site, not the
                // referent; strip them before descending.
                use_ann.direction = None;
                use_ann.length = None;
                use_ann.non_null = false;
                use_ann.no_alias = false;
                self.lower_named_with(n, &use_ann)
            }
            SNode::Pointer(target) => self.lower_pointer(target, ann),
            SNode::Array { elem, len } => {
                let effective_len = match &ann.length {
                    Some(LengthAnn::Static(n)) => ArrayLen::Fixed(*n),
                    Some(LengthAnn::Runtime) | Some(LengthAnn::Param(_)) => ArrayLen::Indefinite,
                    None => *len,
                };
                let elem_m = self.lower(elem)?;
                Ok(match effective_len {
                    ArrayLen::Fixed(n) => self.graph.record(vec![elem_m; n]),
                    ArrayLen::Indefinite => self.graph.list_of(elem_m),
                })
            }
            SNode::Struct(fields) => {
                let kids = fields
                    .iter()
                    .map(|f| self.lower(&f.ty))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(self.graph.record(kids))
            }
            SNode::Union(arms) => {
                if arms.is_empty() {
                    return Err(LowerError::Unsupported("union with no arms".into()));
                }
                let kids = arms
                    .iter()
                    .map(|f| self.lower(&f.ty))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(self.graph.choice(kids))
            }
            SNode::Enum(members) => {
                if members.is_empty() {
                    return Err(LowerError::Unsupported("enum with no members".into()));
                }
                Ok(self
                    .graph
                    .integer(IntRange::enumeration(members.len() as u64)))
            }
            SNode::Class {
                fields,
                methods,
                extends,
            } => {
                if self.is_collection_class(extends.as_deref()) {
                    return self.lower_collection(ann);
                }
                match ann.pass_mode.unwrap_or(PassMode::ByValue) {
                    PassMode::ByValue => {
                        let kids = fields
                            .iter()
                            .map(|f| self.lower(&f.ty))
                            .collect::<Result<Vec<_>, _>>()?;
                        Ok(self.graph.record(kids))
                    }
                    PassMode::ByReference => self.lower_object_reference(methods),
                }
            }
            SNode::Interface { methods, .. } => self.lower_object_reference(methods),
            SNode::Function(sig) => {
                let (inputs, reply_payload) = self.lower_signature(sig)?;
                let reply = self.graph.port(reply_payload);
                let mut inv = inputs;
                inv.push(reply);
                let inv_rec = self.graph.record(inv);
                Ok(self.graph.port(inv_rec))
            }
            SNode::Sequence(elem) => {
                let elem_m = match &ann.element {
                    Some(name) => {
                        let m = self.lower_named(name)?;
                        if ann.non_null {
                            m
                        } else {
                            self.graph.nullable(m)
                        }
                    }
                    None => self.lower(elem)?,
                };
                Ok(self.graph.list_of(elem_m))
            }
            SNode::Str => {
                let rep = ann.repertoire.clone().unwrap_or(Repertoire::Unicode);
                let ch = self.graph.character(rep);
                Ok(self.graph.list_of(ch))
            }
        }
    }

    fn lower_prim(&mut self, p: Prim, ann: &Ann) -> MtypeId {
        use Prim::*;
        match p {
            Bool => {
                let r = ann.int_range.unwrap_or_else(IntRange::boolean);
                self.graph.integer(r)
            }
            Char8 | Char16 => {
                if ann.as_integer {
                    let r = ann.int_range.unwrap_or_else(|| {
                        if p == Char8 {
                            IntRange::unsigned_bits(8)
                        } else {
                            IntRange::unsigned_bits(16)
                        }
                    });
                    self.graph.integer(r)
                } else {
                    let rep = ann.repertoire.clone().unwrap_or(if p == Char8 {
                        Repertoire::Latin1
                    } else {
                        Repertoire::Unicode
                    });
                    self.graph.character(rep)
                }
            }
            I8 | U8 | I16 | U16 | I32 | U32 | I64 | U64 => {
                if let Some(rep) = &ann.repertoire {
                    return self.graph.character(rep.clone());
                }
                let default = match p {
                    I8 => IntRange::signed_bits(8),
                    U8 => IntRange::unsigned_bits(8),
                    I16 => IntRange::signed_bits(16),
                    U16 => IntRange::unsigned_bits(16),
                    I32 => IntRange::signed_bits(32),
                    U32 => IntRange::unsigned_bits(32),
                    I64 => IntRange::signed_bits(64),
                    _ => IntRange::unsigned_bits(64),
                };
                self.graph.integer(ann.int_range.unwrap_or(default))
            }
            F32 => self
                .graph
                .real(ann.real_precision.unwrap_or(RealPrecision::SINGLE)),
            F64 => self
                .graph
                .real(ann.real_precision.unwrap_or(RealPrecision::DOUBLE)),
            Void => self.graph.unit(),
            Any => self.graph.dynamic(),
        }
    }

    fn lower_pointer(&mut self, target: &Stype, ann: &Ann) -> Result<MtypeId, LowerError> {
        if ann.is_string {
            let rep = ann.repertoire.clone().unwrap_or(Repertoire::Latin1);
            let ch = self.graph.character(rep);
            return Ok(self.graph.list_of(ch));
        }
        match &ann.length {
            Some(LengthAnn::Static(n)) => {
                let elem = self.lower(target)?;
                return Ok(self.graph.record(vec![elem; *n]));
            }
            Some(LengthAnn::Runtime) | Some(LengthAnn::Param(_)) => {
                let elem = self.lower(target)?;
                return Ok(self.graph.list_of(elem));
            }
            None => {}
        }
        let referent = self.lower(target)?;
        if ann.non_null {
            Ok(referent)
        } else {
            Ok(self.graph.nullable(referent))
        }
    }

    fn lower_collection(&mut self, ann: &Ann) -> Result<MtypeId, LowerError> {
        // Predefined annotation: "Vector is treated automatically as an
        // ordered collection of indefinite size" (paper §3.4). Without an
        // element annotation it "could contain any object type including
        // null references".
        let elem = match &ann.element {
            Some(name) => {
                let m = self.lower_named(name)?;
                if ann.non_null {
                    m
                } else {
                    self.graph.nullable(m)
                }
            }
            None => {
                let d = self.graph.dynamic();
                self.graph.nullable(d)
            }
        };
        Ok(self.graph.list_of(elem))
    }

    fn lower_object_reference(&mut self, methods: &[Method]) -> Result<MtypeId, LowerError> {
        if methods.is_empty() {
            return Err(LowerError::Unsupported(
                "object reference with no methods".into(),
            ));
        }
        let mut invocations = Vec::with_capacity(methods.len());
        for m in methods {
            let (inputs, reply_payload) = self.lower_signature(&m.sig)?;
            let reply = self.graph.port(reply_payload);
            let mut inv = inputs;
            inv.push(reply);
            invocations.push(self.graph.record(inv));
        }
        Ok(self.graph.object_reference(invocations))
    }

    /// Splits a signature into its input Mtypes and the *reply payload*
    /// Mtype: the Record of outputs, wrapped in a Choice with the
    /// declared exceptions when `throws` is non-empty (paper §6's
    /// exception support — checked failures travel in-band as reply
    /// alternatives; alternative 0 is the normal return).
    fn lower_signature(&mut self, sig: &Signature) -> Result<(Vec<MtypeId>, MtypeId), LowerError> {
        // Parameters named as length carriers are absorbed into the list
        // Mtype of the array they measure (the fitter example's `count`).
        let absorbed: Vec<&str> = sig
            .params
            .iter()
            .filter_map(|p| match &p.ty.ann.length {
                Some(LengthAnn::Param(n)) => Some(n.as_str()),
                _ => None,
            })
            .collect();

        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        for p in &sig.params {
            if absorbed.contains(&p.name.as_str()) {
                continue;
            }
            let dir = p.ty.ann.direction.unwrap_or(Direction::In);
            match dir {
                Direction::In => inputs.push(self.lower(&p.ty)?),
                Direction::Out => outputs.push(self.lower_output_param(&p.ty)?),
                Direction::InOut => {
                    inputs.push(self.lower(&p.ty)?);
                    outputs.push(self.lower_output_param(&p.ty)?);
                }
            }
        }
        if !matches!(sig.ret.node, SNode::Prim(Prim::Void)) {
            outputs.push(self.lower(&sig.ret)?);
        }
        let out_rec = self.graph.record(outputs);
        let reply_payload = if sig.throws.is_empty() {
            out_rec
        } else {
            let mut alts = vec![out_rec];
            for t in &sig.throws {
                alts.push(self.lower(t)?);
            }
            self.graph.choice(alts)
        };
        Ok((inputs, reply_payload))
    }

    /// An `out` C parameter is a pointer to the place where the callee
    /// deposits the value (paper §2); the *referent* type is the output.
    fn lower_output_param(&mut self, ty: &Stype) -> Result<MtypeId, LowerError> {
        match &ty.node {
            SNode::Pointer(target) if ty.ann.length.is_none() && !ty.ann.is_string => {
                self.lower(target)
            }
            _ => self.lower(ty),
        }
    }

    fn is_collection_class(&self, extends: Option<&str>) -> bool {
        let mut cur = extends;
        let mut hops = 0;
        while let Some(name) = cur {
            if name == JAVA_VECTOR || name == "java.util.AbstractList" {
                return true;
            }
            hops += 1;
            if hops > 64 {
                return false;
            }
            cur = match self.uni.get(name) {
                Some(decl) => match &decl.ty.node {
                    SNode::Class { extends, .. } => extends.as_deref(),
                    _ => None,
                },
                None => None,
            };
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Decl, Field, Lang, Param};
    use mockingbird_mtype::canon::fingerprint;

    fn uni_with(decls: Vec<Decl>) -> Universe {
        let mut u = Universe::new();
        for d in decls {
            u.insert(d).unwrap();
        }
        u
    }

    fn lower_ty(uni: &Universe, g: &mut MtypeGraph, ty: &Stype) -> MtypeId {
        Lowerer::new(uni, g).lower(ty).unwrap()
    }

    fn lower_decl(uni: &Universe, g: &mut MtypeGraph, name: &str) -> MtypeId {
        Lowerer::new(uni, g).lower_named(name).unwrap()
    }

    #[test]
    fn primitives_lower_with_defaults() {
        let uni = Universe::new();
        let mut g = MtypeGraph::new();
        let f = lower_ty(&uni, &mut g, &Stype::f32());
        assert_eq!(g.display(f).to_string(), "Real{24,8}");
        let mut g2 = MtypeGraph::new();
        let b = lower_ty(&uni, &mut g2, &Stype::boolean());
        assert_eq!(g2.display(b).to_string(), "Int{0..=1}");
    }

    #[test]
    fn char_vs_integer_annotations() {
        let uni = Universe::new();
        let mut g = MtypeGraph::new();
        // Default C char is a Latin-1 character.
        let c = lower_ty(&uni, &mut g, &Stype::char8());
        assert_eq!(g.display(c).to_string(), "Char{Latin-1}");
        // Annotated as-integer it becomes an Integer.
        let ci = lower_ty(
            &uni,
            &mut g,
            &Stype::char8().with_ann(|a| a.as_integer = true),
        );
        assert_eq!(g.display(ci).to_string(), "Int{0..=255}");
        // An int annotated with a repertoire becomes a Character.
        let ic = lower_ty(
            &uni,
            &mut g,
            &Stype::i32().with_ann(|a| a.repertoire = Some(Repertoire::Unicode)),
        );
        assert_eq!(g.display(ic).to_string(), "Char{Unicode}");
    }

    #[test]
    fn annotated_ranges_make_java_int_match_c_unsigned() {
        // Paper §3.1's example.
        let uni = Universe::new();
        let mut g = MtypeGraph::new();
        let range = IntRange::new(0, (1 << 31) - 1);
        let mut lw = Lowerer::new(&uni, &mut g);
        let j = lw
            .lower(&Stype::i32().with_ann(|a| a.int_range = Some(range)))
            .unwrap();
        let c = lw
            .lower(&Stype::u32().with_ann(|a| a.int_range = Some(range)))
            .unwrap();
        drop(lw);
        assert_eq!(j, c, "hash-consing proves equivalence directly");
    }

    #[test]
    fn fixed_array_is_record_indefinite_is_list() {
        let uni = Universe::new();
        let mut g = MtypeGraph::new();
        let fixed = lower_ty(&uni, &mut g, &Stype::array_fixed(Stype::f32(), 2));
        assert_eq!(
            g.display(fixed).to_string(),
            "Record(Real{24,8}, Real{24,8})"
        );
        let indef = lower_ty(&uni, &mut g, &Stype::array_indefinite(Stype::f32()));
        assert_eq!(
            g.display(indef).to_string(),
            "Rec#L(Choice(Unit, Record(Real{24,8}, #L)))"
        );
    }

    #[test]
    fn java_point_class_equals_c_point_array() {
        // Paper §3.2: "the Java class type Point (with two float fields)
        // has the same Mtype as the C type point (defined as float[2])".
        let uni = uni_with(vec![Decl::new(
            "Point",
            Lang::Java,
            Stype::class(
                vec![Field::new("x", Stype::f32()), Field::new("y", Stype::f32())],
                vec![],
            ),
        )]);
        let mut g = MtypeGraph::new();
        let mut lw = Lowerer::new(&uni, &mut g);
        let java = lw.lower_named("Point").unwrap();
        let c = lw.lower(&Stype::array_fixed(Stype::f32(), 2)).unwrap();
        drop(lw);
        assert_eq!(fingerprint(&g, java), fingerprint(&g, c));
    }

    #[test]
    fn nullable_pointer_is_choice_with_unit() {
        let uni = Universe::new();
        let mut g = MtypeGraph::new();
        let p = lower_ty(&uni, &mut g, &Stype::pointer(Stype::i32()));
        assert_eq!(
            g.display(p).to_string(),
            "Choice(Unit, Int{-2147483648..=2147483647})"
        );
        let nn = lower_ty(
            &uni,
            &mut g,
            &Stype::pointer(Stype::i32()).with_ann(|a| a.non_null = true),
        );
        assert_eq!(g.display(nn).to_string(), "Int{-2147483648..=2147483647}");
    }

    #[test]
    fn recursive_java_list_matches_figure_8() {
        // Fig. 8: class List { float car; List cdr; } with nullable cdr.
        let uni = uni_with(vec![Decl::new(
            "List",
            Lang::Java,
            Stype::class(
                vec![
                    Field::new("car", Stype::f32()),
                    Field::new(
                        "cdr",
                        Stype::pointer(Stype::named("List")).with_ann(|a| a.no_alias = true),
                    ),
                ],
                vec![],
            ),
        )]);
        let mut g = MtypeGraph::new();
        let list = lower_decl(&uni, &mut g, "List");
        assert!(g.validate().is_ok());
        // The Java list: Rec L. Record(Real, Choice(Unit, L)).
        assert_eq!(
            g.display(list).to_string(),
            "Rec#L(Record(Real{24,8}, Choice(Unit, #L)))"
        );
    }

    #[test]
    fn function_with_out_params_and_length_absorption() {
        // Fig. 2: void fitter(point pts[], int count, point *start, point *end)
        let uni = uni_with(vec![Decl::new(
            "point",
            Lang::C,
            Stype::array_fixed(Stype::f32(), 2),
        )]);
        let fitter = Stype::function(
            vec![
                Param::new(
                    "pts",
                    Stype::array_indefinite(Stype::named("point"))
                        .with_ann(|a| a.length = Some(LengthAnn::Param("count".into()))),
                ),
                Param::new("count", Stype::i32()),
                Param::new(
                    "start",
                    Stype::pointer(Stype::named("point"))
                        .with_ann(|a| a.direction = Some(Direction::Out)),
                ),
                Param::new(
                    "end",
                    Stype::pointer(Stype::named("point"))
                        .with_ann(|a| a.direction = Some(Direction::Out)),
                ),
            ],
            Stype::void(),
        );
        let mut g = MtypeGraph::new();
        let m = lower_ty(&uni, &mut g, &fitter);
        let shown = g.display(m).to_string();
        // §3.4: port(Record(L, port(Record(Real,Real), Record(Real,Real))))
        assert_eq!(
            shown,
            "port(Record(Rec#L(Choice(Unit, Record(Record(Real{24,8}, Real{24,8}), #L))), \
             port(Record(Record(Real{24,8}, Real{24,8}), Record(Real{24,8}, Real{24,8})))))"
        );
    }

    #[test]
    fn interface_lowering_produces_port_choice() {
        let uni = Universe::new();
        let iface = Stype::interface(vec![
            Method::new("get", Signature::new(vec![], Stype::i32())),
            Method::new(
                "set",
                Signature::new(vec![Param::new("v", Stype::i32())], Stype::void()),
            ),
        ]);
        let mut g = MtypeGraph::new();
        let m = lower_ty(&uni, &mut g, &iface);
        let s = g.display(m).to_string();
        assert!(s.starts_with("port(Choice(Record("), "{s}");
    }

    #[test]
    fn vector_subclass_gets_collection_treatment() {
        // PointVector extends java.util.Vector, annotated element=Point
        // non-null (paper §3.4).
        let uni = uni_with(vec![
            Decl::new(
                "Point",
                Lang::Java,
                Stype::class(
                    vec![Field::new("x", Stype::f32()), Field::new("y", Stype::f32())],
                    vec![],
                ),
            ),
            Decl::new(
                "PointVector",
                Lang::Java,
                Stype::class_extending(vec![], vec![], JAVA_VECTOR).with_ann(|a| {
                    a.element = Some("Point".into());
                    a.non_null = true;
                }),
            ),
        ]);
        let mut g = MtypeGraph::new();
        let pv = lower_decl(&uni, &mut g, "PointVector");
        assert_eq!(
            g.display(pv).to_string(),
            "Rec#L(Choice(Unit, Record(Record(Real{24,8}, Real{24,8}), #L)))"
        );
    }

    #[test]
    fn unannotated_vector_contains_nullable_anything() {
        let uni = uni_with(vec![Decl::new(
            "Bag",
            Lang::Java,
            Stype::class_extending(vec![], vec![], JAVA_VECTOR),
        )]);
        let mut g = MtypeGraph::new();
        let bag = lower_decl(&uni, &mut g, "Bag");
        let s = g.display(bag).to_string();
        assert!(s.contains("Choice(Unit, Dynamic)"), "{s}");
    }

    #[test]
    fn enum_and_union_lowering() {
        let uni = Universe::new();
        let mut g = MtypeGraph::new();
        let e = lower_ty(
            &uni,
            &mut g,
            &Stype::enum_of(vec!["A".into(), "B".into(), "C".into()]),
        );
        assert_eq!(g.display(e).to_string(), "Int{0..=2}");
        let u = lower_ty(
            &uni,
            &mut g,
            &Stype::union_of(vec![
                Field::new("i", Stype::i32()),
                Field::new("f", Stype::f32()),
            ]),
        );
        assert!(g.display(u).to_string().starts_with("Choice("));
    }

    #[test]
    fn unknown_named_decl_errors() {
        let uni = Universe::new();
        let mut g = MtypeGraph::new();
        let mut lw = Lowerer::new(&uni, &mut g);
        let err = lw.lower(&Stype::named("Nope")).unwrap_err();
        assert_eq!(err, LowerError::UnknownDecl("Nope".into()));
    }

    #[test]
    fn string_lowering() {
        let uni = Universe::new();
        let mut g = MtypeGraph::new();
        let s = lower_ty(&uni, &mut g, &Stype::string());
        assert_eq!(
            g.display(s).to_string(),
            "Rec#L(Choice(Unit, Record(Char{Unicode}, #L)))"
        );
        // char* annotated as string lowers to a Latin-1 character list.
        let cs = lower_ty(
            &uni,
            &mut g,
            &Stype::pointer(Stype::char8()).with_ann(|a| a.is_string = true),
        );
        assert_eq!(
            g.display(cs).to_string(),
            "Rec#L(Choice(Unit, Record(Char{Latin-1}, #L)))"
        );
    }

    #[test]
    fn memoised_named_types_share_nodes() {
        let uni = uni_with(vec![Decl::new(
            "Point",
            Lang::Java,
            Stype::class(
                vec![Field::new("x", Stype::f32()), Field::new("y", Stype::f32())],
                vec![],
            ),
        )]);
        let mut g = MtypeGraph::new();
        let mut lw = Lowerer::new(&uni, &mut g);
        let a = lw.lower_named("Point").unwrap();
        let b = lw.lower_named("Point").unwrap();
        assert_eq!(a, b);
    }
}
