//! Pools: multiplexed connections and reusable marshal buffers.
//!
//! A [`ConnectionPool`] owns a fixed number of slots, each lazily
//! holding a [`MultiplexedConnection`] to one server address. Calls are
//! spread round-robin across the slots; a slot whose connection died
//! (transport error, server restart) is cleared and reconnected on the
//! next call that lands on it. The pool itself implements
//! [`Connection`], so a [`RemoteRef`](crate::proxy::RemoteRef) can sit
//! directly on a pool and share it between any number of threads.
//!
//! A [`BufferPool`] recycles the `Vec<u8>` request bodies of the fused
//! marshal path: once a connection's buffers have warmed to its message
//! sizes, encode allocates nothing. [`RequestEncoder`] is the checkout
//! handle — a `CdrWriter` over a pooled buffer that returns the buffer
//! to the pool if dropped unused.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use mockingbird_values::Endian;
use mockingbird_wire::{CdrWriter, Message};

use crate::error::RuntimeError;
use crate::metrics;
use crate::options::CallOptions;
use crate::transport::{Connection, MultiplexedConnection};

/// Buffers kept per pool; overflow is simply dropped (freed).
const MAX_POOLED_BUFFERS: usize = 16;

/// Largest capacity worth retaining: an occasional giant message must
/// not pin its buffer forever.
const MAX_POOLED_CAPACITY: usize = 1 << 20;

/// A stack of reusable byte buffers for request bodies and frames.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
}

impl BufferPool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Checks out a cleared buffer, reusing a warmed one when available.
    pub fn get(&self) -> Vec<u8> {
        match self.free.lock().unwrap().pop() {
            Some(buf) => {
                metrics::global().add_pool_reuse();
                buf
            }
            None => {
                metrics::global().add_pool_miss();
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the pool (cleared, capacity kept). Oversized
    /// or surplus buffers are dropped instead of retained.
    pub fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() > MAX_POOLED_CAPACITY {
            return;
        }
        buf.clear();
        let mut free = self.free.lock().unwrap();
        if free.len() < MAX_POOLED_BUFFERS {
            free.push(buf);
        }
    }

    /// Buffers currently resting in the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().unwrap().len()
    }

    /// Checks out a [`RequestEncoder`]: a CDR writer over a pooled
    /// buffer.
    pub fn encoder(&self, endian: Endian) -> RequestEncoder<'_> {
        RequestEncoder {
            pool: self,
            writer: Some(CdrWriter::from_vec(self.get(), endian)),
        }
    }
}

/// A CDR writer checked out of a [`BufferPool`]. [`finish`] hands the
/// encoded bytes to the caller (who sends them and later [`put`]s the
/// buffer back); dropping an unfinished encoder returns the buffer to
/// the pool automatically.
///
/// [`finish`]: RequestEncoder::finish
/// [`put`]: BufferPool::put
#[derive(Debug)]
pub struct RequestEncoder<'p> {
    pool: &'p BufferPool,
    writer: Option<CdrWriter>,
}

impl RequestEncoder<'_> {
    /// The underlying CDR writer.
    pub fn writer(&mut self) -> &mut CdrWriter {
        self.writer.as_mut().expect("encoder already finished")
    }

    /// Consumes the encoder, returning the encoded bytes (the caller now
    /// owns the buffer and should return it via [`BufferPool::put`]).
    pub fn finish(mut self) -> Vec<u8> {
        self.writer
            .take()
            .expect("encoder already finished")
            .into_bytes()
    }
}

impl Drop for RequestEncoder<'_> {
    fn drop(&mut self) {
        if let Some(w) = self.writer.take() {
            self.pool.put(w.into_bytes());
        }
    }
}

/// A fixed-size pool of multiplexed connections to one address.
pub struct ConnectionPool {
    addr: SocketAddr,
    slots: Vec<Mutex<Option<Arc<MultiplexedConnection>>>>,
    next: AtomicUsize,
}

impl ConnectionPool {
    /// Connects the first slot eagerly (surfacing config errors now) and
    /// leaves the remaining `size - 1` slots to connect on first use.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Transport`] if the first connect fails.
    pub fn connect(addr: SocketAddr, size: usize) -> Result<Self, RuntimeError> {
        let pool = ConnectionPool {
            addr,
            slots: (0..size.max(1)).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(1),
        };
        *pool.slots[0].lock().unwrap() = Some(Arc::new(MultiplexedConnection::connect(addr)?));
        Ok(pool)
    }

    /// The number of slots (the maximum number of live sockets).
    pub fn size(&self) -> usize {
        self.slots.len()
    }

    /// The server address every slot connects to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Picks the next slot round-robin, reconnecting it if its
    /// connection is absent or dead.
    fn checkout(&self) -> Result<Arc<MultiplexedConnection>, RuntimeError> {
        let idx = self.next.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        let mut slot = self.slots[idx].lock().unwrap();
        if let Some(conn) = slot.as_ref() {
            if conn.is_alive() {
                return Ok(conn.clone());
            }
            *slot = None;
        }
        let conn = Arc::new(MultiplexedConnection::connect(self.addr)?);
        *slot = Some(conn.clone());
        Ok(conn)
    }

    /// Clears whichever slot holds `conn`, so the next call through it
    /// reconnects.
    fn invalidate(&self, conn: &Arc<MultiplexedConnection>) {
        for slot in &self.slots {
            let mut guard = slot.lock().unwrap();
            if guard.as_ref().is_some_and(|c| Arc::ptr_eq(c, conn)) {
                *guard = None;
            }
        }
    }
}

impl Connection for ConnectionPool {
    fn call(&self, msg: &Message) -> Result<Option<Message>, RuntimeError> {
        self.call_with(msg, &CallOptions::default())
    }

    fn call_with(
        &self,
        msg: &Message,
        options: &CallOptions,
    ) -> Result<Option<Message>, RuntimeError> {
        let conn = self.checkout()?;
        let outcome = conn.call_with(msg, options);
        // A transport failure means the socket is broken: clear the slot
        // so the next caller (or a retry) reconnects. Timeouts keep the
        // connection — the reader thread is still demultiplexing.
        if matches!(outcome, Err(RuntimeError::Transport(_))) {
            self.invalidate(&conn);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{Dispatcher, Servant, WireOp, WireServant};
    use crate::transport::TcpServer;
    use mockingbird_mtype::{IntRange, MtypeGraph};
    use mockingbird_values::{Endian, MValue};
    use mockingbird_wire::{CdrReader, CdrWriter, MessageKind};
    use std::collections::HashMap;

    #[test]
    fn buffer_pool_recycles_capacity() {
        let pool = BufferPool::new();
        let mut enc = pool.encoder(Endian::Little);
        enc.writer().put_bytes(&[0u8; 100]);
        let body = enc.finish();
        let cap = body.capacity();
        let ptr = body.as_ptr();
        pool.put(body);
        assert_eq!(pool.idle(), 1);
        // The next checkout gets the same storage back, cleared.
        let reused = pool.get();
        assert_eq!(reused.len(), 0);
        assert_eq!(reused.capacity(), cap);
        assert_eq!(reused.as_ptr(), ptr);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn dropped_encoder_returns_its_buffer() {
        let pool = BufferPool::new();
        {
            let mut enc = pool.encoder(Endian::Big);
            enc.writer().put_bytes(b"abandoned");
            // Dropped without finish(): the buffer must not leak away.
        }
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let pool = BufferPool::new();
        pool.put(Vec::with_capacity(MAX_POOLED_CAPACITY + 1));
        assert_eq!(pool.idle(), 0);
    }

    fn echo_server() -> (TcpServer, Arc<MtypeGraph>, mockingbird_mtype::MtypeId) {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let rec = g.record(vec![i]);
        let graph = Arc::new(g);
        let servant: Arc<dyn Servant> = Arc::new(|_: &str, v: MValue| Ok(v));
        let mut ops = HashMap::new();
        ops.insert("echo".to_string(), WireOp::new(graph.clone(), rec, rec));
        let d = Arc::new(Dispatcher::new());
        d.register(b"obj".to_vec(), WireServant::new(servant, ops));
        let server = TcpServer::bind("127.0.0.1:0", d).unwrap();
        (server, graph, rec)
    }

    fn echo(
        pool: &ConnectionPool,
        graph: &MtypeGraph,
        rec: mockingbird_mtype::MtypeId,
        n: i128,
    ) -> i128 {
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(graph, rec, &MValue::Record(vec![MValue::Int(n)]))
            .unwrap();
        let req = Message::request(
            1,
            true,
            b"obj".to_vec(),
            "echo",
            Endian::Little,
            w.into_bytes(),
        );
        let reply = pool.call(&req).unwrap().unwrap();
        let MessageKind::Reply { .. } = reply.kind else {
            panic!()
        };
        let mut r = CdrReader::new(&reply.body, reply.endian);
        let MValue::Record(items) = r.get_value(graph, rec).unwrap() else {
            panic!()
        };
        let MValue::Int(v) = items[0] else { panic!() };
        v
    }

    #[test]
    fn pool_round_robins_and_lazily_fills() {
        let (mut server, graph, rec) = echo_server();
        let pool = ConnectionPool::connect(server.addr(), 3).unwrap();
        assert_eq!(pool.size(), 3);
        for k in 0..9 {
            assert_eq!(echo(&pool, &graph, rec, k), k);
        }
        // Every slot got used and filled in.
        assert!(pool.slots.iter().all(|s| s.lock().unwrap().is_some()));
        server.shutdown();
    }

    #[test]
    fn pool_reconnects_after_server_restart() {
        let (mut server, graph, rec) = echo_server();
        let addr = server.addr();
        let pool = ConnectionPool::connect(addr, 1).unwrap();
        assert_eq!(echo(&pool, &graph, rec, 7), 7);
        server.shutdown();

        // Calls now fail with transport errors; the slot is invalidated.
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(&graph, rec, &MValue::Record(vec![MValue::Int(1)]))
            .unwrap();
        let req = Message::request(
            1,
            true,
            b"obj".to_vec(),
            "echo",
            Endian::Little,
            w.into_bytes(),
        );
        for _ in 0..20 {
            if pool.call(&req).is_err() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        // A new server on the *same* port; the pool reconnects lazily.
        let mut g2 = MtypeGraph::new();
        let i = g2.integer(IntRange::signed_bits(32));
        let rec2 = g2.record(vec![i]);
        let graph2 = Arc::new(g2);
        let servant: Arc<dyn Servant> = Arc::new(|_: &str, v: MValue| Ok(v));
        let mut ops = HashMap::new();
        ops.insert("echo".to_string(), WireOp::new(graph2.clone(), rec2, rec2));
        let d = Arc::new(Dispatcher::new());
        d.register(b"obj".to_vec(), WireServant::new(servant, ops));
        let Ok(mut server2) = TcpServer::bind(&addr.to_string(), d) else {
            // The OS may hold the port in TIME_WAIT; reconnection is
            // already proven by the slot invalidation above.
            return;
        };
        let mut ok = false;
        for _ in 0..50 {
            if echo_try(&pool, &graph, rec, 9) == Some(9) {
                ok = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(ok, "pool reconnected to the restarted server");
        server2.shutdown();
    }

    fn echo_try(
        pool: &ConnectionPool,
        graph: &MtypeGraph,
        rec: mockingbird_mtype::MtypeId,
        n: i128,
    ) -> Option<i128> {
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(graph, rec, &MValue::Record(vec![MValue::Int(n)]))
            .ok()?;
        let req = Message::request(
            1,
            true,
            b"obj".to_vec(),
            "echo",
            Endian::Little,
            w.into_bytes(),
        );
        let reply = pool.call(&req).ok()??;
        let mut r = CdrReader::new(&reply.body, reply.endian);
        let MValue::Record(items) = r.get_value(graph, rec).ok()? else {
            return None;
        };
        let MValue::Int(v) = items[0] else {
            return None;
        };
        Some(v)
    }
}
