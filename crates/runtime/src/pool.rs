//! A pool of multiplexed connections.
//!
//! A [`ConnectionPool`] owns a fixed number of slots, each lazily
//! holding a [`MultiplexedConnection`] to one server address. Calls are
//! spread round-robin across the slots; a slot whose connection died
//! (transport error, server restart) is cleared and reconnected on the
//! next call that lands on it. The pool itself implements
//! [`Connection`], so a [`RemoteRef`](crate::proxy::RemoteRef) can sit
//! directly on a pool and share it between any number of threads.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use mockingbird_wire::Message;

use crate::error::RuntimeError;
use crate::options::CallOptions;
use crate::transport::{Connection, MultiplexedConnection};

/// A fixed-size pool of multiplexed connections to one address.
pub struct ConnectionPool {
    addr: SocketAddr,
    slots: Vec<Mutex<Option<Arc<MultiplexedConnection>>>>,
    next: AtomicUsize,
}

impl ConnectionPool {
    /// Connects the first slot eagerly (surfacing config errors now) and
    /// leaves the remaining `size - 1` slots to connect on first use.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Transport`] if the first connect fails.
    pub fn connect(addr: SocketAddr, size: usize) -> Result<Self, RuntimeError> {
        let pool = ConnectionPool {
            addr,
            slots: (0..size.max(1)).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(1),
        };
        *pool.slots[0].lock().unwrap() = Some(Arc::new(MultiplexedConnection::connect(addr)?));
        Ok(pool)
    }

    /// The number of slots (the maximum number of live sockets).
    pub fn size(&self) -> usize {
        self.slots.len()
    }

    /// The server address every slot connects to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Picks the next slot round-robin, reconnecting it if its
    /// connection is absent or dead.
    fn checkout(&self) -> Result<Arc<MultiplexedConnection>, RuntimeError> {
        let idx = self.next.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        let mut slot = self.slots[idx].lock().unwrap();
        if let Some(conn) = slot.as_ref() {
            if conn.is_alive() {
                return Ok(conn.clone());
            }
            *slot = None;
        }
        let conn = Arc::new(MultiplexedConnection::connect(self.addr)?);
        *slot = Some(conn.clone());
        Ok(conn)
    }

    /// Clears whichever slot holds `conn`, so the next call through it
    /// reconnects.
    fn invalidate(&self, conn: &Arc<MultiplexedConnection>) {
        for slot in &self.slots {
            let mut guard = slot.lock().unwrap();
            if guard.as_ref().is_some_and(|c| Arc::ptr_eq(c, conn)) {
                *guard = None;
            }
        }
    }
}

impl Connection for ConnectionPool {
    fn call(&self, msg: &Message) -> Result<Option<Message>, RuntimeError> {
        self.call_with(msg, &CallOptions::default())
    }

    fn call_with(
        &self,
        msg: &Message,
        options: &CallOptions,
    ) -> Result<Option<Message>, RuntimeError> {
        let conn = self.checkout()?;
        let outcome = conn.call_with(msg, options);
        // A transport failure means the socket is broken: clear the slot
        // so the next caller (or a retry) reconnects. Timeouts keep the
        // connection — the reader thread is still demultiplexing.
        if matches!(outcome, Err(RuntimeError::Transport(_))) {
            self.invalidate(&conn);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{Dispatcher, Servant, WireOp, WireServant};
    use crate::transport::TcpServer;
    use mockingbird_mtype::{IntRange, MtypeGraph};
    use mockingbird_values::{Endian, MValue};
    use mockingbird_wire::{CdrReader, CdrWriter, MessageKind};
    use std::collections::HashMap;

    fn echo_server() -> (TcpServer, Arc<MtypeGraph>, mockingbird_mtype::MtypeId) {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let rec = g.record(vec![i]);
        let graph = Arc::new(g);
        let servant: Arc<dyn Servant> = Arc::new(|_: &str, v: MValue| Ok(v));
        let mut ops = HashMap::new();
        ops.insert("echo".to_string(), WireOp::new(graph.clone(), rec, rec));
        let d = Arc::new(Dispatcher::new());
        d.register(b"obj".to_vec(), WireServant::new(servant, ops));
        let server = TcpServer::bind("127.0.0.1:0", d).unwrap();
        (server, graph, rec)
    }

    fn echo(
        pool: &ConnectionPool,
        graph: &MtypeGraph,
        rec: mockingbird_mtype::MtypeId,
        n: i128,
    ) -> i128 {
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(graph, rec, &MValue::Record(vec![MValue::Int(n)]))
            .unwrap();
        let req = Message::request(
            1,
            true,
            b"obj".to_vec(),
            "echo",
            Endian::Little,
            w.into_bytes(),
        );
        let reply = pool.call(&req).unwrap().unwrap();
        let MessageKind::Reply { .. } = reply.kind else {
            panic!()
        };
        let mut r = CdrReader::new(&reply.body, reply.endian);
        let MValue::Record(items) = r.get_value(graph, rec).unwrap() else {
            panic!()
        };
        let MValue::Int(v) = items[0] else { panic!() };
        v
    }

    #[test]
    fn pool_round_robins_and_lazily_fills() {
        let (mut server, graph, rec) = echo_server();
        let pool = ConnectionPool::connect(server.addr(), 3).unwrap();
        assert_eq!(pool.size(), 3);
        for k in 0..9 {
            assert_eq!(echo(&pool, &graph, rec, k), k);
        }
        // Every slot got used and filled in.
        assert!(pool.slots.iter().all(|s| s.lock().unwrap().is_some()));
        server.shutdown();
    }

    #[test]
    fn pool_reconnects_after_server_restart() {
        let (mut server, graph, rec) = echo_server();
        let addr = server.addr();
        let pool = ConnectionPool::connect(addr, 1).unwrap();
        assert_eq!(echo(&pool, &graph, rec, 7), 7);
        server.shutdown();

        // Calls now fail with transport errors; the slot is invalidated.
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(&graph, rec, &MValue::Record(vec![MValue::Int(1)]))
            .unwrap();
        let req = Message::request(
            1,
            true,
            b"obj".to_vec(),
            "echo",
            Endian::Little,
            w.into_bytes(),
        );
        for _ in 0..20 {
            if pool.call(&req).is_err() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        // A new server on the *same* port; the pool reconnects lazily.
        let mut g2 = MtypeGraph::new();
        let i = g2.integer(IntRange::signed_bits(32));
        let rec2 = g2.record(vec![i]);
        let graph2 = Arc::new(g2);
        let servant: Arc<dyn Servant> = Arc::new(|_: &str, v: MValue| Ok(v));
        let mut ops = HashMap::new();
        ops.insert("echo".to_string(), WireOp::new(graph2.clone(), rec2, rec2));
        let d = Arc::new(Dispatcher::new());
        d.register(b"obj".to_vec(), WireServant::new(servant, ops));
        let Ok(mut server2) = TcpServer::bind(&addr.to_string(), d) else {
            // The OS may hold the port in TIME_WAIT; reconnection is
            // already proven by the slot invalidation above.
            return;
        };
        let mut ok = false;
        for _ in 0..50 {
            if echo_try(&pool, &graph, rec, 9) == Some(9) {
                ok = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(ok, "pool reconnected to the restarted server");
        server2.shutdown();
    }

    fn echo_try(
        pool: &ConnectionPool,
        graph: &MtypeGraph,
        rec: mockingbird_mtype::MtypeId,
        n: i128,
    ) -> Option<i128> {
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(graph, rec, &MValue::Record(vec![MValue::Int(n)]))
            .ok()?;
        let req = Message::request(
            1,
            true,
            b"obj".to_vec(),
            "echo",
            Endian::Little,
            w.into_bytes(),
        );
        let reply = pool.call(&req).ok()??;
        let mut r = CdrReader::new(&reply.body, reply.endian);
        let MValue::Record(items) = r.get_value(graph, rec).ok()? else {
            return None;
        };
        let MValue::Int(v) = items[0] else {
            return None;
        };
        Some(v)
    }
}
