//! Pools: supervised connections and reusable marshal buffers.
//!
//! A [`ConnectionPool`] owns a *dynamic set* of endpoints (server
//! addresses), each with its own connection slots and its own
//! [`CircuitBreaker`]. The set is fed by a
//! [`Resolver`](crate::resolver::Resolver): whenever the resolver's
//! version moves the pool re-resolves, creating endpoints (and
//! breakers) for replicas that joined and retiring those that left —
//! an in-flight call may finish on a retired endpoint, but no new call
//! routes there, and dropping the last reference frees its breaker and
//! slots. A pool built from a plain address list sits on the trivial
//! [`StaticResolver`](crate::resolver::StaticResolver), whose version
//! never moves, preserving the historical fixed-endpoint behaviour.
//!
//! Calls spread round-robin across routable endpoints, skipping
//! endpoints whose breaker is open; a slot whose connection died is
//! cleared and reconnected on the next call that lands on it. An
//! endpoint whose handshake reports version skew is quarantined
//! outright — a peer compiled against different declarations cannot
//! become healthy by waiting, only by re-joining the directory as a
//! fresh endpoint. With a [`HedgePolicy`] in the call options the pool
//! launches a second attempt on a different connection when the first
//! has not answered within the hedge delay — tail latency insurance
//! for idempotent operations. The pool itself implements
//! [`Connection`], so a [`RemoteRef`](crate::proxy::RemoteRef) can sit
//! directly on a pool and share it between any number of threads.
//!
//! Connections are made by a pluggable [`Connector`], which is how the
//! chaos harness splices fault injection under a real pool, and how
//! the fingerprint handshake reaches pooled connections.
//!
//! A [`BufferPool`] recycles the `Vec<u8>` request bodies of the fused
//! marshal path: once a connection's buffers have warmed to its message
//! sizes, encode allocates nothing. [`RequestEncoder`] is the checkout
//! handle — a `CdrWriter` over a pooled buffer that returns the buffer
//! to the pool if dropped unused.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use mockingbird_obs::{SpanKind, SpanRecord};
use mockingbird_values::Endian;
use mockingbird_wire::{CdrWriter, HandshakeInfo, Message, MessageKind};

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::budget::RetryBudget;
use crate::error::RuntimeError;
use crate::metrics::MetricsRegistry;
use crate::options::{CallOptions, HedgePolicy};
use crate::resolver::{ObjectName, Resolver, StaticResolver};
use crate::sync::{LockExt, RwLockExt};
use crate::transport::{Connection, MultiplexedConnection};

/// Buffers kept per pool; overflow is simply dropped (freed).
const MAX_POOLED_BUFFERS: usize = 16;

/// Largest capacity worth retaining: an occasional giant message must
/// not pin its buffer forever.
const MAX_POOLED_CAPACITY: usize = 1 << 20;

/// A stack of reusable byte buffers for request bodies and frames.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl BufferPool {
    /// An empty pool that counts nothing.
    #[must_use]
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Counts reuses and misses in `registry` (remote references wire
    /// their buffer pool to their own registry this way).
    #[must_use]
    pub fn with_metrics(mut self, registry: &Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(Arc::clone(registry));
        self
    }

    /// Checks out a cleared buffer, reusing a warmed one when available.
    pub fn get(&self) -> Vec<u8> {
        match self.free.plock().pop() {
            Some(buf) => {
                if let Some(m) = &self.metrics {
                    m.add_pool_reuse();
                }
                buf
            }
            None => {
                if let Some(m) = &self.metrics {
                    m.add_pool_miss();
                }
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the pool (cleared, capacity kept). Oversized
    /// or surplus buffers are dropped instead of retained.
    pub fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() > MAX_POOLED_CAPACITY {
            return;
        }
        buf.clear();
        let mut free = self.free.plock();
        if free.len() < MAX_POOLED_BUFFERS {
            free.push(buf);
        }
    }

    /// Buffers currently resting in the pool.
    pub fn idle(&self) -> usize {
        self.free.plock().len()
    }

    /// Checks out a [`RequestEncoder`]: a CDR writer over a pooled
    /// buffer.
    pub fn encoder(&self, endian: Endian) -> RequestEncoder<'_> {
        RequestEncoder {
            pool: self,
            writer: Some(CdrWriter::from_vec(self.get(), endian)),
        }
    }
}

/// A CDR writer checked out of a [`BufferPool`]. [`finish`] hands the
/// encoded bytes to the caller (who sends them and later [`put`]s the
/// buffer back); dropping an unfinished encoder returns the buffer to
/// the pool automatically.
///
/// [`finish`]: RequestEncoder::finish
/// [`put`]: BufferPool::put
#[derive(Debug)]
pub struct RequestEncoder<'p> {
    pool: &'p BufferPool,
    writer: Option<CdrWriter>,
}

impl RequestEncoder<'_> {
    /// The underlying CDR writer.
    pub fn writer(&mut self) -> &mut CdrWriter {
        self.writer.as_mut().expect("encoder already finished")
    }

    /// Consumes the encoder, returning the encoded bytes (the caller now
    /// owns the buffer and should return it via [`BufferPool::put`]).
    pub fn finish(mut self) -> Vec<u8> {
        self.writer
            .take()
            .expect("encoder already finished")
            .into_bytes()
    }
}

impl Drop for RequestEncoder<'_> {
    fn drop(&mut self) {
        if let Some(w) = self.writer.take() {
            self.pool.put(w.into_bytes());
        }
    }
}

/// Opens one connection to an address. The default connector dials a
/// [`MultiplexedConnection`]; tests and the chaos harness substitute
/// their own (e.g. wrapping each connection in fault injection).
pub type Connector =
    Arc<dyn Fn(SocketAddr) -> Result<Arc<dyn Connection>, RuntimeError> + Send + Sync>;

/// Successful call latencies remembered for the hedge p95 estimate.
const LATENCY_WINDOW: usize = 128;

/// Hedge delay used by [`HedgePolicy::P95`] before any latency history
/// exists.
const DEFAULT_HEDGE_DELAY: Duration = Duration::from_millis(10);

/// One server address with its connection slots and circuit breaker.
struct Endpoint {
    addr: SocketAddr,
    slots: Vec<Mutex<Option<Arc<dyn Connection>>>>,
    /// Slot rotation, separate from the pool's endpoint rotation so a
    /// hedged second attempt always advances to a *different* endpoint.
    next: AtomicUsize,
    breaker: CircuitBreaker,
    /// The peer answered the handshake with version skew: quarantined
    /// for good. A skewed peer stays skewed; only a directory change
    /// (the replica re-joining as a fresh endpoint) clears it.
    skewed: AtomicBool,
    /// The endpoint left the resolved set. In-flight attempts holding
    /// this `Endpoint` may finish, but routing never sees it again.
    retired: AtomicBool,
}

impl Endpoint {
    fn new(addr: SocketAddr, slots: usize, breaker: CircuitBreaker) -> Arc<Self> {
        Arc::new(Endpoint {
            addr,
            slots: (0..slots).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(0),
            breaker,
            skewed: AtomicBool::new(false),
            retired: AtomicBool::new(false),
        })
    }

    fn routable(&self) -> bool {
        !self.skewed.load(Ordering::Relaxed) && !self.retired.load(Ordering::Relaxed)
    }

    fn note_failure(&self, error: &RuntimeError) {
        if matches!(error, RuntimeError::VersionSkew(_)) {
            self.skewed.store(true, Ordering::Relaxed);
        }
        self.breaker.record_failure();
    }
}

/// The pool's binding to its naming layer: which resolver feeds the
/// endpoint set, which object name it resolves, and which resolver
/// version the current set reflects.
struct Directory {
    resolver: Arc<dyn Resolver>,
    name: ObjectName,
    /// Resolver version last applied to the endpoint set (0 = never).
    synced: AtomicU64,
    /// Serialises sync application; the fast-path version check stays
    /// lock-free.
    apply: Mutex<()>,
}

/// The shared heart of a [`ConnectionPool`] (hedge workers hold their
/// own `Arc` so an attempt can outlive the caller that abandoned it).
struct PoolCore {
    endpoints: RwLock<Vec<Arc<Endpoint>>>,
    directory: Directory,
    slots: usize,
    breaker_cfg: BreakerConfig,
    next: AtomicUsize,
    connector: Connector,
    latencies: Mutex<VecDeque<Duration>>,
    metrics: Arc<MetricsRegistry>,
    /// The pool-wide token bucket bounding aggregate retry
    /// amplification: successes deposit here (in [`attempt_at`]), and
    /// every retry, hedge, or failover redial over this pool withdraws
    /// first.
    ///
    /// [`attempt_at`]: PoolCore::attempt_at
    retry_budget: Arc<RetryBudget>,
}

impl PoolCore {
    /// The current endpoint set, re-resolved first if the directory
    /// version moved since the last sync.
    fn live(&self) -> Vec<Arc<Endpoint>> {
        self.sync_if_stale();
        self.endpoints.pread().clone()
    }

    /// Applies any pending directory change: endpoints still resolved
    /// keep their slots and breaker state; joiners get a fresh endpoint
    /// (and breaker); leavers are retired — no new call routes to them,
    /// and dropping the last reference frees breaker and slots, so
    /// churn cannot leak breakers.
    fn sync_if_stale(&self) {
        let v = self.directory.resolver.version();
        if self.directory.synced.load(Ordering::Acquire) == v {
            return;
        }
        let _guard = self.directory.apply.plock();
        if self.directory.synced.load(Ordering::Acquire) == v {
            return;
        }
        let resolved = self.directory.resolver.resolve(&self.directory.name);
        self.metrics.add_mesh_resolution();
        let mut eps = self.endpoints.pwrite();
        let next: Vec<Arc<Endpoint>> = resolved
            .iter()
            .map(
                |r| match eps.iter().find(|e| e.addr == r.addr && e.routable()) {
                    Some(e) => Arc::clone(e),
                    None => Endpoint::new(
                        r.addr,
                        self.slots,
                        CircuitBreaker::with_metrics(
                            self.breaker_cfg.clone(),
                            Arc::clone(&self.metrics),
                        ),
                    ),
                },
            )
            .collect();
        for e in eps.iter() {
            if !next.iter().any(|n| Arc::ptr_eq(n, e)) {
                e.retired.store(true, Ordering::Relaxed);
            }
        }
        *eps = next;
        self.directory.synced.store(v, Ordering::Release);
    }

    /// The next routable endpoint round-robin, skipping endpoints whose
    /// breaker refuses traffic. When every breaker is open the
    /// round-robin choice is used anyway — someone has to probe, and
    /// total refusal would turn a transient outage permanent. Skewed
    /// endpoints are never probed: a peer compiled against different
    /// declarations cannot recover by waiting.
    fn pick_endpoint(&self) -> Result<Arc<Endpoint>, RuntimeError> {
        let eps = self.live();
        let routable: Vec<&Arc<Endpoint>> = eps.iter().filter(|e| e.routable()).collect();
        if routable.is_empty() {
            return Err(if eps.is_empty() {
                RuntimeError::Transport(format!(
                    "no live endpoint resolves `{}`",
                    self.directory.name
                ))
            } else {
                RuntimeError::VersionSkew(format!(
                    "every resolved replica of `{}` is version-skewed",
                    self.directory.name
                ))
            });
        }
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        for k in 0..routable.len() {
            let ep = routable[(start + k) % routable.len()];
            if ep.breaker.allow() {
                return Ok(Arc::clone(ep));
            }
        }
        Ok(Arc::clone(routable[start % routable.len()]))
    }

    /// A live connection from one of `ep`'s slots, dialing through the
    /// connector when the slot is empty or unhealthy.
    fn checkout(&self, ep: &Endpoint) -> Result<Arc<dyn Connection>, RuntimeError> {
        let idx = ep.next.fetch_add(1, Ordering::Relaxed) % ep.slots.len();
        let mut slot = ep.slots[idx].plock();
        if let Some(conn) = slot.as_ref() {
            if conn.healthy() {
                return Ok(conn.clone());
            }
            *slot = None;
        }
        match (self.connector)(ep.addr) {
            Ok(conn) => {
                *slot = Some(conn.clone());
                Ok(conn)
            }
            Err(e) => {
                // A refused dial is as much a failure as a broken call
                // (and a skewed handshake quarantines the endpoint).
                ep.note_failure(&e);
                Err(e)
            }
        }
    }

    /// One full attempt: route, check out, call, and feed the outcome
    /// back into the endpoint's breaker. Sampled requests get one
    /// client span per attempt, carrying the endpoint and the breaker
    /// state the router saw — hedged duplicates and retries each leave
    /// their own span under the same trace id.
    fn attempt(
        &self,
        msg: &Message,
        options: &CallOptions,
    ) -> Result<Option<Message>, RuntimeError> {
        let ep = self.pick_endpoint()?;
        let breaker_seen = ep.breaker.state();
        let start = Instant::now();
        let outcome = self.attempt_at(&ep, msg, options);
        let duration_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        if let Some(t) = msg
            .trace
            .filter(|t| t.sampled && self.metrics.wants_span(duration_us))
        {
            let operation = match &msg.kind {
                MessageKind::Request { operation, .. } => operation.as_str(),
                _ => "",
            };
            let mut span = SpanRecord::new(t, SpanKind::Client, operation);
            span.endpoint = ep.addr.to_string();
            span.breaker = format!("{breaker_seen:?}");
            span.start_us = self.metrics.spans().now_us().saturating_sub(duration_us);
            span.duration_us = duration_us;
            span.bytes_out = msg.body.len() as u64;
            match &outcome {
                Ok(Some(reply)) => span.bytes_in = reply.body.len() as u64,
                Ok(None) => {}
                Err(e) => span.error = Some(e.to_string()),
            }
            self.metrics.record_span(span);
        }
        outcome
    }

    fn attempt_at(
        &self,
        ep: &Endpoint,
        msg: &Message,
        options: &CallOptions,
    ) -> Result<Option<Message>, RuntimeError> {
        let conn = self.checkout(ep)?;
        let start = Instant::now();
        let outcome = conn.call_with(msg, options);
        match &outcome {
            Ok(_) => {
                ep.breaker.record_success();
                self.record_latency(start.elapsed());
                // Successful traffic refills the retry budget (~0.1
                // token per success), so steady state keeps retries
                // flowing while a fault storm drains the bucket fast.
                self.retry_budget.deposit();
            }
            // A broken socket: count it and clear the slot so the next
            // caller reconnects.
            Err(RuntimeError::Transport(_)) => {
                ep.breaker.record_failure();
                self.invalidate(ep, &conn);
            }
            // The endpoint answered late, shed, or turned out to be
            // skewed mid-stream: unhealthy (skew also quarantines).
            Err(
                e @ (RuntimeError::Timeout(_)
                | RuntimeError::Overloaded(_)
                | RuntimeError::VersionSkew(_)),
            ) => {
                ep.note_failure(e);
            }
            // Application and protocol failures say nothing about the
            // endpoint's health.
            Err(_) => {}
        }
        outcome
    }

    fn invalidate(&self, ep: &Endpoint, conn: &Arc<dyn Connection>) {
        for slot in &ep.slots {
            let mut guard = slot.plock();
            if guard.as_ref().is_some_and(|c| Arc::ptr_eq(c, conn)) {
                *guard = None;
            }
        }
    }

    fn record_latency(&self, d: Duration) {
        let mut l = self.latencies.plock();
        if l.len() == LATENCY_WINDOW {
            l.pop_front();
        }
        l.push_back(d);
    }

    /// The 95th-percentile successful-call latency, if any history.
    fn p95(&self) -> Option<Duration> {
        let l = self.latencies.plock();
        if l.is_empty() {
            return None;
        }
        let mut v: Vec<Duration> = l.iter().copied().collect();
        v.sort_unstable();
        Some(v[(v.len() * 95 / 100).min(v.len() - 1)])
    }

    /// One health sweep over the *live* endpoint set: probe endpoints
    /// whose breaker is not closed (open past cooldown, or half-open)
    /// with a fresh dial, feeding the result back into the breaker.
    /// Closed endpoints are left to regular traffic; retired and skewed
    /// endpoints are never probed — their breakers are on the way out,
    /// and sweeping them would keep dead replicas on life support.
    fn health_sweep(&self) {
        for ep in self.live() {
            if !ep.routable() {
                continue;
            }
            if ep.breaker.state() == BreakerState::Closed || !ep.breaker.allow() {
                continue;
            }
            match (self.connector)(ep.addr) {
                Ok(conn) => {
                    ep.breaker.record_success();
                    // Park the probe connection in an empty slot rather
                    // than wasting the dial.
                    for slot in &ep.slots {
                        let mut guard = slot.plock();
                        if guard.is_none() {
                            *guard = Some(conn);
                            break;
                        }
                    }
                }
                Err(e) => ep.note_failure(&e),
            }
        }
    }
}

/// Builds a [`ConnectionPool`] over one or more endpoints, or over a
/// [`Resolver`] that names them.
pub struct PoolBuilder {
    addrs: Vec<SocketAddr>,
    slots: usize,
    breaker: BreakerConfig,
    connector: Option<Connector>,
    handshake: Option<HandshakeInfo>,
    metrics: Option<Arc<MetricsRegistry>>,
    resolver: Option<(Arc<dyn Resolver>, ObjectName)>,
    retry_budget: Option<Arc<RetryBudget>>,
}

impl PoolBuilder {
    /// Connection slots per endpoint (default 2).
    #[must_use]
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slots = slots.max(1);
        self
    }

    /// Circuit-breaker tuning for every endpoint (default
    /// [`BreakerConfig::default`]; use [`BreakerConfig::disabled`] for
    /// an unsupervised baseline).
    #[must_use]
    pub fn with_breaker(mut self, cfg: BreakerConfig) -> Self {
        self.breaker = cfg;
        self
    }

    /// A custom connector (fault injection, alternative transports).
    /// Overrides [`with_handshake`](Self::with_handshake).
    #[must_use]
    pub fn with_connector(mut self, connector: Connector) -> Self {
        self.connector = Some(connector);
        self
    }

    /// Performs the fingerprint handshake with `info` on every dial the
    /// default connector makes.
    #[must_use]
    pub fn with_handshake(mut self, info: HandshakeInfo) -> Self {
        self.handshake = Some(info);
        self
    }

    /// The registry the pool (its breakers, hedging, and the
    /// connections its default connector dials) records into. Defaults
    /// to a fresh registry per pool.
    #[must_use]
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// The token bucket gating retries, hedges, and failover redials
    /// sent through this pool (default [`RetryBudget::default_for_pool`];
    /// share one bucket across pools to bound a whole client's
    /// amplification, or size it down to make exhaustion observable in
    /// tests).
    #[must_use]
    pub fn with_retry_budget(mut self, budget: Arc<RetryBudget>) -> Self {
        self.retry_budget = Some(budget);
        self
    }

    /// Feeds the pool's endpoint set from `resolver` under `name`
    /// instead of the construction-time address list: the pool
    /// re-resolves whenever the resolver's version moves, creating
    /// breakers for replicas that join and retiring those that leave.
    /// When a resolver is set the address list may be empty.
    #[must_use]
    pub fn with_resolver(mut self, resolver: Arc<dyn Resolver>, name: ObjectName) -> Self {
        self.resolver = Some((resolver, name));
        self
    }

    /// Renamed to [`with_slots`](Self::with_slots).
    #[deprecated(since = "0.1.0", note = "use `with_slots`")]
    #[must_use]
    pub fn slots(self, slots: usize) -> Self {
        self.with_slots(slots)
    }

    /// Renamed to [`with_breaker`](Self::with_breaker).
    #[deprecated(since = "0.1.0", note = "use `with_breaker`")]
    #[must_use]
    pub fn breaker(self, cfg: BreakerConfig) -> Self {
        self.with_breaker(cfg)
    }

    /// Renamed to [`with_connector`](Self::with_connector).
    #[deprecated(since = "0.1.0", note = "use `with_connector`")]
    #[must_use]
    pub fn connector(self, connector: Connector) -> Self {
        self.with_connector(connector)
    }

    /// Renamed to [`with_handshake`](Self::with_handshake).
    #[deprecated(since = "0.1.0", note = "use `with_handshake`")]
    #[must_use]
    pub fn handshake(self, info: HandshakeInfo) -> Self {
        self.with_handshake(info)
    }

    /// The pool. Connections are dialed lazily on first use.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Transport`] when neither an endpoint nor
    /// a resolver was given.
    pub fn build(self) -> Result<ConnectionPool, RuntimeError> {
        if self.addrs.is_empty() && self.resolver.is_none() {
            return Err(RuntimeError::Transport(
                "pool needs an endpoint or a resolver".into(),
            ));
        }
        let metrics = self.metrics.unwrap_or_else(MetricsRegistry::shared);
        let connector = self.connector.unwrap_or_else(|| {
            let handshake = self.handshake;
            let metrics = Arc::clone(&metrics);
            Arc::new(move |addr| {
                MultiplexedConnection::connect_with_metrics(
                    addr,
                    handshake.as_ref(),
                    Arc::clone(&metrics),
                )
                .map(|c| Arc::new(c) as Arc<dyn Connection>)
            })
        });
        let (resolver, name) = match self.resolver {
            Some((r, n)) => (r, n),
            None => (
                Arc::new(StaticResolver::new(self.addrs)) as Arc<dyn Resolver>,
                ObjectName::any(""),
            ),
        };
        let core = Arc::new(PoolCore {
            endpoints: RwLock::new(Vec::new()),
            directory: Directory {
                resolver,
                name,
                synced: AtomicU64::new(0),
                apply: Mutex::new(()),
            },
            slots: self.slots,
            breaker_cfg: self.breaker,
            next: AtomicUsize::new(0),
            connector,
            latencies: Mutex::new(VecDeque::new()),
            metrics,
            retry_budget: self
                .retry_budget
                .unwrap_or_else(|| Arc::new(RetryBudget::default_for_pool())),
        });
        core.sync_if_stale();
        Ok(ConnectionPool { core })
    }
}

/// A supervised pool of connections across a dynamic set of endpoints:
/// per-endpoint circuit breakers, breaker-aware round-robin routing,
/// lazy reconnection, resolver-driven membership, and optional hedged
/// attempts.
pub struct ConnectionPool {
    core: Arc<PoolCore>,
}

impl ConnectionPool {
    /// A builder over `addrs` with default slots and breaker tuning.
    #[must_use]
    pub fn builder(addrs: Vec<SocketAddr>) -> PoolBuilder {
        PoolBuilder {
            addrs,
            slots: 2,
            breaker: BreakerConfig::default(),
            connector: None,
            handshake: None,
            metrics: None,
            resolver: None,
            retry_budget: None,
        }
    }

    /// Connects a single-endpoint pool with `size` slots, dialing the
    /// first slot eagerly (surfacing config errors now).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Transport`] if the first connect fails.
    pub fn connect(addr: SocketAddr, size: usize) -> Result<Self, RuntimeError> {
        let pool = Self::builder(vec![addr]).with_slots(size).build()?;
        let ep = pool.core.pick_endpoint()?;
        pool.core.checkout(&ep)?;
        Ok(pool)
    }

    /// The registry this pool records breaker transitions, hedging,
    /// spans, and (through its dialed connections) transport counters
    /// into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.core.metrics
    }

    /// Total connection slots across all live endpoints.
    pub fn size(&self) -> usize {
        self.core.live().iter().map(|e| e.slots.len()).sum()
    }

    /// The first live endpoint's address (the only one for
    /// single-endpoint pools).
    ///
    /// # Panics
    ///
    /// Panics when the resolver currently resolves to nothing.
    pub fn addr(&self) -> SocketAddr {
        self.core.live()[0].addr
    }

    /// Every live endpoint address, in routing order.
    pub fn endpoints(&self) -> Vec<SocketAddr> {
        self.core.live().iter().map(|e| e.addr).collect()
    }

    /// The breaker state of live endpoint `index` (routing order).
    pub fn breaker_state(&self, index: usize) -> BreakerState {
        self.core.live()[index].breaker.state()
    }

    /// The resolver version the current endpoint set reflects.
    pub fn observed_version(&self) -> u64 {
        self.core.sync_if_stale();
        self.core.directory.synced.load(Ordering::Acquire)
    }

    /// Applies any pending directory change now (routing also does this
    /// lazily before every call; this is for callers that want the
    /// membership observation point to be explicit).
    pub fn resync(&self) {
        self.core.sync_if_stale();
    }

    /// Whether this pool's endpoint set can change after construction.
    pub fn is_dynamic(&self) -> bool {
        self.core.directory.resolver.is_dynamic()
    }

    /// Runs one health sweep now: endpoints whose breaker is open (past
    /// cooldown) or half-open are probed with a fresh dial and the
    /// breaker told the result.
    pub fn health_check(&self) {
        self.core.health_sweep();
    }

    /// Starts a background thread sweeping [`health_check`] every
    /// `interval`. The thread holds only a weak reference: it exits on
    /// the first tick after the pool is dropped.
    ///
    /// [`health_check`]: ConnectionPool::health_check
    pub fn start_health_checker(&self, interval: Duration) {
        let weak = Arc::downgrade(&self.core);
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            let Some(core) = weak.upgrade() else { break };
            core.health_sweep();
        });
    }

    /// The hedge delay `policy` implies given current latency history.
    fn hedge_delay(&self, policy: HedgePolicy) -> Duration {
        match policy {
            HedgePolicy::After(d) => d,
            HedgePolicy::P95 => self.core.p95().unwrap_or(DEFAULT_HEDGE_DELAY),
        }
    }
}

impl Connection for ConnectionPool {
    fn call(&self, msg: &Message) -> Result<Option<Message>, RuntimeError> {
        self.call_with(msg, &CallOptions::default())
    }

    fn call_with(
        &self,
        msg: &Message,
        options: &CallOptions,
    ) -> Result<Option<Message>, RuntimeError> {
        // Hedging needs a reply to race for and a second connection to
        // race on; otherwise fall through to a single attempt.
        let hedge = match options.hedge {
            Some(policy)
                if self.size() > 1
                    && matches!(
                        msg.kind,
                        MessageKind::Request {
                            response_expected: true,
                            ..
                        }
                    ) =>
            {
                Some(policy)
            }
            _ => None,
        };
        let Some(policy) = hedge else {
            return self.core.attempt(msg, options);
        };

        let delay = self.hedge_delay(policy);
        // The duplicate keeps the logical call's trace id but gets its
        // own span id, so the span log shows two racing attempts of one
        // trace rather than two unrelated calls.
        let hedge_trace = msg.trace.map(|t| t.child());
        let (tx, rx) = mpsc::channel();
        let spawn_attempt = |tag: u8| {
            let core = self.core.clone();
            let msg = if tag == 1 {
                match hedge_trace {
                    Some(t) => msg.clone().with_trace(t),
                    None => msg.clone(),
                }
            } else {
                msg.clone()
            };
            let mut opts = options.clone();
            opts.hedge = None;
            let tx = tx.clone();
            std::thread::spawn(move || {
                let _ = tx.send((tag, core.attempt(&msg, &opts)));
            });
        };
        let mark_winner = |tag: u8| {
            let winner = if tag == 1 { hedge_trace } else { msg.trace };
            if let Some(t) = winner.filter(|t| t.sampled) {
                self.core.metrics.mark_winner(t.trace_id, t.span_id);
            }
        };
        spawn_attempt(0);
        match rx.recv_timeout(delay) {
            // The primary answered (either way) within the hedge delay:
            // failures go to the retry layer, not a hedge.
            Ok((_, outcome)) => outcome,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // A hedge is a duplicate send — it amplifies offered
                // load exactly like a retry, so it buys a token from
                // the same budget. An empty bucket means no second
                // attempt: wait out the primary instead.
                if !self.core.retry_budget.try_withdraw() {
                    self.core.metrics.add_retry_budget_exhausted();
                    return match rx.recv() {
                        Ok((_, outcome)) => outcome,
                        Err(_) => Err(RuntimeError::Transport("hedge attempts vanished".into())),
                    };
                }
                self.core.metrics.add_hedge_fired();
                spawn_attempt(1);
                // A hedge that loses its race consumed no server
                // capacity worth charging for: its token goes back.
                let refund_if_lost = |winner: u8| {
                    if winner != 1 {
                        self.core.retry_budget.refund();
                    }
                };
                let first = rx
                    .recv()
                    .map_err(|_| RuntimeError::Transport("hedge attempts vanished".into()))?;
                match first {
                    (tag, Ok(reply)) => {
                        if tag == 1 {
                            self.core.metrics.add_hedge_won();
                        }
                        refund_if_lost(tag);
                        mark_winner(tag);
                        Ok(reply)
                    }
                    // First arrival failed: give the straggler its
                    // chance before reporting the failure.
                    (_, Err(first_err)) => match rx.recv() {
                        Ok((tag, Ok(reply))) => {
                            if tag == 1 {
                                self.core.metrics.add_hedge_won();
                            }
                            refund_if_lost(tag);
                            mark_winner(tag);
                            Ok(reply)
                        }
                        _ => {
                            refund_if_lost(0);
                            Err(first_err)
                        }
                    },
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(RuntimeError::Transport("hedge attempts vanished".into()))
            }
        }
    }

    fn metrics(&self) -> Option<Arc<MetricsRegistry>> {
        Some(Arc::clone(&self.core.metrics))
    }

    fn supports_failover(&self) -> bool {
        // A dynamic directory means another replica may serve the name:
        // worth re-resolving and retrying. The static path keeps the
        // historical fail-fast semantics.
        self.core.directory.resolver.is_dynamic()
    }

    fn retry_budget(&self) -> Option<Arc<RetryBudget>> {
        Some(Arc::clone(&self.core.retry_budget))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{Dispatcher, Servant, WireOp, WireServant};
    use crate::transport::{InMemoryConnection, TcpServer};
    use mockingbird_mtype::{IntRange, MtypeGraph};
    use mockingbird_values::{Endian, MValue};
    use mockingbird_wire::{CdrReader, CdrWriter, MessageKind};
    use std::collections::HashMap;

    #[test]
    fn buffer_pool_recycles_capacity() {
        let pool = BufferPool::new();
        let mut enc = pool.encoder(Endian::Little);
        enc.writer().put_bytes(&[0u8; 100]);
        let body = enc.finish();
        let cap = body.capacity();
        let ptr = body.as_ptr();
        pool.put(body);
        assert_eq!(pool.idle(), 1);
        // The next checkout gets the same storage back, cleared.
        let reused = pool.get();
        assert_eq!(reused.len(), 0);
        assert_eq!(reused.capacity(), cap);
        assert_eq!(reused.as_ptr(), ptr);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn dropped_encoder_returns_its_buffer() {
        let pool = BufferPool::new();
        {
            let mut enc = pool.encoder(Endian::Big);
            enc.writer().put_bytes(b"abandoned");
            // Dropped without finish(): the buffer must not leak away.
        }
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let pool = BufferPool::new();
        pool.put(Vec::with_capacity(MAX_POOLED_CAPACITY + 1));
        assert_eq!(pool.idle(), 0);
    }

    fn echo_server() -> (TcpServer, Arc<MtypeGraph>, mockingbird_mtype::MtypeId) {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let rec = g.record(vec![i]);
        let graph = Arc::new(g);
        let servant: Arc<dyn Servant> = Arc::new(|_: &str, v: MValue| Ok(v));
        let mut ops = HashMap::new();
        ops.insert("echo".to_string(), WireOp::new(graph.clone(), rec, rec));
        let d = Arc::new(Dispatcher::new());
        d.register(b"obj".to_vec(), WireServant::new(servant, ops));
        let server = TcpServer::bind("127.0.0.1:0", d).unwrap();
        (server, graph, rec)
    }

    fn echo(
        pool: &ConnectionPool,
        graph: &MtypeGraph,
        rec: mockingbird_mtype::MtypeId,
        n: i128,
    ) -> i128 {
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(graph, rec, &MValue::Record(vec![MValue::Int(n)]))
            .unwrap();
        let req = Message::request(
            1,
            true,
            b"obj".to_vec(),
            "echo",
            Endian::Little,
            w.into_bytes(),
        );
        let reply = pool.call(&req).unwrap().unwrap();
        let MessageKind::Reply { .. } = reply.kind else {
            panic!()
        };
        let mut r = CdrReader::new(&reply.body, reply.endian);
        let MValue::Record(items) = r.get_value(graph, rec).unwrap() else {
            panic!()
        };
        let MValue::Int(v) = items[0] else { panic!() };
        v
    }

    #[test]
    fn pool_round_robins_and_lazily_fills() {
        let (mut server, graph, rec) = echo_server();
        let pool = ConnectionPool::connect(server.addr(), 3).unwrap();
        assert_eq!(pool.size(), 3);
        for k in 0..9 {
            assert_eq!(echo(&pool, &graph, rec, k), k);
        }
        // Every slot got used and filled in.
        assert!(pool.core.live()[0]
            .slots
            .iter()
            .all(|s| s.plock().is_some()));
        server.shutdown();
    }

    #[test]
    fn pool_reconnects_after_server_restart() {
        let (mut server, graph, rec) = echo_server();
        let addr = server.addr();
        let pool = ConnectionPool::connect(addr, 1).unwrap();
        assert_eq!(echo(&pool, &graph, rec, 7), 7);
        server.shutdown();

        // Calls now fail with transport errors; the slot is invalidated.
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(&graph, rec, &MValue::Record(vec![MValue::Int(1)]))
            .unwrap();
        let req = Message::request(
            1,
            true,
            b"obj".to_vec(),
            "echo",
            Endian::Little,
            w.into_bytes(),
        );
        for _ in 0..20 {
            if pool.call(&req).is_err() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        // A new server on the *same* port; the pool reconnects lazily.
        let mut g2 = MtypeGraph::new();
        let i = g2.integer(IntRange::signed_bits(32));
        let rec2 = g2.record(vec![i]);
        let graph2 = Arc::new(g2);
        let servant: Arc<dyn Servant> = Arc::new(|_: &str, v: MValue| Ok(v));
        let mut ops = HashMap::new();
        ops.insert("echo".to_string(), WireOp::new(graph2.clone(), rec2, rec2));
        let d = Arc::new(Dispatcher::new());
        d.register(b"obj".to_vec(), WireServant::new(servant, ops));
        let Ok(mut server2) = TcpServer::bind(&addr.to_string(), d) else {
            // The OS may hold the port in TIME_WAIT; reconnection is
            // already proven by the slot invalidation above.
            return;
        };
        let mut ok = false;
        for _ in 0..50 {
            if echo_try(&pool, &graph, rec, 9) == Some(9) {
                ok = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(ok, "pool reconnected to the restarted server");
        server2.shutdown();
    }

    /// An in-memory echo dispatcher plus its wire types, for connector-
    /// based pool tests that need no sockets.
    fn echo_dispatcher() -> (Arc<Dispatcher>, Arc<MtypeGraph>, mockingbird_mtype::MtypeId) {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let rec = g.record(vec![i]);
        let graph = Arc::new(g);
        let servant: Arc<dyn Servant> = Arc::new(|_: &str, v: MValue| Ok(v));
        let mut ops = HashMap::new();
        ops.insert("echo".to_string(), WireOp::new(graph.clone(), rec, rec));
        let d = Arc::new(Dispatcher::new());
        d.register(b"obj".to_vec(), WireServant::new(servant, ops));
        (d, graph, rec)
    }

    fn fast_breaker() -> crate::breaker::BreakerConfig {
        crate::breaker::BreakerConfig {
            consecutive_failures: 3,
            cooldown: std::time::Duration::from_millis(10),
            half_open_successes: 2,
            ..Default::default()
        }
    }

    #[test]
    fn breaker_routes_around_a_refused_endpoint() {
        let (d, graph, rec) = echo_dispatcher();
        let dead: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let live: SocketAddr = "127.0.0.1:10".parse().unwrap();
        let connector: Connector = Arc::new(move |addr| {
            if addr == dead {
                Err(RuntimeError::Transport("dial refused".into()))
            } else {
                Ok(Arc::new(InMemoryConnection::new(d.clone())) as Arc<dyn Connection>)
            }
        });
        let pool = ConnectionPool::builder(vec![dead, live])
            .with_slots(1)
            .with_breaker(crate::breaker::BreakerConfig {
                consecutive_failures: 3,
                cooldown: std::time::Duration::from_secs(30),
                ..Default::default()
            })
            .with_connector(connector)
            .build()
            .unwrap();
        // Calls routed to the dead endpoint fail until its breaker
        // trips; tolerate those.
        let mut failures = 0;
        for k in 0..12 {
            if echo_try(&pool, &graph, rec, k).is_none() {
                failures += 1;
            }
        }
        assert!(failures >= 3, "the dead endpoint failed at least 3 dials");
        assert_eq!(pool.breaker_state(0), BreakerState::Open);
        assert_eq!(pool.breaker_state(1), BreakerState::Closed);
        // With the breaker open, routing skips the dead endpoint: every
        // call now succeeds.
        for k in 0..10 {
            assert_eq!(echo(&pool, &graph, rec, k), k);
        }
    }

    #[test]
    fn health_checks_recover_a_revived_endpoint() {
        use std::sync::atomic::AtomicBool;
        let (d, graph, rec) = echo_dispatcher();
        let alive = Arc::new(AtomicBool::new(false));
        let alive2 = alive.clone();
        let connector: Connector = Arc::new(move |_| {
            if alive2.load(Ordering::SeqCst) {
                Ok(Arc::new(InMemoryConnection::new(d.clone())) as Arc<dyn Connection>)
            } else {
                Err(RuntimeError::Transport("endpoint down".into()))
            }
        });
        let pool = ConnectionPool::builder(vec!["127.0.0.1:9".parse().unwrap()])
            .with_slots(1)
            .with_breaker(fast_breaker())
            .with_connector(connector)
            .build()
            .unwrap();
        for k in 0..3 {
            assert!(echo_try(&pool, &graph, rec, k).is_none());
        }
        assert_eq!(pool.breaker_state(0), BreakerState::Open);
        // A sweep while still down re-opens after the failed probe.
        std::thread::sleep(std::time::Duration::from_millis(15));
        pool.health_check();
        assert_eq!(pool.breaker_state(0), BreakerState::Open);
        // The endpoint comes back: two successful probes close it.
        alive.store(true, Ordering::SeqCst);
        std::thread::sleep(std::time::Duration::from_millis(15));
        pool.health_check();
        pool.health_check();
        assert_eq!(pool.breaker_state(0), BreakerState::Closed);
        assert_eq!(echo(&pool, &graph, rec, 5), 5);
    }

    /// A connection that answers after a fixed pause — a stand-in for a
    /// slow endpoint in hedging tests.
    struct SlowConnection {
        inner: InMemoryConnection,
        delay: std::time::Duration,
    }

    impl Connection for SlowConnection {
        fn call(&self, msg: &Message) -> Result<Option<Message>, RuntimeError> {
            std::thread::sleep(self.delay);
            self.inner.call(msg)
        }
    }

    #[test]
    fn hedged_call_beats_a_slow_endpoint() {
        use crate::options::HedgePolicy;
        let (d, graph, rec) = echo_dispatcher();
        let slow: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let connector: Connector = Arc::new(move |addr| {
            if addr == slow {
                Ok(Arc::new(SlowConnection {
                    inner: InMemoryConnection::new(d.clone()),
                    delay: std::time::Duration::from_millis(300),
                }) as Arc<dyn Connection>)
            } else {
                Ok(Arc::new(InMemoryConnection::new(d.clone())) as Arc<dyn Connection>)
            }
        });
        let pool = ConnectionPool::builder(vec![slow, "127.0.0.1:10".parse().unwrap()])
            .with_slots(1)
            .with_connector(connector)
            .build()
            .unwrap();
        let opts =
            CallOptions::new().with_hedge(HedgePolicy::After(std::time::Duration::from_millis(10)));
        // Force the primary attempt onto the slow endpoint: the hedge
        // must fire and win on the fast one.
        pool.core.next.store(0, Ordering::SeqCst);
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(&graph, rec, &MValue::Record(vec![MValue::Int(9)]))
            .unwrap();
        let req = Message::request(
            1,
            true,
            b"obj".to_vec(),
            "echo",
            Endian::Little,
            w.into_bytes(),
        );
        let start = std::time::Instant::now();
        let reply = pool.call_with(&req, &opts).unwrap().unwrap();
        let elapsed = start.elapsed();
        let mut r = CdrReader::new(&reply.body, reply.endian);
        let MValue::Record(items) = r.get_value(&graph, rec).unwrap() else {
            panic!()
        };
        assert_eq!(items[0], MValue::Int(9));
        assert!(
            elapsed < std::time::Duration::from_millis(200),
            "hedge should beat the 300 ms endpoint, took {elapsed:?}"
        );
    }

    /// A resolver whose answer a test can swap out, bumping the version
    /// so pools pick the change up on their next call.
    struct TestResolver {
        current: Mutex<Vec<SocketAddr>>,
        version: AtomicU64,
    }

    impl TestResolver {
        fn new(addrs: Vec<SocketAddr>) -> Self {
            TestResolver {
                current: Mutex::new(addrs),
                version: AtomicU64::new(1),
            }
        }

        fn set(&self, addrs: Vec<SocketAddr>) {
            *self.current.plock() = addrs;
            self.version.fetch_add(1, Ordering::SeqCst);
        }
    }

    impl Resolver for TestResolver {
        fn resolve(&self, _name: &ObjectName) -> Vec<crate::resolver::ResolvedEndpoint> {
            self.current
                .plock()
                .iter()
                .copied()
                .map(crate::resolver::ResolvedEndpoint::plain)
                .collect()
        }

        fn version(&self) -> u64 {
            self.version.load(Ordering::SeqCst)
        }
    }

    #[test]
    fn resolver_changes_create_and_retire_endpoints() {
        let (d, graph, rec) = echo_dispatcher();
        let connector: Connector = Arc::new(move |_| {
            Ok(Arc::new(InMemoryConnection::new(d.clone())) as Arc<dyn Connection>)
        });
        let a: SocketAddr = "127.0.0.1:11".parse().unwrap();
        let b: SocketAddr = "127.0.0.1:12".parse().unwrap();
        let resolver = Arc::new(TestResolver::new(vec![a, b]));
        let pool = ConnectionPool::builder(Vec::new())
            .with_slots(1)
            .with_connector(connector)
            .with_resolver(resolver.clone(), ObjectName::any("echo"))
            .build()
            .unwrap();
        assert!(pool.is_dynamic());
        assert_eq!(pool.endpoints(), vec![a, b]);
        assert_eq!(echo(&pool, &graph, rec, 1), 1);
        // Capture a weak handle to the endpoint about to leave: once it
        // has left, nothing may keep its breaker alive.
        let departing = Arc::downgrade(&pool.core.endpoints.pread()[1]);
        resolver.set(vec![a]);
        assert_eq!(pool.endpoints(), vec![a]);
        for k in 0..8 {
            assert_eq!(echo(&pool, &graph, rec, k), k);
        }
        assert!(
            departing.upgrade().is_none(),
            "a departed endpoint's breaker and slots are freed, not leaked"
        );
        // A rejoin arrives as a fresh endpoint with a fresh breaker.
        resolver.set(vec![a, b]);
        assert_eq!(pool.endpoints(), vec![a, b]);
        assert_eq!(pool.breaker_state(1), BreakerState::Closed);
    }

    #[test]
    fn version_skew_quarantines_an_endpoint() {
        let (d, graph, rec) = echo_dispatcher();
        let skewed: SocketAddr = "127.0.0.1:13".parse().unwrap();
        let connector: Connector = Arc::new(move |addr| {
            if addr == skewed {
                Err(RuntimeError::VersionSkew(
                    "peer compiled against different declarations".into(),
                ))
            } else {
                Ok(Arc::new(InMemoryConnection::new(d.clone())) as Arc<dyn Connection>)
            }
        });
        let pool = ConnectionPool::builder(vec![skewed, "127.0.0.1:14".parse().unwrap()])
            .with_slots(1)
            .with_connector(connector)
            .build()
            .unwrap();
        // At most the first routed call lands on the skewed endpoint;
        // after that it is quarantined for good — no breaker cooldown
        // ever routes traffic back to it.
        let mut failures = 0;
        for k in 0..10 {
            if echo_try(&pool, &graph, rec, k).is_none() {
                failures += 1;
            }
        }
        assert!(failures <= 1, "one skewed dial at most, saw {failures}");
        for k in 0..10 {
            assert_eq!(echo(&pool, &graph, rec, k), k);
        }
    }

    #[test]
    fn all_skewed_replicas_surface_version_skew() {
        let (_d, graph, rec) = echo_dispatcher();
        let connector: Connector =
            Arc::new(move |_| Err(RuntimeError::VersionSkew("skewed".into())));
        let pool = ConnectionPool::builder(vec!["127.0.0.1:15".parse().unwrap()])
            .with_slots(1)
            .with_connector(connector)
            .build()
            .unwrap();
        assert!(echo_try(&pool, &graph, rec, 1).is_none());
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(&graph, rec, &MValue::Record(vec![MValue::Int(1)]))
            .unwrap();
        let req = Message::request(
            1,
            true,
            b"obj".to_vec(),
            "echo",
            Endian::Little,
            w.into_bytes(),
        );
        assert!(matches!(pool.call(&req), Err(RuntimeError::VersionSkew(_))));
    }

    fn echo_try(
        pool: &ConnectionPool,
        graph: &MtypeGraph,
        rec: mockingbird_mtype::MtypeId,
        n: i128,
    ) -> Option<i128> {
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(graph, rec, &MValue::Record(vec![MValue::Int(n)]))
            .ok()?;
        let req = Message::request(
            1,
            true,
            b"obj".to_vec(),
            "echo",
            Endian::Little,
            w.into_bytes(),
        );
        let reply = pool.call(&req).ok()??;
        let mut r = CdrReader::new(&reply.body, reply.endian);
        let MValue::Record(items) = r.get_value(graph, rec).ok()? else {
            return None;
        };
        let MValue::Int(v) = items[0] else {
            return None;
        };
        Some(v)
    }
}
