//! Adaptive admission control: an AIMD concurrency limiter.
//!
//! A static in-flight cap is tuned for one service time; when dispatch
//! slows down (lock contention, a slow dependency, GC-like pauses) the
//! same cap admits far more work than the server can finish before the
//! callers' deadlines, and the queue fills with doomed requests. The
//! [`AimdLimiter`] replaces the constant with a limit that tracks the
//! *measured* tail: dispatch workers feed each request's sojourn time
//! (queue wait plus dispatch, so queueing delay — the first symptom of
//! overload — is visible) into a windowed histogram, and every window
//! the limit moves — one
//! additive step up while the p99 is under target, a multiplicative
//! cut (⅞) when it overshoots. TCP congestion control, applied to
//! dispatch concurrency.
//!
//! Two admission tiers give brownout-before-blackout semantics: once
//! in-flight work crosses ⅞ of the current limit, requests whose
//! caller marked them sheddable are cut (cheap traffic first); only at
//! the full limit does critical traffic shed too.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use mockingbird_obs::Histogram;

use crate::metrics::MetricsRegistry;

/// Observations per adjustment window: enough samples for a stable
/// p99 estimate, few enough that the limit reacts within tens of
/// calls.
const WINDOW: u64 = 64;

/// What the limiter says about one admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Under the (tier-appropriate) limit: dispatch it.
    Admit,
    /// At or over the limit for this tier: shed it.
    Shed,
    /// In the brownout band and the request is sheddable: shed it,
    /// counted separately so operators can see brownouts start before
    /// blackouts.
    Brownout,
}

/// An additive-increase / multiplicative-decrease concurrency limiter.
///
/// With `adaptive` off (the default server config) the limit is pinned
/// at `max` and the limiter degenerates to the historical static cap —
/// zero behaviour change, one branch per admission.
pub struct AimdLimiter {
    limit: AtomicUsize,
    min: usize,
    max: usize,
    adaptive: bool,
    target_p99_us: u64,
    window: Histogram,
    observed: AtomicU64,
}

impl std::fmt::Debug for AimdLimiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AimdLimiter")
            .field("limit", &self.current())
            .field("max", &self.max)
            .field("adaptive", &self.adaptive)
            .finish_non_exhaustive()
    }
}

impl AimdLimiter {
    /// A static limiter pinned at `max` (the historical cap).
    #[must_use]
    pub fn pinned(max: usize) -> Self {
        AimdLimiter {
            limit: AtomicUsize::new(max.max(1)),
            min: 1,
            max: max.max(1),
            adaptive: false,
            target_p99_us: u64::MAX,
            window: Histogram::new(),
            observed: AtomicU64::new(0),
        }
    }

    /// An adaptive limiter: starts at `max` (the configured ceiling)
    /// and cuts multiplicatively whenever the windowed p99 exceeds
    /// `target_p99`.
    #[must_use]
    pub fn adaptive(max: usize, target_p99: Duration) -> Self {
        AimdLimiter {
            limit: AtomicUsize::new(max.max(1)),
            min: 1,
            max: max.max(1),
            adaptive: true,
            target_p99_us: u64::try_from(target_p99.as_micros()).unwrap_or(u64::MAX),
            window: Histogram::new(),
            observed: AtomicU64::new(0),
        }
    }

    /// The current admission limit.
    #[must_use]
    pub fn current(&self) -> usize {
        self.limit.load(Ordering::Relaxed)
    }

    /// Whether this limiter adjusts (false ⇒ pinned static cap).
    #[must_use]
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }

    /// Classifies one admission attempt. `in_flight` is work being
    /// dispatched right now, `queued` is work waiting for a worker.
    ///
    /// A pinned limiter compares `in_flight` alone against the cap —
    /// byte-for-byte the historical static admission. An adaptive
    /// limiter bounds *outstanding* work (`in_flight + queued`): the
    /// limit is what keeps the measured sojourn at target, and queued
    /// work is sojourn-in-waiting — but the limit must also cover a
    /// runway of queued requests, or every worker would idle between
    /// jobs while admission sheds.
    #[must_use]
    pub fn admit(&self, in_flight: usize, queued: usize, sheddable: bool) -> Admission {
        let limit = self.current();
        let load = if self.adaptive {
            in_flight + queued
        } else {
            in_flight
        };
        if load >= limit {
            return Admission::Shed;
        }
        // Brownout band: the top ⅛ of the limit is reserved for
        // critical traffic (only meaningful for adaptive limiters; a
        // pinned limiter keeps the historical single-tier behaviour).
        if self.adaptive && sheddable && load >= limit.saturating_sub(limit / 8).max(1) {
            return Admission::Brownout;
        }
        Admission::Admit
    }

    /// Feeds one dispatch latency observation; every [`WINDOW`]
    /// observations the limit adjusts (AIMD) and is published to
    /// `metrics` as the `admission_limit` gauge.
    pub fn observe(&self, elapsed: Duration, metrics: &MetricsRegistry) {
        if !self.adaptive {
            return;
        }
        self.window.record_duration(elapsed);
        let n = self.observed.fetch_add(1, Ordering::Relaxed) + 1;
        if !n.is_multiple_of(WINDOW) {
            return;
        }
        let p99 = self.window.snapshot().quantile(0.99);
        self.window.reset();
        let cur = self.current();
        let next = if p99 > self.target_p99_us {
            // Multiplicative decrease: shed an eighth of the limit (at
            // least one slot, so small limits keep shrinking).
            cur.saturating_sub((cur / 8).max(1)).max(self.min)
        } else {
            // Additive increase: probe one more slot, up to the
            // configured ceiling.
            (cur + 1).min(self.max)
        };
        if next != cur {
            self.limit.store(next, Ordering::Relaxed);
        }
        metrics.set_admission_limit(next as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_limiter_is_the_static_cap() {
        let l = AimdLimiter::pinned(4);
        let m = MetricsRegistry::new();
        assert!(!l.is_adaptive());
        assert_eq!(l.admit(3, 0, false), Admission::Admit);
        assert_eq!(l.admit(3, 0, true), Admission::Admit, "no brownout tier");
        assert_eq!(
            l.admit(3, 64, false),
            Admission::Admit,
            "a pinned cap ignores queue depth (the historical behaviour)"
        );
        assert_eq!(l.admit(4, 0, false), Admission::Shed);
        for _ in 0..10 * WINDOW {
            l.observe(Duration::from_secs(1), &m);
        }
        assert_eq!(l.current(), 4, "pinned limit never moves");
    }

    #[test]
    fn slow_windows_cut_multiplicatively_fast_windows_raise_additively() {
        let l = AimdLimiter::adaptive(256, Duration::from_millis(1));
        let m = MetricsRegistry::new();
        for _ in 0..WINDOW {
            l.observe(Duration::from_millis(50), &m);
        }
        assert_eq!(l.current(), 256 - 256 / 8, "one overshoot window cuts ⅛");
        assert_eq!(m.snapshot().admission_limit, (256 - 256 / 8) as u64);
        let cut = l.current();
        for _ in 0..WINDOW {
            l.observe(Duration::from_micros(10), &m);
        }
        assert_eq!(l.current(), cut + 1, "one healthy window raises by 1");
    }

    #[test]
    fn limit_never_leaves_its_bounds() {
        let l = AimdLimiter::adaptive(8, Duration::from_millis(1));
        let m = MetricsRegistry::new();
        // Sustained overload cannot push the limit below 1.
        for _ in 0..64 * WINDOW {
            l.observe(Duration::from_millis(100), &m);
        }
        assert_eq!(l.current(), 1);
        // Sustained health cannot push it above the configured max.
        for _ in 0..64 * WINDOW {
            l.observe(Duration::from_micros(1), &m);
        }
        assert_eq!(l.current(), 8);
    }

    #[test]
    fn brownout_sheds_sheddable_traffic_first() {
        let l = AimdLimiter::adaptive(16, Duration::from_millis(50));
        // 16 - 16/8 = 14: the brownout band is [14, 16).
        assert_eq!(l.admit(13, 0, true), Admission::Admit);
        assert_eq!(l.admit(14, 0, true), Admission::Brownout);
        assert_eq!(l.admit(15, 0, true), Admission::Brownout);
        assert_eq!(
            l.admit(2, 13, true),
            Admission::Brownout,
            "adaptive admission counts queued work"
        );
        assert_eq!(l.admit(14, 0, false), Admission::Admit, "critical rides on");
        assert_eq!(l.admit(15, 0, false), Admission::Admit);
        assert_eq!(
            l.admit(16, 0, false),
            Admission::Shed,
            "blackout at the cap"
        );
        assert_eq!(l.admit(2, 14, false), Admission::Shed);
        assert_eq!(l.admit(16, 0, true), Admission::Shed);
    }
}
