//! The runtime failure vocabulary.

use std::fmt;

/// Failures crossing a stub boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The transport failed (socket error, closed connection).
    Transport(String),
    /// No servant is registered under the object key.
    UnknownObject(String),
    /// The servant has no such operation.
    UnknownOperation(String),
    /// Marshalling or conversion failed.
    Conversion(String),
    /// The application servant raised an error (GIOP user exception).
    Application(String),
    /// The envelope was malformed (GIOP system exception territory).
    Protocol(String),
    /// The call's deadline elapsed before a reply arrived.
    Timeout(String),
    /// The peer was compiled against different declarations (interface
    /// fingerprint or protocol mismatch at the connect-time handshake).
    /// Never retried: a skewed peer would decode requests as garbage.
    VersionSkew(String),
    /// The server shed the request instead of queueing it. The request
    /// was not executed; idempotent callers may retry after backoff.
    Overloaded(String),
    /// The request's propagated deadline had already expired when the
    /// server (or the client's own retry loop) looked at it; the work
    /// was refused, not executed. Never retried: the budget is gone.
    DeadlineExpired(String),
    /// The pool's retry budget was empty when a retry, hedge, or
    /// failover redial wanted a token: the call fails after its single
    /// attempt instead of amplifying an overload into a storm.
    RetryBudgetExhausted(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Transport(m) => write!(f, "transport error: {m}"),
            RuntimeError::UnknownObject(k) => write!(f, "unknown object `{k}`"),
            RuntimeError::UnknownOperation(op) => write!(f, "unknown operation `{op}`"),
            RuntimeError::Conversion(m) => write!(f, "conversion error: {m}"),
            RuntimeError::Application(m) => write!(f, "application exception: {m}"),
            RuntimeError::Protocol(m) => write!(f, "protocol error: {m}"),
            RuntimeError::Timeout(m) => write!(f, "call timed out: {m}"),
            RuntimeError::VersionSkew(m) => write!(f, "version skew: {m}"),
            RuntimeError::Overloaded(m) => write!(f, "server overloaded: {m}"),
            RuntimeError::DeadlineExpired(m) => write!(f, "deadline expired: {m}"),
            RuntimeError::RetryBudgetExhausted(m) => {
                write!(f, "retry budget exhausted: {m}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure_class() {
        assert!(RuntimeError::UnknownObject("k".into())
            .to_string()
            .contains("unknown object"));
        assert!(RuntimeError::Transport("x".into())
            .to_string()
            .contains("transport"));
        assert!(RuntimeError::Application("boom".into())
            .to_string()
            .contains("boom"));
        assert!(RuntimeError::Timeout("200ms".into())
            .to_string()
            .contains("timed out"));
        assert!(RuntimeError::VersionSkew("fp".into())
            .to_string()
            .contains("version skew"));
        assert!(RuntimeError::Overloaded("queue".into())
            .to_string()
            .contains("overloaded"));
        assert!(RuntimeError::DeadlineExpired("gone".into())
            .to_string()
            .contains("deadline expired"));
        assert!(RuntimeError::RetryBudgetExhausted("drained".into())
            .to_string()
            .contains("retry budget"));
    }
}
