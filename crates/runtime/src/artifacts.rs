//! Cluster-warm caches: the `MBAR` artifact-fetch exchange.
//!
//! A node joining the mesh already knows (from `ObjectAd` gossip) which
//! peers advertise a store digest different from its own. Before
//! compiling anything it dials such a peer, proves fingerprint agreement
//! with the ordinary `Hello` handshake, and pulls the wire programs and
//! verdicts it is missing with one `Artifact` request. Every received
//! record is re-hashed on receipt; a record whose body does not match its
//! claimed content id is dropped (and counted), and the joining node
//! falls back to local compilation for that key — a hostile or corrupt
//! peer can waste bandwidth but can never plant a bad program.

use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use mockingbird_artifact::{ArtifactStore, FetchReply, FetchRequest};
use mockingbird_values::Endian;
use mockingbird_wire::{HandshakeInfo, HandshakeVerdict, Message, MessageKind};

use crate::error::RuntimeError;
use crate::metrics::MetricsRegistry;
use crate::transport::{read_frame, write_frame};

/// How long a fetch waits for the peer's reply before giving up (the
/// caller falls back to cold compilation, so this only bounds join time).
const FETCH_TIMEOUT: Duration = Duration::from_secs(10);

/// Builds the server-side answer to one `MBAR` fetch frame. A missing
/// store, an undecodable request, or a rules mismatch all produce an
/// *empty* reply rather than an error: the requester treats it as "peer
/// has nothing for me" and compiles locally.
pub(crate) fn artifact_fetch_reply(
    request_id: u32,
    endian: Endian,
    body: &[u8],
    store: Option<&dyn ArtifactStore>,
) -> Message {
    let reply = match (store, FetchRequest::from_bytes(body)) {
        (Some(store), Ok(req)) => FetchReply::from_store(store, &req),
        _ => FetchReply {
            store_digest: 0,
            records: Vec::new(),
        },
    };
    Message::artifact(request_id, true, endian, reply.to_bytes())
}

/// The outcome of one peer fetch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FetchOutcome {
    /// Records received, content-verified, and inserted into the store.
    pub fetched: usize,
    /// Body bytes of the verified records.
    pub bytes: u64,
    /// Records dropped because their body did not match the claimed
    /// content hash.
    pub rejected: usize,
    /// Records skipped because the local store already held the key.
    pub already_present: usize,
    /// The peer's advertised store digest, from the reply.
    pub peer_digest: u64,
}

/// Fetches artifacts from one peer into `store`.
///
/// The exchange runs on a fresh blocking socket: `Hello` proposal first —
/// the fetch proceeds only on [`HandshakeVerdict::Accept`], i.e. only
/// from a peer whose interface *and* rules fingerprints already proved
/// agreement (an `InterpretiveOnly` peer compiled under different rules,
/// so its programs are useless here) — then one `Artifact` request for
/// every key under our rules fingerprint that we are missing.
///
/// Every record is re-hashed on receipt; mismatches are dropped and
/// counted in [`FetchOutcome::rejected`] and the registry's
/// `artifact_integrity_failures`.
///
/// # Errors
///
/// Transport/protocol failures and handshake refusals surface as
/// [`RuntimeError`]; the caller falls back to local compilation.
pub fn fetch_artifacts(
    addr: SocketAddr,
    info: &HandshakeInfo,
    store: &dyn ArtifactStore,
    metrics: &MetricsRegistry,
) -> Result<FetchOutcome, RuntimeError> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| RuntimeError::Transport(e.to_string()))?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(FETCH_TIMEOUT)).ok();

    // Prove agreement first: same Hello the call path uses.
    metrics.add_handshake();
    let hello = Message::hello(*info, HandshakeVerdict::Propose, Endian::Little);
    write_frame(&mut stream, &hello, metrics)?;
    let reply = read_frame(&mut stream, metrics)?
        .ok_or_else(|| RuntimeError::Transport("peer closed during the handshake".into()))?;
    let MessageKind::Hello { verdict, .. } = reply.kind else {
        return Err(RuntimeError::Protocol(
            "expected a Hello reply to the handshake".into(),
        ));
    };
    if verdict != HandshakeVerdict::Accept {
        metrics.add_handshake_reject();
        return Err(RuntimeError::VersionSkew(format!(
            "peer verdict {verdict:?}: artifacts only transfer between fully agreeing nodes"
        )));
    }

    let request = FetchRequest {
        rules_fp: info.rules_fp,
        want: None,
    };
    let frame = Message::artifact(1, false, Endian::Little, request.to_bytes());
    write_frame(&mut stream, &frame, metrics)?;
    let reply = read_frame(&mut stream, metrics)?
        .ok_or_else(|| RuntimeError::Transport("peer closed during the artifact fetch".into()))?;
    let MessageKind::Artifact { reply: true, .. } = reply.kind else {
        return Err(RuntimeError::Protocol(
            "expected an Artifact reply to the fetch".into(),
        ));
    };
    let decoded =
        FetchReply::from_bytes(&reply.body).map_err(|e| RuntimeError::Protocol(e.to_string()))?;

    let mut outcome = FetchOutcome {
        peer_digest: decoded.store_digest,
        ..FetchOutcome::default()
    };
    for record in decoded.records {
        // Content verification on every transfer: recompute the hash of
        // the received body before the record may enter the store.
        if !record.verify() {
            metrics.add_artifact_integrity_failure();
            outcome.rejected += 1;
            continue;
        }
        if store.contains(&record.key) {
            outcome.already_present += 1;
            continue;
        }
        store.put(record.key, &record.body);
        metrics.add_peer_fetch();
        metrics.add_peer_fetch_bytes(record.body.len() as u64);
        outcome.fetched += 1;
        outcome.bytes += record.body.len() as u64;
    }
    Ok(outcome)
}

/// Warms `store` from several peers in turn, accumulating the outcomes.
/// Peers that fail (unreachable, refuse the handshake, protocol errors)
/// are skipped — the next peer, or a cold compile, covers their keys.
pub fn warm_store_from_peers(
    store: &dyn ArtifactStore,
    peers: &[SocketAddr],
    info: &HandshakeInfo,
    metrics: &MetricsRegistry,
) -> FetchOutcome {
    let mut total = FetchOutcome::default();
    for &peer in peers {
        match fetch_artifacts(peer, info, store, metrics) {
            Ok(outcome) => {
                total.fetched += outcome.fetched;
                total.bytes += outcome.bytes;
                total.rejected += outcome.rejected;
                total.already_present += outcome.already_present;
                total.peer_digest = outcome.peer_digest;
            }
            Err(_) => continue,
        }
    }
    total
}

/// Copies a store's own counters into a node's metrics registry (the
/// store counts hits/misses/evictions internally; this surfaces them
/// through the Prometheus exposition). Counter deltas since the last
/// sync are the caller's affair: simplest is to call this once, at
/// scrape or report time.
pub fn record_store_stats(store: &dyn ArtifactStore, metrics: &MetricsRegistry) {
    let stats = store.stats();
    metrics.add_artifact_hits(stats.hits);
    metrics.add_artifact_misses(stats.misses);
    metrics.add_artifact_evictions(stats.evictions);
    for _ in 0..stats.integrity_failures {
        metrics.add_artifact_integrity_failure();
    }
}

/// Convenience: a shared reference to a store as the trait object the
/// server config wants.
pub fn as_store(store: Arc<impl ArtifactStore + 'static>) -> Arc<dyn ArtifactStore> {
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_artifact::{ArtifactKind, MemoryStore, StoreKey};

    fn key(n: u64, rules_fp: u64) -> StoreKey {
        StoreKey {
            kind: ArtifactKind::WireProgram,
            left_fp: n as u128,
            right_fp: (n as u128) << 8,
            subtype: false,
            rules_fp,
        }
    }

    #[test]
    fn fetch_reply_without_store_is_empty() {
        let msg = artifact_fetch_reply(
            9,
            Endian::Little,
            &FetchRequest {
                rules_fp: 1,
                want: None,
            }
            .to_bytes(),
            None,
        );
        let MessageKind::Artifact {
            request_id,
            reply: true,
        } = msg.kind
        else {
            panic!("not an artifact reply");
        };
        assert_eq!(request_id, 9);
        let decoded = FetchReply::from_bytes(&msg.body).unwrap();
        assert!(decoded.records.is_empty());
    }

    #[test]
    fn fetch_reply_filters_by_rules_fp() {
        let store = MemoryStore::new();
        store.put(key(1, 7), b"ours");
        store.put(key(2, 8), b"theirs");
        let msg = artifact_fetch_reply(
            1,
            Endian::Little,
            &FetchRequest {
                rules_fp: 7,
                want: None,
            }
            .to_bytes(),
            Some(&store),
        );
        let decoded = FetchReply::from_bytes(&msg.body).unwrap();
        assert_eq!(decoded.records.len(), 1);
        assert_eq!(decoded.records[0].body, b"ours");
        assert_eq!(decoded.store_digest, store.digest());
    }

    #[test]
    fn garbage_fetch_request_yields_empty_reply_not_panic() {
        let store = MemoryStore::new();
        store.put(key(1, 7), b"ours");
        let msg = artifact_fetch_reply(1, Endian::Little, b"not an MBAR payload", Some(&store));
        let decoded = FetchReply::from_bytes(&msg.body).unwrap();
        assert!(decoded.records.is_empty());
    }

    #[test]
    fn record_store_stats_surfaces_counters() {
        let store = MemoryStore::new();
        store.put(key(1, 7), b"ours");
        store.get(&key(1, 7));
        store.get(&key(2, 7));
        let metrics = MetricsRegistry::new();
        record_store_stats(&store, &metrics);
        let s = metrics.snapshot();
        assert_eq!(s.artifact_hits, 1);
        assert_eq!(s.artifact_misses, 1);
    }
}
