//! Per-call options: deadlines, retry policies, and hedging.
//!
//! A [`CallOptions`] value travels with each invocation (a
//! [`RemoteRef`](crate::proxy::RemoteRef) holds a default set; every
//! `invoke_with` can override it). The deadline bounds how long the
//! caller waits for a reply; the retry policy re-sends calls whose
//! operation is declared idempotent after transport failures, expired
//! deadlines, and `Overloaded` sheds, backing off exponentially — with
//! seeded jitter, so a fleet of synchronized clients does not retry in
//! lockstep — between attempts. The hedge policy (honoured by
//! [`ConnectionPool`](crate::pool::ConnectionPool), and only for
//! idempotent operations) launches a second attempt on a different
//! connection when the first has not answered within the hedge delay.

use std::time::Duration;

use mockingbird_rng::StdRng;

/// Options applied to one remote call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallOptions {
    /// How long to wait for the reply. `None` waits indefinitely
    /// (the pre-deadline serial semantics).
    pub deadline: Option<Duration>,
    /// Retry policy for idempotent operations. `None` never retries.
    pub retry: Option<RetryPolicy>,
    /// Hedging policy for idempotent operations routed through a
    /// connection pool. `None` never hedges.
    pub hedge: Option<HedgePolicy>,
    /// The call's criticality tier: sheddable traffic is cut first
    /// when the server's adaptive limiter browns out, so a degraded
    /// node keeps answering critical calls (brownout before blackout).
    pub criticality: Criticality,
}

/// Two-tier criticality: which traffic an overloaded server sheds
/// first. Propagated to the server in the deadline service-context
/// slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Criticality {
    /// Shed only when the server is fully saturated (the default).
    #[default]
    Critical,
    /// Shed early, before critical traffic, once the adaptive limiter
    /// enters its brownout band.
    Sheddable,
}

impl CallOptions {
    /// Options with no deadline, no retries, and no hedging.
    #[must_use]
    pub fn new() -> Self {
        CallOptions::default()
    }

    /// Sets the reply deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the retry policy (applied only to idempotent operations).
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Sets the hedging policy (applied only to idempotent operations
    /// sent through a connection pool).
    #[must_use]
    pub fn with_hedge(mut self, hedge: HedgePolicy) -> Self {
        self.hedge = Some(hedge);
        self
    }

    /// Sets the criticality tier ([`Criticality::Critical`] is the
    /// default).
    #[must_use]
    pub fn with_criticality(mut self, criticality: Criticality) -> Self {
        self.criticality = criticality;
        self
    }

    /// Marks the call sheddable: the first traffic cut under brownout.
    #[must_use]
    pub fn sheddable(self) -> Self {
        self.with_criticality(Criticality::Sheddable)
    }
}

/// When a pooled call launches its hedged second attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HedgePolicy {
    /// Hedge after a fixed delay.
    After(Duration),
    /// Hedge after the pool's observed p95 latency (a fresh pool with no
    /// history uses a small default delay).
    P95,
}

/// Bounded exponential backoff for re-sending idempotent calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (3 means up to 4 sends).
    pub max_retries: u32,
    /// Pause before the first retry; doubles each further retry.
    pub initial_backoff: Duration,
    /// Ceiling on the pause between retries.
    pub max_backoff: Duration,
    /// Adds seeded random jitter on top of each backoff (bounded so the
    /// jittered pause stays within `[backoff, max_backoff]`), decorrelating
    /// clients that failed at the same instant. On by default.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter: true,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_retries` retries and default backoff bounds.
    #[must_use]
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// Sets the retry budget (additional attempts after the first).
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Sets the pause before the first retry.
    #[must_use]
    pub fn with_initial_backoff(mut self, initial: Duration) -> Self {
        self.initial_backoff = initial;
        self
    }

    /// Sets the ceiling on the pause between retries.
    #[must_use]
    pub fn with_max_backoff(mut self, max: Duration) -> Self {
        self.max_backoff = max;
        self
    }

    /// Disables jitter (deterministic backoff; mainly for tests).
    #[must_use]
    pub fn without_jitter(mut self) -> Self {
        self.jitter = false;
        self
    }

    /// The deterministic pause before retry number `attempt` (0-based):
    /// the initial backoff doubled `attempt` times, capped at
    /// `max_backoff`.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let base = self.initial_backoff.as_millis() as u64;
        let scaled = base.saturating_mul(1u64 << attempt.min(20));
        Duration::from_millis(scaled).min(self.max_backoff)
    }

    /// The pause before retry number `attempt` with seeded jitter drawn
    /// from `rng`: uniform in `[backoff, min(2·backoff, max_backoff)]`.
    /// With `jitter` disabled this is exactly [`backoff`](Self::backoff).
    #[must_use]
    pub fn jittered_backoff(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let base = self.backoff(attempt);
        if !self.jitter {
            return base;
        }
        let cap = self.max_backoff.max(base);
        let span = (cap - base).min(base);
        if span.is_zero() {
            return base;
        }
        base + Duration::from_micros(rng.gen_range(0..=span.as_micros() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy {
            max_retries: 8,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            jitter: false,
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
        assert_eq!(p.backoff(3), Duration::from_millis(80));
        assert_eq!(p.backoff(4), Duration::from_millis(100));
        assert_eq!(p.backoff(63), Duration::from_millis(100));
    }

    #[test]
    fn jittered_backoff_stays_within_base_and_cap() {
        let p = RetryPolicy {
            max_retries: 8,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            jitter: true,
        };
        for seed in 0..32u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            for attempt in 0..10 {
                let base = p.backoff(attempt);
                let j = p.jittered_backoff(attempt, &mut rng);
                assert!(j >= base, "jitter below base: {j:?} < {base:?}");
                assert!(
                    j <= p.max_backoff,
                    "jitter above cap: {j:?} > {:?}",
                    p.max_backoff
                );
            }
        }
    }

    #[test]
    fn jittered_backoff_spreads_lockstep_clients() {
        // Two clients retrying at the same instant with different seeds
        // must not sleep identically on every attempt.
        let p = RetryPolicy::default();
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let distinct = (0..8)
            .filter(|&k| p.jittered_backoff(k, &mut a) != p.jittered_backoff(k, &mut b))
            .count();
        assert!(distinct >= 4, "only {distinct}/8 attempts decorrelated");
    }

    #[test]
    fn jitter_off_is_deterministic() {
        let p = RetryPolicy::retries(3).without_jitter();
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(p.jittered_backoff(2, &mut rng), p.backoff(2));
    }

    #[test]
    fn builders_compose() {
        let o = CallOptions::new()
            .with_deadline(Duration::from_millis(250))
            .with_retry(RetryPolicy::retries(2))
            .with_hedge(HedgePolicy::After(Duration::from_millis(5)));
        assert_eq!(o.deadline, Some(Duration::from_millis(250)));
        assert_eq!(o.retry.unwrap().max_retries, 2);
        assert_eq!(o.hedge, Some(HedgePolicy::After(Duration::from_millis(5))));
    }

    #[test]
    fn criticality_defaults_to_critical() {
        assert_eq!(CallOptions::new().criticality, Criticality::Critical);
        assert_eq!(
            CallOptions::new().sheddable().criticality,
            Criticality::Sheddable
        );
    }
}
