//! Per-call options: deadlines and retry policies.
//!
//! A [`CallOptions`] value travels with each invocation (a
//! [`RemoteRef`](crate::proxy::RemoteRef) holds a default set; every
//! `invoke_with` can override it). The deadline bounds how long the
//! caller waits for a reply; the retry policy re-sends calls whose
//! operation is declared idempotent after transport failures or expired
//! deadlines, backing off exponentially between attempts.

use std::time::Duration;

/// Options applied to one remote call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallOptions {
    /// How long to wait for the reply. `None` waits indefinitely
    /// (the pre-deadline serial semantics).
    pub deadline: Option<Duration>,
    /// Retry policy for idempotent operations. `None` never retries.
    pub retry: Option<RetryPolicy>,
}

impl CallOptions {
    /// Options with no deadline and no retries.
    #[must_use]
    pub fn new() -> Self {
        CallOptions::default()
    }

    /// Sets the reply deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the retry policy (applied only to idempotent operations).
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }
}

/// Bounded exponential backoff for re-sending idempotent calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (3 means up to 4 sends).
    pub max_retries: u32,
    /// Pause before the first retry; doubles each further retry.
    pub initial_backoff: Duration,
    /// Ceiling on the pause between retries.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_retries` retries and default backoff bounds.
    #[must_use]
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// The pause before retry number `attempt` (0-based): the initial
    /// backoff doubled `attempt` times, capped at `max_backoff`.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let base = self.initial_backoff.as_millis() as u64;
        let scaled = base.saturating_mul(1u64 << attempt.min(20));
        Duration::from_millis(scaled).min(self.max_backoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy {
            max_retries: 8,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
        assert_eq!(p.backoff(3), Duration::from_millis(80));
        assert_eq!(p.backoff(4), Duration::from_millis(100));
        assert_eq!(p.backoff(63), Duration::from_millis(100));
    }

    #[test]
    fn builders_compose() {
        let o = CallOptions::new()
            .with_deadline(Duration::from_millis(250))
            .with_retry(RetryPolicy::retries(2));
        assert_eq!(o.deadline, Some(Duration::from_millis(250)));
        assert_eq!(o.retry.unwrap().max_retries, 2);
    }
}
