//! Retry budgets: a per-pool token bucket that bounds aggregate retry
//! amplification.
//!
//! Per-call retry policies bound how often *one* call re-sends, but
//! nothing bounds the *sum*: when a server browns out, every in-flight
//! call starts retrying at once and the offered load multiplies by the
//! retry count — the classic metastable failure. A [`RetryBudget`]
//! caps that amplification at the pool level, Finagle-style: roughly
//! 10% of successful traffic deposits into the bucket, and every
//! retry, hedged second attempt, or failover redial must withdraw a
//! token first. Under steady state the bucket stays full and retries
//! flow freely; under a fault storm the bucket drains in one
//! amplification round and everything after degrades to a single
//! attempt, failing fast with
//! [`RuntimeError::RetryBudgetExhausted`](crate::error::RuntimeError).
//!
//! Tokens are stored in fixed-point milli-tokens so the 10% refill
//! ratio needs no floating point: one success deposits 100 (a tenth of
//! a token), one withdrawal takes 1000 (a whole token).

use std::sync::atomic::{AtomicU64, Ordering};

/// Milli-tokens deposited per successful call (0.1 token: ten
/// successes earn one retry).
const DEPOSIT: u64 = 100;

/// Milli-tokens one retry/hedge/redial withdraws.
const WITHDRAW: u64 = 1000;

/// A shared token bucket gating retries, hedges, and failover redials.
///
/// Cheap enough for the hot path: deposits and withdrawals are single
/// atomic CAS loops, no locks, no clock reads.
#[derive(Debug)]
pub struct RetryBudget {
    /// Milli-tokens currently available.
    tokens: AtomicU64,
    /// Ceiling on `tokens`: bounds the burst a long quiet period can
    /// bank.
    cap: u64,
}

impl RetryBudget {
    /// A budget holding `initial` whole tokens, capped at `cap` whole
    /// tokens.
    #[must_use]
    pub fn new(initial: u64, cap: u64) -> Self {
        let cap = cap.max(1).saturating_mul(WITHDRAW);
        RetryBudget {
            tokens: AtomicU64::new(initial.saturating_mul(WITHDRAW).min(cap)),
            cap,
        }
    }

    /// The default pool budget: a deposit large enough that healthy
    /// workloads (and the existing chaos suites) never notice it, while
    /// a sustained fault storm still drains it and degrades to
    /// single-attempt calls.
    #[must_use]
    pub fn default_for_pool() -> Self {
        RetryBudget::new(512, 4096)
    }

    /// Credits one successful call (~0.1 token).
    pub fn deposit(&self) {
        let mut cur = self.tokens.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(DEPOSIT).min(self.cap);
            match self
                .tokens
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Takes one token for a retry/hedge/redial. Returns `false` (and
    /// takes nothing) when the bucket holds less than a whole token —
    /// the caller must fail fast instead of amplifying.
    pub fn try_withdraw(&self) -> bool {
        let mut cur = self.tokens.load(Ordering::Relaxed);
        loop {
            if cur < WITHDRAW {
                return false;
            }
            match self.tokens.compare_exchange_weak(
                cur,
                cur - WITHDRAW,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns a withdrawn token (a hedge that lost its race consumed
    /// no server capacity worth charging for).
    pub fn refund(&self) {
        let mut cur = self.tokens.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(WITHDRAW).min(self.cap);
            match self
                .tokens
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Whole tokens currently available (rounded down).
    #[must_use]
    pub fn balance(&self) -> u64 {
        self.tokens.load(Ordering::Relaxed) / WITHDRAW
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn withdrawals_drain_then_refuse() {
        let b = RetryBudget::new(2, 16);
        assert!(b.try_withdraw());
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw(), "empty bucket must refuse");
        assert_eq!(b.balance(), 0);
    }

    #[test]
    fn ten_successes_earn_one_retry() {
        let b = RetryBudget::new(0, 16);
        for _ in 0..9 {
            b.deposit();
        }
        assert!(!b.try_withdraw(), "0.9 tokens is not a whole token");
        b.deposit();
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw());
    }

    #[test]
    fn deposits_cap_at_the_ceiling() {
        let b = RetryBudget::new(1, 2);
        for _ in 0..100 {
            b.deposit();
        }
        assert_eq!(b.balance(), 2);
        assert!(b.try_withdraw());
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw());
    }

    #[test]
    fn refunds_restore_tokens_up_to_cap() {
        let b = RetryBudget::new(1, 2);
        assert!(b.try_withdraw());
        b.refund();
        assert_eq!(b.balance(), 1);
        b.refund();
        b.refund();
        b.refund();
        assert_eq!(b.balance(), 2, "refunds respect the cap");
    }
}
