//! Runtime counters.
//!
//! The transport and proxy layers record what crosses the wire —
//! requests sent, replies received, retries, deadline expiries, and raw
//! bytes in each direction — into a process-wide set of atomics.
//! [`snapshot`] reads them all at once for reporting (the benchmark
//! report binary prints a snapshot after its messaging runs), and
//! [`reset`] zeroes them between measurement sections.

use std::sync::atomic::{AtomicU64, Ordering};

/// The process-wide counter set.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: AtomicU64,
    replies: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    bytes_marshalled: AtomicU64,
    bytes_unmarshalled: AtomicU64,
    programs_compiled: AtomicU64,
    program_cache_hits: AtomicU64,
    pool_reuses: AtomicU64,
    pool_misses: AtomicU64,
}

/// A consistent-enough point-in-time copy of every counter.
///
/// Each field is read atomically; the set as a whole is not a single
/// atomic transaction, which is fine for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Request frames handed to a connection (every retry counts).
    pub requests: u64,
    /// Reply frames successfully correlated back to a caller.
    pub replies: u64,
    /// Re-sends of idempotent calls after transport/timeout failures.
    pub retries: u64,
    /// Calls whose deadline elapsed before a reply arrived.
    pub timeouts: u64,
    /// Frame bytes written to sockets/streams.
    pub bytes_sent: u64,
    /// Frame bytes read from sockets/streams.
    pub bytes_received: u64,
    /// CDR body bytes produced by the data plane (native → wire).
    pub bytes_marshalled: u64,
    /// CDR body bytes consumed by the data plane (wire → native).
    pub bytes_unmarshalled: u64,
    /// Wire programs compiled from plans or types.
    pub programs_compiled: u64,
    /// Wire-program lookups served from a program cache.
    pub program_cache_hits: u64,
    /// Marshal buffers handed out from a pool with warmed capacity.
    pub pool_reuses: u64,
    /// Marshal buffer requests that had to allocate fresh.
    pub pool_misses: u64,
}

impl Metrics {
    /// A zeroed counter set.
    #[must_use]
    pub const fn new() -> Self {
        Metrics {
            requests: AtomicU64::new(0),
            replies: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            bytes_marshalled: AtomicU64::new(0),
            bytes_unmarshalled: AtomicU64::new(0),
            programs_compiled: AtomicU64::new(0),
            program_cache_hits: AtomicU64::new(0),
            pool_reuses: AtomicU64::new(0),
            pool_misses: AtomicU64::new(0),
        }
    }

    /// Records one request frame sent.
    pub fn add_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one reply frame delivered to its caller.
    pub fn add_reply(&self) {
        self.replies.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retry of an idempotent call.
    pub fn add_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one expired call deadline.
    pub fn add_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` frame bytes written.
    pub fn add_bytes_sent(&self, n: u64) {
        self.bytes_sent.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` frame bytes read.
    pub fn add_bytes_received(&self, n: u64) {
        self.bytes_received.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` CDR body bytes marshalled (native → wire).
    pub fn add_bytes_marshalled(&self, n: u64) {
        self.bytes_marshalled.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` CDR body bytes unmarshalled (wire → native).
    pub fn add_bytes_unmarshalled(&self, n: u64) {
        self.bytes_unmarshalled.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` wire-program compilations.
    pub fn add_programs_compiled(&self, n: u64) {
        self.programs_compiled.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` program-cache hits.
    pub fn add_program_cache_hits(&self, n: u64) {
        self.program_cache_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one pooled buffer handed out with warmed capacity.
    pub fn add_pool_reuse(&self) {
        self.pool_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one pool request that allocated a fresh buffer.
    pub fn add_pool_miss(&self) {
        self.pool_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            replies: self.replies.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            bytes_marshalled: self.bytes_marshalled.load(Ordering::Relaxed),
            bytes_unmarshalled: self.bytes_unmarshalled.load(Ordering::Relaxed),
            programs_compiled: self.programs_compiled.load(Ordering::Relaxed),
            program_cache_hits: self.program_cache_hits.load(Ordering::Relaxed),
            pool_reuses: self.pool_reuses.load(Ordering::Relaxed),
            pool_misses: self.pool_misses.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.replies.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.timeouts.store(0, Ordering::Relaxed);
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
        self.bytes_marshalled.store(0, Ordering::Relaxed);
        self.bytes_unmarshalled.store(0, Ordering::Relaxed);
        self.programs_compiled.store(0, Ordering::Relaxed);
        self.program_cache_hits.store(0, Ordering::Relaxed);
        self.pool_reuses.store(0, Ordering::Relaxed);
        self.pool_misses.store(0, Ordering::Relaxed);
    }
}

static GLOBAL: Metrics = Metrics::new();

/// The process-wide counters the runtime layers record into.
#[must_use]
pub fn global() -> &'static Metrics {
    &GLOBAL
}

/// Snapshot of the process-wide counters.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    GLOBAL.snapshot()
}

/// Zeroes the process-wide counters.
pub fn reset() {
    GLOBAL.reset()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = Metrics::new();
        m.add_request();
        m.add_request();
        m.add_reply();
        m.add_retry();
        m.add_timeout();
        m.add_bytes_sent(100);
        m.add_bytes_received(60);
        m.add_bytes_marshalled(48);
        m.add_bytes_unmarshalled(24);
        m.add_programs_compiled(2);
        m.add_program_cache_hits(5);
        m.add_pool_reuse();
        m.add_pool_reuse();
        m.add_pool_miss();
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.replies, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.bytes_sent, 100);
        assert_eq!(s.bytes_received, 60);
        assert_eq!(s.bytes_marshalled, 48);
        assert_eq!(s.bytes_unmarshalled, 24);
        assert_eq!(s.programs_compiled, 2);
        assert_eq!(s.program_cache_hits, 5);
        assert_eq!(s.pool_reuses, 2);
        assert_eq!(s.pool_misses, 1);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn global_counters_are_reachable() {
        // Other tests in the process also write these; only check that
        // recording is visible, not absolute values.
        let before = snapshot().bytes_sent;
        global().add_bytes_sent(7);
        assert!(snapshot().bytes_sent >= before + 7);
    }
}
