//! Runtime metrics: counters, per-operation latency histograms, and
//! sampled span capture, scoped to a [`MetricsRegistry`].
//!
//! The transport and proxy layers record what crosses the wire —
//! requests sent, replies received, retries, deadline expiries, raw
//! bytes in each direction — plus per-operation latency histograms on
//! both the client ([`crate::proxy`]) and server ([`crate::dispatch`])
//! sides. All of it lives in a `MetricsRegistry` owned by the node that
//! produced it: a `TcpServer`'s dispatcher, a `ConnectionPool`, or a
//! single connection. Two nodes in one process (or one test binary)
//! therefore never clobber each other's numbers, and resetting one
//! node's registry cannot skew another's measurement section.
//!
//! The mesh naming layer records here too: members discovered, gossip
//! rounds, directory resolutions, failovers, and stale-entry
//! evictions, so a node's Prometheus scrape shows its view of the
//! cluster next to its wire traffic.

use mockingbird_obs::{Histogram, HistogramSnapshot, SpanLog, SpanRecord};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use crate::sync::RwLockExt;

/// The process-wide counter set.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: AtomicU64,
    replies: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    bytes_marshalled: AtomicU64,
    bytes_unmarshalled: AtomicU64,
    programs_compiled: AtomicU64,
    program_cache_hits: AtomicU64,
    native_calls: AtomicU64,
    native_fallbacks: AtomicU64,
    pool_reuses: AtomicU64,
    pool_misses: AtomicU64,
    handshakes: AtomicU64,
    handshake_rejects: AtomicU64,
    handshake_fallbacks: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_half_opens: AtomicU64,
    breaker_closes: AtomicU64,
    sheds: AtomicU64,
    overloads: AtomicU64,
    hedges_fired: AtomicU64,
    hedges_won: AtomicU64,
    faults_injected: AtomicU64,
    mesh_members_seen: AtomicU64,
    mesh_gossip_rounds: AtomicU64,
    mesh_resolutions: AtomicU64,
    mesh_failovers: AtomicU64,
    mesh_evictions: AtomicU64,
    deadline_expired_server: AtomicU64,
    retry_budget_exhausted: AtomicU64,
    brownout_sheds: AtomicU64,
    artifact_hits: AtomicU64,
    artifact_misses: AtomicU64,
    artifact_evictions: AtomicU64,
    peer_fetches: AtomicU64,
    peer_fetch_bytes: AtomicU64,
    artifact_integrity_failures: AtomicU64,
    /// Gauge, not a counter: the adaptive limiter's current admission
    /// limit (0 until a server publishes one).
    admission_limit: AtomicU64,
}

/// A consistent-enough point-in-time copy of every counter.
///
/// Each field is read atomically; the set as a whole is not a single
/// atomic transaction, which is fine for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Request frames handed to a connection (every retry counts).
    pub requests: u64,
    /// Reply frames successfully correlated back to a caller.
    pub replies: u64,
    /// Re-sends of idempotent calls after transport/timeout failures.
    pub retries: u64,
    /// Calls whose deadline elapsed before a reply arrived.
    pub timeouts: u64,
    /// Frame bytes written to sockets/streams.
    pub bytes_sent: u64,
    /// Frame bytes read from sockets/streams.
    pub bytes_received: u64,
    /// CDR body bytes produced by the data plane (native → wire).
    pub bytes_marshalled: u64,
    /// CDR body bytes consumed by the data plane (wire → native).
    pub bytes_unmarshalled: u64,
    /// Wire programs compiled from plans or types.
    pub programs_compiled: u64,
    /// Wire-program lookups served from a program cache.
    pub program_cache_hits: u64,
    /// Remote calls marshalled by emitted native stubs (the second
    /// Futamura projection tier, ahead of the opcode VM).
    pub native_calls: u64,
    /// Fused calls that ran on the opcode VM because no native stub was
    /// registered for one or both directions.
    pub native_fallbacks: u64,
    /// Marshal buffers handed out from a pool with warmed capacity.
    pub pool_reuses: u64,
    /// Marshal buffer requests that had to allocate fresh.
    pub pool_misses: u64,
    /// Connect-time handshakes attempted (client side).
    pub handshakes: u64,
    /// Handshakes rejected for protocol/interface skew (both sides).
    pub handshake_rejects: u64,
    /// Handshakes that degraded to the interpretive marshal path.
    pub handshake_fallbacks: u64,
    /// Circuit-breaker transitions into the open state.
    pub breaker_opens: u64,
    /// Circuit-breaker transitions into the half-open state.
    pub breaker_half_opens: u64,
    /// Circuit-breaker transitions back to the closed state.
    pub breaker_closes: u64,
    /// Requests the server shed instead of queueing (Overloaded reply).
    pub sheds: u64,
    /// Overloaded replies received by clients.
    pub overloads: u64,
    /// Hedged second attempts launched after the hedge delay.
    pub hedges_fired: u64,
    /// Hedged calls won by the second attempt.
    pub hedges_won: u64,
    /// Faults injected by the chaos transport (drops, truncations,
    /// corruptions, disconnects — delays are not counted).
    pub faults_injected: u64,
    /// Distinct mesh members this node has learned about (first sight
    /// of each node id, across joins and rejoins).
    pub mesh_members_seen: u64,
    /// Gossip rounds this node has initiated.
    pub mesh_gossip_rounds: u64,
    /// Directory resolutions applied to a pool's endpoint set.
    pub mesh_resolutions: u64,
    /// Calls re-routed to another replica after a failure.
    pub mesh_failovers: u64,
    /// Mesh membership entries evicted as stale (no refresh within the
    /// eviction horizon).
    pub mesh_evictions: u64,
    /// Requests a server refused because their propagated deadline had
    /// already expired (admission, dequeue, or pre-dispatch check).
    pub deadline_expired_server: u64,
    /// Calls that failed fast because the pool's retry budget was
    /// empty when a retry, hedge, or failover redial wanted a token.
    pub retry_budget_exhausted: u64,
    /// Sheddable requests cut in the adaptive limiter's brownout band
    /// (before critical traffic was touched).
    pub brownout_sheds: u64,
    /// Artifact-store lookups that found the key.
    pub artifact_hits: u64,
    /// Artifact-store lookups that missed.
    pub artifact_misses: u64,
    /// Artifact records dropped by store capacity eviction.
    pub artifact_evictions: u64,
    /// Artifact records fetched from mesh peers over `MBAR`.
    pub peer_fetches: u64,
    /// Artifact body bytes received from mesh peers over `MBAR`.
    pub peer_fetch_bytes: u64,
    /// Artifact records rejected for failing a checksum or content-hash
    /// check (hostile store files, corrupt peer transfers).
    pub artifact_integrity_failures: u64,
    /// The adaptive limiter's current admission limit (a gauge; 0
    /// until a server publishes one).
    pub admission_limit: u64,
}

impl Metrics {
    /// A zeroed counter set.
    #[must_use]
    pub const fn new() -> Self {
        Metrics {
            requests: AtomicU64::new(0),
            replies: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            bytes_marshalled: AtomicU64::new(0),
            bytes_unmarshalled: AtomicU64::new(0),
            programs_compiled: AtomicU64::new(0),
            program_cache_hits: AtomicU64::new(0),
            native_calls: AtomicU64::new(0),
            native_fallbacks: AtomicU64::new(0),
            pool_reuses: AtomicU64::new(0),
            pool_misses: AtomicU64::new(0),
            handshakes: AtomicU64::new(0),
            handshake_rejects: AtomicU64::new(0),
            handshake_fallbacks: AtomicU64::new(0),
            breaker_opens: AtomicU64::new(0),
            breaker_half_opens: AtomicU64::new(0),
            breaker_closes: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            overloads: AtomicU64::new(0),
            hedges_fired: AtomicU64::new(0),
            hedges_won: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            mesh_members_seen: AtomicU64::new(0),
            mesh_gossip_rounds: AtomicU64::new(0),
            mesh_resolutions: AtomicU64::new(0),
            mesh_failovers: AtomicU64::new(0),
            mesh_evictions: AtomicU64::new(0),
            deadline_expired_server: AtomicU64::new(0),
            retry_budget_exhausted: AtomicU64::new(0),
            brownout_sheds: AtomicU64::new(0),
            artifact_hits: AtomicU64::new(0),
            artifact_misses: AtomicU64::new(0),
            artifact_evictions: AtomicU64::new(0),
            peer_fetches: AtomicU64::new(0),
            peer_fetch_bytes: AtomicU64::new(0),
            artifact_integrity_failures: AtomicU64::new(0),
            admission_limit: AtomicU64::new(0),
        }
    }

    /// Records one client-side handshake attempt.
    pub fn add_handshake(&self) {
        self.handshakes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one handshake rejected for protocol/interface skew.
    pub fn add_handshake_reject(&self) {
        self.handshake_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one handshake that degraded to the interpretive path.
    pub fn add_handshake_fallback(&self) {
        self.handshake_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one breaker transition to open.
    pub fn add_breaker_open(&self) {
        self.breaker_opens.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one breaker transition to half-open.
    pub fn add_breaker_half_open(&self) {
        self.breaker_half_opens.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one breaker transition back to closed.
    pub fn add_breaker_close(&self) {
        self.breaker_closes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request shed by the server.
    pub fn add_shed(&self) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one Overloaded reply received by a client.
    pub fn add_overload(&self) {
        self.overloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one hedged second attempt fired.
    pub fn add_hedge_fired(&self) {
        self.hedges_fired.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one hedged call won by the second attempt.
    pub fn add_hedge_won(&self) {
        self.hedges_won.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one chaos-injected fault.
    pub fn add_fault_injected(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the first sighting of a mesh member.
    pub fn add_mesh_member_seen(&self) {
        self.mesh_members_seen.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one gossip round initiated by this node.
    pub fn add_mesh_gossip_round(&self) {
        self.mesh_gossip_rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one directory resolution applied to an endpoint set.
    pub fn add_mesh_resolution(&self) {
        self.mesh_resolutions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one call re-routed to another replica after a failure.
    pub fn add_mesh_failover(&self) {
        self.mesh_failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one stale mesh entry evicted.
    pub fn add_mesh_eviction(&self) {
        self.mesh_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request refused server-side for an expired deadline.
    pub fn add_deadline_expired_server(&self) {
        self.deadline_expired_server.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one call failed fast on an empty retry budget.
    pub fn add_retry_budget_exhausted(&self) {
        self.retry_budget_exhausted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one sheddable request cut in the brownout band.
    pub fn add_brownout_shed(&self) {
        self.brownout_sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` artifact-store lookups that hit.
    pub fn add_artifact_hits(&self, n: u64) {
        self.artifact_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` artifact-store lookups that missed.
    pub fn add_artifact_misses(&self, n: u64) {
        self.artifact_misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` artifact records dropped by capacity eviction.
    pub fn add_artifact_evictions(&self, n: u64) {
        self.artifact_evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one artifact record fetched from a mesh peer.
    pub fn add_peer_fetch(&self) {
        self.peer_fetches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` artifact body bytes received from mesh peers.
    pub fn add_peer_fetch_bytes(&self, n: u64) {
        self.peer_fetch_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one artifact record rejected by an integrity check.
    pub fn add_artifact_integrity_failure(&self) {
        self.artifact_integrity_failures
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the adaptive limiter's current admission limit.
    pub fn set_admission_limit(&self, limit: u64) {
        self.admission_limit.store(limit, Ordering::Relaxed);
    }

    /// The last published admission limit (0 until a server sets one).
    pub fn admission_limit(&self) -> u64 {
        self.admission_limit.load(Ordering::Relaxed)
    }

    /// Records one request frame sent.
    pub fn add_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one reply frame delivered to its caller.
    pub fn add_reply(&self) {
        self.replies.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retry of an idempotent call.
    pub fn add_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one expired call deadline.
    pub fn add_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` frame bytes written.
    pub fn add_bytes_sent(&self, n: u64) {
        self.bytes_sent.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` frame bytes read.
    pub fn add_bytes_received(&self, n: u64) {
        self.bytes_received.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` CDR body bytes marshalled (native → wire).
    pub fn add_bytes_marshalled(&self, n: u64) {
        self.bytes_marshalled.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` CDR body bytes unmarshalled (wire → native).
    pub fn add_bytes_unmarshalled(&self, n: u64) {
        self.bytes_unmarshalled.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` wire-program compilations.
    pub fn add_programs_compiled(&self, n: u64) {
        self.programs_compiled.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` program-cache hits.
    pub fn add_program_cache_hits(&self, n: u64) {
        self.program_cache_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one remote call marshalled by an emitted native stub.
    pub fn add_native_call(&self) {
        self.native_calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one fused call that fell back to the opcode VM for want
    /// of a registered native stub.
    pub fn add_native_fallback(&self) {
        self.native_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one pooled buffer handed out with warmed capacity.
    pub fn add_pool_reuse(&self) {
        self.pool_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one pool request that allocated a fresh buffer.
    pub fn add_pool_miss(&self) {
        self.pool_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            replies: self.replies.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            bytes_marshalled: self.bytes_marshalled.load(Ordering::Relaxed),
            bytes_unmarshalled: self.bytes_unmarshalled.load(Ordering::Relaxed),
            programs_compiled: self.programs_compiled.load(Ordering::Relaxed),
            program_cache_hits: self.program_cache_hits.load(Ordering::Relaxed),
            native_calls: self.native_calls.load(Ordering::Relaxed),
            native_fallbacks: self.native_fallbacks.load(Ordering::Relaxed),
            pool_reuses: self.pool_reuses.load(Ordering::Relaxed),
            pool_misses: self.pool_misses.load(Ordering::Relaxed),
            handshakes: self.handshakes.load(Ordering::Relaxed),
            handshake_rejects: self.handshake_rejects.load(Ordering::Relaxed),
            handshake_fallbacks: self.handshake_fallbacks.load(Ordering::Relaxed),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            breaker_half_opens: self.breaker_half_opens.load(Ordering::Relaxed),
            breaker_closes: self.breaker_closes.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            overloads: self.overloads.load(Ordering::Relaxed),
            hedges_fired: self.hedges_fired.load(Ordering::Relaxed),
            hedges_won: self.hedges_won.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            mesh_members_seen: self.mesh_members_seen.load(Ordering::Relaxed),
            mesh_gossip_rounds: self.mesh_gossip_rounds.load(Ordering::Relaxed),
            mesh_resolutions: self.mesh_resolutions.load(Ordering::Relaxed),
            mesh_failovers: self.mesh_failovers.load(Ordering::Relaxed),
            mesh_evictions: self.mesh_evictions.load(Ordering::Relaxed),
            deadline_expired_server: self.deadline_expired_server.load(Ordering::Relaxed),
            retry_budget_exhausted: self.retry_budget_exhausted.load(Ordering::Relaxed),
            brownout_sheds: self.brownout_sheds.load(Ordering::Relaxed),
            artifact_hits: self.artifact_hits.load(Ordering::Relaxed),
            artifact_misses: self.artifact_misses.load(Ordering::Relaxed),
            artifact_evictions: self.artifact_evictions.load(Ordering::Relaxed),
            peer_fetches: self.peer_fetches.load(Ordering::Relaxed),
            peer_fetch_bytes: self.peer_fetch_bytes.load(Ordering::Relaxed),
            artifact_integrity_failures: self.artifact_integrity_failures.load(Ordering::Relaxed),
            admission_limit: self.admission_limit.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.replies.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.timeouts.store(0, Ordering::Relaxed);
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
        self.bytes_marshalled.store(0, Ordering::Relaxed);
        self.bytes_unmarshalled.store(0, Ordering::Relaxed);
        self.programs_compiled.store(0, Ordering::Relaxed);
        self.program_cache_hits.store(0, Ordering::Relaxed);
        self.native_calls.store(0, Ordering::Relaxed);
        self.native_fallbacks.store(0, Ordering::Relaxed);
        self.pool_reuses.store(0, Ordering::Relaxed);
        self.pool_misses.store(0, Ordering::Relaxed);
        self.handshakes.store(0, Ordering::Relaxed);
        self.handshake_rejects.store(0, Ordering::Relaxed);
        self.handshake_fallbacks.store(0, Ordering::Relaxed);
        self.breaker_opens.store(0, Ordering::Relaxed);
        self.breaker_half_opens.store(0, Ordering::Relaxed);
        self.breaker_closes.store(0, Ordering::Relaxed);
        self.sheds.store(0, Ordering::Relaxed);
        self.overloads.store(0, Ordering::Relaxed);
        self.hedges_fired.store(0, Ordering::Relaxed);
        self.hedges_won.store(0, Ordering::Relaxed);
        self.faults_injected.store(0, Ordering::Relaxed);
        self.mesh_members_seen.store(0, Ordering::Relaxed);
        self.mesh_gossip_rounds.store(0, Ordering::Relaxed);
        self.mesh_resolutions.store(0, Ordering::Relaxed);
        self.mesh_failovers.store(0, Ordering::Relaxed);
        self.mesh_evictions.store(0, Ordering::Relaxed);
        self.deadline_expired_server.store(0, Ordering::Relaxed);
        self.retry_budget_exhausted.store(0, Ordering::Relaxed);
        self.brownout_sheds.store(0, Ordering::Relaxed);
        self.artifact_hits.store(0, Ordering::Relaxed);
        self.artifact_misses.store(0, Ordering::Relaxed);
        self.artifact_evictions.store(0, Ordering::Relaxed);
        self.peer_fetches.store(0, Ordering::Relaxed);
        self.peer_fetch_bytes.store(0, Ordering::Relaxed);
        self.artifact_integrity_failures.store(0, Ordering::Relaxed);
        self.admission_limit.store(0, Ordering::Relaxed);
    }
}

impl MetricsSnapshot {
    /// Counter names and values in declaration order, for exposition.
    #[must_use]
    pub fn fields(&self) -> [(&'static str, u64); 39] {
        [
            ("requests", self.requests),
            ("replies", self.replies),
            ("retries", self.retries),
            ("timeouts", self.timeouts),
            ("bytes_sent", self.bytes_sent),
            ("bytes_received", self.bytes_received),
            ("bytes_marshalled", self.bytes_marshalled),
            ("bytes_unmarshalled", self.bytes_unmarshalled),
            ("programs_compiled", self.programs_compiled),
            ("program_cache_hits", self.program_cache_hits),
            ("native_calls", self.native_calls),
            ("native_fallbacks", self.native_fallbacks),
            ("pool_reuses", self.pool_reuses),
            ("pool_misses", self.pool_misses),
            ("handshakes", self.handshakes),
            ("handshake_rejects", self.handshake_rejects),
            ("handshake_fallbacks", self.handshake_fallbacks),
            ("breaker_opens", self.breaker_opens),
            ("breaker_half_opens", self.breaker_half_opens),
            ("breaker_closes", self.breaker_closes),
            ("sheds", self.sheds),
            ("overloads", self.overloads),
            ("hedges_fired", self.hedges_fired),
            ("hedges_won", self.hedges_won),
            ("faults_injected", self.faults_injected),
            ("mesh_members_seen", self.mesh_members_seen),
            ("mesh_gossip_rounds", self.mesh_gossip_rounds),
            ("mesh_resolutions", self.mesh_resolutions),
            ("mesh_failovers", self.mesh_failovers),
            ("mesh_evictions", self.mesh_evictions),
            ("deadline_expired_server", self.deadline_expired_server),
            ("retry_budget_exhausted", self.retry_budget_exhausted),
            ("brownout_sheds", self.brownout_sheds),
            ("artifact_hits", self.artifact_hits),
            ("artifact_misses", self.artifact_misses),
            ("artifact_evictions", self.artifact_evictions),
            ("peer_fetches", self.peer_fetches),
            ("peer_fetch_bytes", self.peer_fetch_bytes),
            (
                "artifact_integrity_failures",
                self.artifact_integrity_failures,
            ),
        ]
    }
}

/// A per-node metrics handle: the counter set plus per-operation latency
/// histograms for both call sides, a bounded span log for sampled slow
/// calls, and the tracing switch. Owned (as an `Arc`) by a `TcpServer`'s
/// dispatcher, a `ConnectionPool`, or an individual connection;
/// everything recorded through one registry stays scoped to that node.
///
/// Derefs to [`Metrics`], so counter recording reads the same at every
/// call site: `registry.add_request()`.
pub struct MetricsRegistry {
    counters: Metrics,
    client_ops: RwLock<HashMap<String, Arc<Histogram>>>,
    server_ops: RwLock<HashMap<String, Arc<Histogram>>>,
    spans: SpanLog,
    tracing: AtomicBool,
    slow_threshold_us: AtomicU64,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &self.counters)
            .field("tracing", &self.tracing_enabled())
            .field("spans", &self.spans.len())
            .finish_non_exhaustive()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for MetricsRegistry {
    type Target = Metrics;
    fn deref(&self) -> &Metrics {
        &self.counters
    }
}

impl MetricsRegistry {
    /// A fresh registry: zeroed counters, no histograms, tracing off.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry {
            counters: Metrics::new(),
            client_ops: RwLock::new(HashMap::new()),
            server_ops: RwLock::new(HashMap::new()),
            spans: SpanLog::default(),
            tracing: AtomicBool::new(false),
            slow_threshold_us: AtomicU64::new(0),
        }
    }

    /// A fresh registry behind an `Arc`, ready to hand to a node.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// The raw counter set (also reachable through `Deref`).
    #[must_use]
    pub fn counters(&self) -> &Metrics {
        &self.counters
    }

    /// Point-in-time copy of every counter.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.counters.snapshot()
    }

    /// Zeroes the counters and drops all histograms and spans.
    pub fn reset(&self) {
        self.counters.reset();
        self.client_ops.pwrite().clear();
        self.server_ops.pwrite().clear();
        self.spans.clear();
    }

    /// Turns trace propagation + span capture on or off for callers
    /// using this registry. Latency histograms record regardless.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::Relaxed);
    }

    /// Whether trace contexts are being minted and spans captured.
    #[must_use]
    pub fn tracing_enabled(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// Only capture spans for sampled calls at least this slow
    /// (default: zero, i.e. every sampled call).
    pub fn set_slow_threshold(&self, min: Duration) {
        self.slow_threshold_us.store(
            u64::try_from(min.as_micros()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
    }

    fn histogram(map: &RwLock<HashMap<String, Arc<Histogram>>>, op: &str) -> Arc<Histogram> {
        if let Some(h) = map.pread().get(op) {
            return Arc::clone(h);
        }
        let mut w = map.pwrite();
        Arc::clone(w.entry(op.to_string()).or_default())
    }

    /// The client-side latency histogram for `op` (created on first use).
    #[must_use]
    pub fn client_histogram(&self, op: &str) -> Arc<Histogram> {
        Self::histogram(&self.client_ops, op)
    }

    /// The server-side latency histogram for `op` (created on first use).
    #[must_use]
    pub fn server_histogram(&self, op: &str) -> Arc<Histogram> {
        Self::histogram(&self.server_ops, op)
    }

    /// Records one client-side call latency for `op`.
    pub fn record_client(&self, op: &str, elapsed: Duration) {
        self.client_histogram(op).record_duration(elapsed);
    }

    /// Records one server-side dispatch latency for `op`.
    pub fn record_server(&self, op: &str, elapsed: Duration) {
        self.server_histogram(op).record_duration(elapsed);
    }

    /// Snapshots of every client-side histogram, sorted by operation.
    #[must_use]
    pub fn client_ops(&self) -> Vec<(String, HistogramSnapshot)> {
        Self::ops_snapshot(&self.client_ops)
    }

    /// Snapshots of every server-side histogram, sorted by operation.
    #[must_use]
    pub fn server_ops(&self) -> Vec<(String, HistogramSnapshot)> {
        Self::ops_snapshot(&self.server_ops)
    }

    fn ops_snapshot(
        map: &RwLock<HashMap<String, Arc<Histogram>>>,
    ) -> Vec<(String, HistogramSnapshot)> {
        let mut v: Vec<_> = map
            .pread()
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// The bounded span log.
    #[must_use]
    pub fn spans(&self) -> &SpanLog {
        &self.spans
    }

    /// Whether a sampled span of this duration clears the slow-call
    /// threshold. Hot paths check this before building a
    /// [`SpanRecord`], whose endpoint/error strings allocate.
    #[must_use]
    pub fn wants_span(&self, duration_us: u64) -> bool {
        duration_us >= self.slow_threshold_us.load(Ordering::Relaxed)
    }

    /// Captures a span if it clears the slow-call threshold.
    pub fn record_span(&self, span: SpanRecord) {
        if self.wants_span(span.duration_us) {
            self.spans.record(span);
        }
    }

    /// Flags the winning attempt of a hedged race.
    pub fn mark_winner(&self, trace_id: u128, span_id: u64) -> bool {
        self.spans.mark_winner(trace_id, span_id)
    }

    /// Renders everything in the Prometheus text exposition format:
    /// one counter family per [`Metrics`] counter, plus per-operation
    /// latency summaries (`quantile` labelled) for each side, plus a
    /// gauge with the current span-log depth.
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        for (name, value) in self.snapshot().fields() {
            let _ = writeln!(out, "# TYPE mockingbird_{name}_total counter");
            let _ = writeln!(out, "mockingbird_{name}_total {value}");
        }
        let _ = writeln!(out, "# TYPE mockingbird_op_latency_microseconds summary");
        for (side, ops) in [("client", self.client_ops()), ("server", self.server_ops())] {
            for (op, s) in ops {
                for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                    let _ = writeln!(
                        out,
                        "mockingbird_op_latency_microseconds{{side=\"{side}\",op=\"{op}\",quantile=\"{label}\"}} {}",
                        s.quantile(q)
                    );
                }
                let _ = writeln!(
                    out,
                    "mockingbird_op_latency_microseconds_sum{{side=\"{side}\",op=\"{op}\"}} {}",
                    s.sum()
                );
                let _ = writeln!(
                    out,
                    "mockingbird_op_latency_microseconds_count{{side=\"{side}\",op=\"{op}\"}} {}",
                    s.count()
                );
            }
        }
        let _ = writeln!(out, "# TYPE mockingbird_admission_limit gauge");
        let _ = writeln!(
            out,
            "mockingbird_admission_limit {}",
            self.counters.admission_limit()
        );
        let _ = writeln!(out, "# TYPE mockingbird_spans_captured gauge");
        let _ = writeln!(out, "mockingbird_spans_captured {}", self.spans.len());
        out
    }

    /// Renders counters + per-op latency quantiles as a JSON object
    /// (hand-rolled: operation names come from in-tree declarations and
    /// never need escaping beyond quotes/backslashes).
    #[must_use]
    pub fn json_snapshot(&self) -> String {
        use std::fmt::Write as _;
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        fn ops_json(out: &mut String, ops: &[(String, HistogramSnapshot)]) {
            out.push('{');
            for (i, (op, s)) in ops.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\"{}\":{{\"count\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{},\"mean_us\":{:.1}}}",
                    esc(op),
                    s.count(),
                    s.quantile(0.5),
                    s.quantile(0.95),
                    s.quantile(0.99),
                    s.max(),
                    s.mean()
                );
            }
            out.push('}');
        }
        let mut out = String::with_capacity(2048);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.snapshot().fields().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{value}");
        }
        out.push_str("},\"client_ops\":");
        ops_json(&mut out, &self.client_ops());
        out.push_str(",\"server_ops\":");
        ops_json(&mut out, &self.server_ops());
        let _ = write!(
            out,
            ",\"admission_limit\":{},\"tracing\":{},\"spans_captured\":{}}}",
            self.counters.admission_limit(),
            self.tracing_enabled(),
            self.spans.len()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = Metrics::new();
        m.add_request();
        m.add_request();
        m.add_reply();
        m.add_retry();
        m.add_timeout();
        m.add_bytes_sent(100);
        m.add_bytes_received(60);
        m.add_bytes_marshalled(48);
        m.add_bytes_unmarshalled(24);
        m.add_programs_compiled(2);
        m.add_program_cache_hits(5);
        m.add_pool_reuse();
        m.add_pool_reuse();
        m.add_pool_miss();
        m.add_handshake();
        m.add_handshake_reject();
        m.add_handshake_fallback();
        m.add_breaker_open();
        m.add_breaker_half_open();
        m.add_breaker_close();
        m.add_shed();
        m.add_overload();
        m.add_hedge_fired();
        m.add_hedge_won();
        m.add_fault_injected();
        m.add_mesh_member_seen();
        m.add_mesh_gossip_round();
        m.add_mesh_resolution();
        m.add_mesh_failover();
        m.add_mesh_eviction();
        m.add_deadline_expired_server();
        m.add_retry_budget_exhausted();
        m.add_brownout_shed();
        m.add_artifact_hits(4);
        m.add_artifact_misses(2);
        m.add_artifact_evictions(3);
        m.add_peer_fetch();
        m.add_peer_fetch_bytes(512);
        m.add_artifact_integrity_failure();
        m.set_admission_limit(64);
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.replies, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.bytes_sent, 100);
        assert_eq!(s.bytes_received, 60);
        assert_eq!(s.bytes_marshalled, 48);
        assert_eq!(s.bytes_unmarshalled, 24);
        assert_eq!(s.programs_compiled, 2);
        assert_eq!(s.program_cache_hits, 5);
        assert_eq!(s.pool_reuses, 2);
        assert_eq!(s.pool_misses, 1);
        assert_eq!(s.handshakes, 1);
        assert_eq!(s.handshake_rejects, 1);
        assert_eq!(s.handshake_fallbacks, 1);
        assert_eq!(s.breaker_opens, 1);
        assert_eq!(s.breaker_half_opens, 1);
        assert_eq!(s.breaker_closes, 1);
        assert_eq!(s.sheds, 1);
        assert_eq!(s.overloads, 1);
        assert_eq!(s.hedges_fired, 1);
        assert_eq!(s.hedges_won, 1);
        assert_eq!(s.faults_injected, 1);
        assert_eq!(s.mesh_members_seen, 1);
        assert_eq!(s.mesh_gossip_rounds, 1);
        assert_eq!(s.mesh_resolutions, 1);
        assert_eq!(s.mesh_failovers, 1);
        assert_eq!(s.mesh_evictions, 1);
        assert_eq!(s.deadline_expired_server, 1);
        assert_eq!(s.retry_budget_exhausted, 1);
        assert_eq!(s.brownout_sheds, 1);
        assert_eq!(s.artifact_hits, 4);
        assert_eq!(s.artifact_misses, 2);
        assert_eq!(s.artifact_evictions, 3);
        assert_eq!(s.peer_fetches, 1);
        assert_eq!(s.peer_fetch_bytes, 512);
        assert_eq!(s.artifact_integrity_failures, 1);
        assert_eq!(s.admission_limit, 64);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn registries_are_isolated() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.add_request();
        a.record_client("echo", Duration::from_micros(120));
        b.add_retry();
        assert_eq!(a.snapshot().requests, 1);
        assert_eq!(a.snapshot().retries, 0);
        assert_eq!(b.snapshot().requests, 0);
        assert_eq!(b.snapshot().retries, 1);
        assert!(b.client_ops().is_empty());
        let ops = a.client_ops();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0, "echo");
        assert_eq!(ops[0].1.count(), 1);
        a.reset();
        assert_eq!(a.snapshot(), MetricsSnapshot::default());
        assert!(a.client_ops().is_empty());
        assert_eq!(b.snapshot().retries, 1, "resetting a leaves b alone");
    }

    #[test]
    fn registry_histograms_and_spans() {
        use mockingbird_obs::{SpanKind, TraceContext};
        let r = MetricsRegistry::new();
        assert!(!r.tracing_enabled());
        r.set_tracing(true);
        assert!(r.tracing_enabled());
        for us in [100u64, 200, 300] {
            r.record_server("work", Duration::from_micros(us));
        }
        let ops = r.server_ops();
        assert_eq!(ops[0].1.count(), 3);
        let ctx = TraceContext::root();
        let mut span = SpanRecord::new(ctx, SpanKind::Client, "work");
        span.duration_us = 50;
        r.record_span(span.clone());
        assert_eq!(r.spans().len(), 1);
        assert!(r.mark_winner(ctx.trace_id, ctx.span_id));
        assert!(r.spans().snapshot()[0].winner);
        // Raising the slow threshold filters fast spans out.
        r.set_slow_threshold(Duration::from_micros(1000));
        r.record_span(span);
        assert_eq!(r.spans().len(), 1);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let r = MetricsRegistry::new();
        r.add_request();
        r.record_client("echo", Duration::from_micros(250));
        r.record_server("echo", Duration::from_micros(90));
        let text = r.prometheus_text();
        // Every family declared exactly once.
        let mut families = std::collections::HashSet::new();
        for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
            let fam = line.split_whitespace().nth(2).unwrap();
            assert!(families.insert(fam.to_string()), "duplicate family {fam}");
        }
        assert!(text.contains("mockingbird_requests_total 1"));
        // The artifact-store families export alongside everything else.
        r.add_artifact_hits(5);
        r.add_peer_fetch();
        r.add_peer_fetch_bytes(640);
        r.add_artifact_integrity_failure();
        let text = r.prometheus_text();
        assert!(text.contains("mockingbird_artifact_hits_total 5"));
        assert!(text.contains("mockingbird_artifact_misses_total 0"));
        assert!(text.contains("mockingbird_artifact_evictions_total 0"));
        assert!(text.contains("mockingbird_peer_fetches_total 1"));
        assert!(text.contains("mockingbird_peer_fetch_bytes_total 640"));
        assert!(text.contains("mockingbird_artifact_integrity_failures_total 1"));
        assert!(text.contains("side=\"client\",op=\"echo\",quantile=\"0.5\""));
        assert!(text
            .contains("mockingbird_op_latency_microseconds_count{side=\"server\",op=\"echo\"} 1"));
        let json = r.json_snapshot();
        assert!(json.contains("\"requests\":1"));
        assert!(json.contains("\"client_ops\":{\"echo\""));
    }
}
