//! Runtime counters.
//!
//! The transport and proxy layers record what crosses the wire —
//! requests sent, replies received, retries, deadline expiries, and raw
//! bytes in each direction — into a process-wide set of atomics.
//! [`snapshot`] reads them all at once for reporting (the benchmark
//! report binary prints a snapshot after its messaging runs), and
//! [`reset`] zeroes them between measurement sections.

use std::sync::atomic::{AtomicU64, Ordering};

/// The process-wide counter set.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: AtomicU64,
    replies: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    bytes_marshalled: AtomicU64,
    bytes_unmarshalled: AtomicU64,
    programs_compiled: AtomicU64,
    program_cache_hits: AtomicU64,
    pool_reuses: AtomicU64,
    pool_misses: AtomicU64,
    handshakes: AtomicU64,
    handshake_rejects: AtomicU64,
    handshake_fallbacks: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_half_opens: AtomicU64,
    breaker_closes: AtomicU64,
    sheds: AtomicU64,
    overloads: AtomicU64,
    hedges_fired: AtomicU64,
    hedges_won: AtomicU64,
    faults_injected: AtomicU64,
}

/// A consistent-enough point-in-time copy of every counter.
///
/// Each field is read atomically; the set as a whole is not a single
/// atomic transaction, which is fine for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Request frames handed to a connection (every retry counts).
    pub requests: u64,
    /// Reply frames successfully correlated back to a caller.
    pub replies: u64,
    /// Re-sends of idempotent calls after transport/timeout failures.
    pub retries: u64,
    /// Calls whose deadline elapsed before a reply arrived.
    pub timeouts: u64,
    /// Frame bytes written to sockets/streams.
    pub bytes_sent: u64,
    /// Frame bytes read from sockets/streams.
    pub bytes_received: u64,
    /// CDR body bytes produced by the data plane (native → wire).
    pub bytes_marshalled: u64,
    /// CDR body bytes consumed by the data plane (wire → native).
    pub bytes_unmarshalled: u64,
    /// Wire programs compiled from plans or types.
    pub programs_compiled: u64,
    /// Wire-program lookups served from a program cache.
    pub program_cache_hits: u64,
    /// Marshal buffers handed out from a pool with warmed capacity.
    pub pool_reuses: u64,
    /// Marshal buffer requests that had to allocate fresh.
    pub pool_misses: u64,
    /// Connect-time handshakes attempted (client side).
    pub handshakes: u64,
    /// Handshakes rejected for protocol/interface skew (both sides).
    pub handshake_rejects: u64,
    /// Handshakes that degraded to the interpretive marshal path.
    pub handshake_fallbacks: u64,
    /// Circuit-breaker transitions into the open state.
    pub breaker_opens: u64,
    /// Circuit-breaker transitions into the half-open state.
    pub breaker_half_opens: u64,
    /// Circuit-breaker transitions back to the closed state.
    pub breaker_closes: u64,
    /// Requests the server shed instead of queueing (Overloaded reply).
    pub sheds: u64,
    /// Overloaded replies received by clients.
    pub overloads: u64,
    /// Hedged second attempts launched after the hedge delay.
    pub hedges_fired: u64,
    /// Hedged calls won by the second attempt.
    pub hedges_won: u64,
    /// Faults injected by the chaos transport (drops, truncations,
    /// corruptions, disconnects — delays are not counted).
    pub faults_injected: u64,
}

impl Metrics {
    /// A zeroed counter set.
    #[must_use]
    pub const fn new() -> Self {
        Metrics {
            requests: AtomicU64::new(0),
            replies: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            bytes_marshalled: AtomicU64::new(0),
            bytes_unmarshalled: AtomicU64::new(0),
            programs_compiled: AtomicU64::new(0),
            program_cache_hits: AtomicU64::new(0),
            pool_reuses: AtomicU64::new(0),
            pool_misses: AtomicU64::new(0),
            handshakes: AtomicU64::new(0),
            handshake_rejects: AtomicU64::new(0),
            handshake_fallbacks: AtomicU64::new(0),
            breaker_opens: AtomicU64::new(0),
            breaker_half_opens: AtomicU64::new(0),
            breaker_closes: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            overloads: AtomicU64::new(0),
            hedges_fired: AtomicU64::new(0),
            hedges_won: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
        }
    }

    /// Records one client-side handshake attempt.
    pub fn add_handshake(&self) {
        self.handshakes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one handshake rejected for protocol/interface skew.
    pub fn add_handshake_reject(&self) {
        self.handshake_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one handshake that degraded to the interpretive path.
    pub fn add_handshake_fallback(&self) {
        self.handshake_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one breaker transition to open.
    pub fn add_breaker_open(&self) {
        self.breaker_opens.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one breaker transition to half-open.
    pub fn add_breaker_half_open(&self) {
        self.breaker_half_opens.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one breaker transition back to closed.
    pub fn add_breaker_close(&self) {
        self.breaker_closes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request shed by the server.
    pub fn add_shed(&self) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one Overloaded reply received by a client.
    pub fn add_overload(&self) {
        self.overloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one hedged second attempt fired.
    pub fn add_hedge_fired(&self) {
        self.hedges_fired.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one hedged call won by the second attempt.
    pub fn add_hedge_won(&self) {
        self.hedges_won.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one chaos-injected fault.
    pub fn add_fault_injected(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request frame sent.
    pub fn add_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one reply frame delivered to its caller.
    pub fn add_reply(&self) {
        self.replies.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retry of an idempotent call.
    pub fn add_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one expired call deadline.
    pub fn add_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` frame bytes written.
    pub fn add_bytes_sent(&self, n: u64) {
        self.bytes_sent.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` frame bytes read.
    pub fn add_bytes_received(&self, n: u64) {
        self.bytes_received.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` CDR body bytes marshalled (native → wire).
    pub fn add_bytes_marshalled(&self, n: u64) {
        self.bytes_marshalled.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` CDR body bytes unmarshalled (wire → native).
    pub fn add_bytes_unmarshalled(&self, n: u64) {
        self.bytes_unmarshalled.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` wire-program compilations.
    pub fn add_programs_compiled(&self, n: u64) {
        self.programs_compiled.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` program-cache hits.
    pub fn add_program_cache_hits(&self, n: u64) {
        self.program_cache_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one pooled buffer handed out with warmed capacity.
    pub fn add_pool_reuse(&self) {
        self.pool_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one pool request that allocated a fresh buffer.
    pub fn add_pool_miss(&self) {
        self.pool_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            replies: self.replies.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            bytes_marshalled: self.bytes_marshalled.load(Ordering::Relaxed),
            bytes_unmarshalled: self.bytes_unmarshalled.load(Ordering::Relaxed),
            programs_compiled: self.programs_compiled.load(Ordering::Relaxed),
            program_cache_hits: self.program_cache_hits.load(Ordering::Relaxed),
            pool_reuses: self.pool_reuses.load(Ordering::Relaxed),
            pool_misses: self.pool_misses.load(Ordering::Relaxed),
            handshakes: self.handshakes.load(Ordering::Relaxed),
            handshake_rejects: self.handshake_rejects.load(Ordering::Relaxed),
            handshake_fallbacks: self.handshake_fallbacks.load(Ordering::Relaxed),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            breaker_half_opens: self.breaker_half_opens.load(Ordering::Relaxed),
            breaker_closes: self.breaker_closes.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            overloads: self.overloads.load(Ordering::Relaxed),
            hedges_fired: self.hedges_fired.load(Ordering::Relaxed),
            hedges_won: self.hedges_won.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.replies.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.timeouts.store(0, Ordering::Relaxed);
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
        self.bytes_marshalled.store(0, Ordering::Relaxed);
        self.bytes_unmarshalled.store(0, Ordering::Relaxed);
        self.programs_compiled.store(0, Ordering::Relaxed);
        self.program_cache_hits.store(0, Ordering::Relaxed);
        self.pool_reuses.store(0, Ordering::Relaxed);
        self.pool_misses.store(0, Ordering::Relaxed);
        self.handshakes.store(0, Ordering::Relaxed);
        self.handshake_rejects.store(0, Ordering::Relaxed);
        self.handshake_fallbacks.store(0, Ordering::Relaxed);
        self.breaker_opens.store(0, Ordering::Relaxed);
        self.breaker_half_opens.store(0, Ordering::Relaxed);
        self.breaker_closes.store(0, Ordering::Relaxed);
        self.sheds.store(0, Ordering::Relaxed);
        self.overloads.store(0, Ordering::Relaxed);
        self.hedges_fired.store(0, Ordering::Relaxed);
        self.hedges_won.store(0, Ordering::Relaxed);
        self.faults_injected.store(0, Ordering::Relaxed);
    }
}

static GLOBAL: Metrics = Metrics::new();

/// The process-wide counters the runtime layers record into.
#[must_use]
pub fn global() -> &'static Metrics {
    &GLOBAL
}

/// Snapshot of the process-wide counters.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    GLOBAL.snapshot()
}

/// Zeroes the process-wide counters.
pub fn reset() {
    GLOBAL.reset()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = Metrics::new();
        m.add_request();
        m.add_request();
        m.add_reply();
        m.add_retry();
        m.add_timeout();
        m.add_bytes_sent(100);
        m.add_bytes_received(60);
        m.add_bytes_marshalled(48);
        m.add_bytes_unmarshalled(24);
        m.add_programs_compiled(2);
        m.add_program_cache_hits(5);
        m.add_pool_reuse();
        m.add_pool_reuse();
        m.add_pool_miss();
        m.add_handshake();
        m.add_handshake_reject();
        m.add_handshake_fallback();
        m.add_breaker_open();
        m.add_breaker_half_open();
        m.add_breaker_close();
        m.add_shed();
        m.add_overload();
        m.add_hedge_fired();
        m.add_hedge_won();
        m.add_fault_injected();
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.replies, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.bytes_sent, 100);
        assert_eq!(s.bytes_received, 60);
        assert_eq!(s.bytes_marshalled, 48);
        assert_eq!(s.bytes_unmarshalled, 24);
        assert_eq!(s.programs_compiled, 2);
        assert_eq!(s.program_cache_hits, 5);
        assert_eq!(s.pool_reuses, 2);
        assert_eq!(s.pool_misses, 1);
        assert_eq!(s.handshakes, 1);
        assert_eq!(s.handshake_rejects, 1);
        assert_eq!(s.handshake_fallbacks, 1);
        assert_eq!(s.breaker_opens, 1);
        assert_eq!(s.breaker_half_opens, 1);
        assert_eq!(s.breaker_closes, 1);
        assert_eq!(s.sheds, 1);
        assert_eq!(s.overloads, 1);
        assert_eq!(s.hedges_fired, 1);
        assert_eq!(s.hedges_won, 1);
        assert_eq!(s.faults_injected, 1);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn global_counters_are_reachable() {
        // Other tests in the process also write these; only check that
        // recording is visible, not absolute values.
        let before = snapshot().bytes_sent;
        global().add_bytes_sent(7);
        assert!(snapshot().bytes_sent >= before + 7);
    }
}
