//! Poison-recovering lock accessors.
//!
//! The runtime's shared state (waiter tables, pool slots, breaker
//! windows, dispatch registries) is guarded by `std::sync` locks. The
//! default accessors panic when a lock is poisoned — which turns one
//! panicking thread into a cascade: a dispatch worker that dies while
//! holding a slot lock would take every unrelated connection that later
//! touches the same lock down with it.
//!
//! None of the runtime's critical sections leave their data in a
//! half-written state that a later reader could misinterpret: they
//! insert/remove map entries, swap enum variants, or bump counters,
//! each of which is complete or not-yet-done at every panic point. So
//! the correct recovery is to take the guard and keep going, which is
//! what [`LockExt::plock`], [`RwLockExt::pread`] and
//! [`RwLockExt::pwrite`] do. Handler panics themselves are contained
//! at the dispatch boundary (see [`crate::dispatch::Dispatcher`]),
//! which converts them into a `SystemException` reply for that call
//! only.

use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::time::Duration;

/// Poison-recovering accessor for [`Mutex`].
pub trait LockExt<T> {
    /// Locks, recovering the guard from a poisoned lock instead of
    /// panicking.
    fn plock(&self) -> MutexGuard<'_, T>;
}

impl<T> LockExt<T> for Mutex<T> {
    fn plock(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Poison-recovering accessors for [`RwLock`].
pub trait RwLockExt<T> {
    /// Read-locks, recovering from poison instead of panicking.
    fn pread(&self) -> RwLockReadGuard<'_, T>;
    /// Write-locks, recovering from poison instead of panicking.
    fn pwrite(&self) -> RwLockWriteGuard<'_, T>;
}

impl<T> RwLockExt<T> for RwLock<T> {
    fn pread(&self) -> RwLockReadGuard<'_, T> {
        self.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn pwrite(&self) -> RwLockWriteGuard<'_, T> {
        self.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// [`Condvar::wait`], recovering the guard from poison.
pub fn cv_wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`], recovering the guard from poison. The
/// timed-out flag is dropped: callers re-check their predicate and
/// their own clock, which is the only race-free pattern anyway.
pub fn cv_wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> MutexGuard<'a, T> {
    match cv.wait_timeout(guard, dur) {
        Ok((g, _)) => g,
        Err(poisoned) => poisoned.into_inner().0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn plock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.plock();
            panic!("poison the lock");
        })
        .join();
        assert!(m.lock().is_err(), "lock really is poisoned");
        assert_eq!(*m.plock(), 7, "plock still hands out the guard");
        *m.plock() = 8;
        assert_eq!(*m.plock(), 8);
    }

    #[test]
    fn rwlock_accessors_recover_from_poison() {
        let l = Arc::new(RwLock::new(1u32));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.pwrite();
            panic!("poison the rwlock");
        })
        .join();
        assert_eq!(*l.pread(), 1);
        *l.pwrite() = 2;
        assert_eq!(*l.pread(), 2);
    }
}
