//! Servants, wire-typed operations, and the request dispatcher.

use std::collections::HashMap;
use std::sync::Arc;

use std::sync::RwLock;

use mockingbird_mtype::{MtypeGraph, MtypeId};
use mockingbird_values::{Endian, MValue};
use mockingbird_wire::{
    nominal_fingerprint, CdrReader, CdrWriter, Message, MessageKind, ReplyStatus, WireProgram,
};

use mockingbird_obs::{SpanKind, SpanRecord};

use crate::error::RuntimeError;
use crate::metrics::MetricsRegistry;
use crate::sync::RwLockExt;

/// An invocable object: receives its inputs as a `Record` value and
/// returns its outputs as a `Record` value (the `I`/`O` of the paper's
/// `port(Record(I, port(O)))` shape).
pub trait Servant: Send + Sync {
    /// Handles one invocation.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownOperation`] for unknown names or
    /// [`RuntimeError::Application`] for application failures.
    fn invoke(&self, operation: &str, args: MValue) -> Result<MValue, RuntimeError>;
}

impl<F> Servant for F
where
    F: Fn(&str, MValue) -> Result<MValue, RuntimeError> + Send + Sync,
{
    fn invoke(&self, operation: &str, args: MValue) -> Result<MValue, RuntimeError> {
        self(operation, args)
    }
}

/// The wire types of one operation: the Mtypes its argument and result
/// records encode against. Both sides of a connection hold the same
/// `WireOp` (the Mtype plays the role GIOP gives the IDL type).
///
/// Construction compiles fused identity [`WireProgram`]s for both types
/// (both ends of a `WireOp` share the Mtype, so the coercion is the
/// identity); encode/decode run them in one pass with no graph walk.
/// Types the program compiler declines fall back to the interpretive
/// `put_value`/`get_value` path transparently.
#[derive(Debug, Clone)]
pub struct WireOp {
    /// The graph the ids live in.
    pub graph: Arc<MtypeGraph>,
    /// The input record Mtype.
    pub args_ty: MtypeId,
    /// The output record Mtype.
    pub result_ty: MtypeId,
    /// Whether re-invoking after an ambiguous failure is safe. Only
    /// idempotent operations participate in the client's retry policy.
    pub idempotent: bool,
    /// Fused identity program for `args_ty` (`None`: interpretive path).
    args_program: Option<Arc<WireProgram>>,
    /// Fused identity program for `result_ty`.
    result_program: Option<Arc<WireProgram>>,
    /// How many fused programs construction compiled (reported to the
    /// registry when one is attached).
    compiled: u64,
    /// The registry marshalling byte counts are recorded into; attached
    /// when the op joins a node (servant registration / proxy build).
    metrics: Option<Arc<MetricsRegistry>>,
}

impl WireOp {
    /// A non-idempotent operation over `graph` (use [`idempotent`] to
    /// opt into retries). Compiles the fused marshal programs up front.
    ///
    /// [`idempotent`]: WireOp::idempotent
    #[must_use]
    pub fn new(graph: Arc<MtypeGraph>, args_ty: MtypeId, result_ty: MtypeId) -> Self {
        let args_program = WireProgram::identity(&graph, args_ty).ok().map(Arc::new);
        let result_program = if result_ty == args_ty {
            args_program.clone()
        } else {
            WireProgram::identity(&graph, result_ty).ok().map(Arc::new)
        };
        let compiled = args_program.is_some() as u64 + result_program.is_some() as u64;
        WireOp {
            graph,
            args_ty,
            result_ty,
            idempotent: false,
            args_program,
            result_program,
            compiled,
            metrics: None,
        }
    }

    /// Scopes this operation's marshalling metrics to `registry` and
    /// credits the registry with the programs compiled at construction.
    /// Later calls are no-ops, so an op adopted by a node keeps that
    /// node's registry.
    pub fn attach_metrics(&mut self, registry: &Arc<MetricsRegistry>) {
        if self.metrics.is_none() {
            registry.add_programs_compiled(self.compiled);
            self.metrics = Some(Arc::clone(registry));
        }
    }

    /// Builder form of [`attach_metrics`](WireOp::attach_metrics).
    #[must_use]
    pub fn with_metrics(mut self, registry: &Arc<MetricsRegistry>) -> Self {
        self.attach_metrics(registry);
        self
    }

    /// Rebinds the operation to `registry` even if one is already
    /// attached, crediting the compiled-program count to the new
    /// registry (the old one is being abandoned by the caller).
    pub fn rebind_metrics(&mut self, registry: &Arc<MetricsRegistry>) {
        self.metrics = None;
        self.attach_metrics(registry);
    }

    /// Marks the operation safe to retry after transport failures and
    /// expired deadlines.
    #[must_use]
    pub fn idempotent(mut self) -> Self {
        self.idempotent = true;
        self
    }

    /// Whether `ty` has a fused program on this operation.
    pub fn is_fused(&self, ty: MtypeId) -> bool {
        self.program_for(ty).is_some()
    }

    fn program_for(&self, ty: MtypeId) -> Option<&Arc<WireProgram>> {
        if ty == self.args_ty {
            self.args_program.as_ref()
        } else if ty == self.result_ty {
            self.result_program.as_ref()
        } else {
            None
        }
    }

    /// Encodes an argument/result record for the wire.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Conversion`] when the value does not
    /// inhabit the Mtype.
    pub fn encode(
        &self,
        ty: MtypeId,
        value: &MValue,
        endian: Endian,
    ) -> Result<Vec<u8>, RuntimeError> {
        let mut w = CdrWriter::new(endian);
        self.encode_with(&mut w, ty, value)?;
        Ok(w.into_bytes())
    }

    /// Encodes into a caller-owned (pooled) writer — the allocation-free
    /// entry point of the fused marshal path.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Conversion`] when the value does not
    /// inhabit the Mtype.
    pub fn encode_with(
        &self,
        w: &mut CdrWriter,
        ty: MtypeId,
        value: &MValue,
    ) -> Result<(), RuntimeError> {
        let before = w.len();
        match self.program_for(ty) {
            Some(p) => p
                .encode_value(w, value)
                .map_err(|e| RuntimeError::Conversion(e.to_string()))?,
            None => w
                .put_value(&self.graph, ty, value)
                .map_err(|e| RuntimeError::Conversion(e.to_string()))?,
        }
        if let Some(m) = &self.metrics {
            m.add_bytes_marshalled((w.len() - before) as u64);
        }
        Ok(())
    }

    /// Decodes an argument/result record from the wire.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Conversion`] on malformed bodies.
    pub fn decode(&self, ty: MtypeId, body: &[u8], endian: Endian) -> Result<MValue, RuntimeError> {
        let mut r = CdrReader::new(body, endian);
        let value = match self.program_for(ty) {
            Some(p) if p.two_way() => p
                .decode_value(&mut r)
                .map_err(|e| RuntimeError::Conversion(e.to_string()))?,
            _ => r
                .get_value(&self.graph, ty)
                .map_err(|e| RuntimeError::Conversion(e.to_string()))?,
        };
        if let Some(m) = &self.metrics {
            m.add_bytes_unmarshalled((body.len() - r.remaining()) as u64);
        }
        Ok(value)
    }
}

/// An order-independent fingerprint of an operation table.
///
/// Each operation contributes a digest of its name and the *nominal*
/// fingerprints of its argument and result Mtypes; the digests combine
/// with a wrapping sum, so iteration order (and hence `HashMap`
/// ordering) cannot change the value. Two peers agree on this
/// fingerprint exactly when their stubs were compiled from the same
/// pairs of declarations — the property the connect-time handshake
/// checks before any request is decoded.
pub fn interface_fingerprint(ops: &HashMap<String, WireOp>) -> u128 {
    const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    ops.iter().fold(0u128, |acc, (name, op)| {
        let mut h = FNV_OFFSET;
        for &b in name.as_bytes() {
            h = (h ^ u128::from(b)).wrapping_mul(FNV_PRIME);
        }
        for word in [
            nominal_fingerprint(&op.graph, op.args_ty),
            nominal_fingerprint(&op.graph, op.result_ty),
        ] {
            h = (h ^ word).wrapping_mul(FNV_PRIME);
        }
        acc.wrapping_add(h)
    })
}

/// A servant plus the wire types of its operations: everything the
/// dispatcher needs to decode a request body and encode the reply.
pub struct WireServant {
    ops: HashMap<String, WireOp>,
    inner: Arc<dyn Servant>,
}

impl WireServant {
    /// Wraps a servant with its operation table.
    pub fn new(inner: Arc<dyn Servant>, ops: HashMap<String, WireOp>) -> Self {
        WireServant { ops, inner }
    }

    /// The wire types of `operation`, if declared.
    pub fn op(&self, operation: &str) -> Option<&WireOp> {
        self.ops.get(operation)
    }

    /// The [`interface_fingerprint`] of this servant's operation table.
    pub fn interface_fingerprint(&self) -> u128 {
        interface_fingerprint(&self.ops)
    }

    /// Decodes, invokes, and re-encodes one request.
    ///
    /// # Errors
    ///
    /// Propagates decoding, dispatch and application failures.
    pub fn handle(
        &self,
        operation: &str,
        body: &[u8],
        endian: Endian,
    ) -> Result<Vec<u8>, RuntimeError> {
        let op = self
            .ops
            .get(operation)
            .ok_or_else(|| RuntimeError::UnknownOperation(operation.to_string()))?;
        let args = op.decode(op.args_ty, body, endian)?;
        let result = self.inner.invoke(operation, args)?;
        op.encode(op.result_ty, &result, endian)
    }
}

/// Routes framed requests to registered servants.
///
/// Owns the server side's [`MetricsRegistry`]: per-operation dispatch
/// histograms, marshalling byte counts from every registered op, and
/// sampled server spans all land here, scoped to this node.
#[derive(Default)]
pub struct Dispatcher {
    servants: RwLock<HashMap<Vec<u8>, Arc<WireServant>>>,
    metrics: Arc<MetricsRegistry>,
}

impl Dispatcher {
    /// Creates an empty dispatcher with a fresh metrics registry.
    pub fn new() -> Self {
        Dispatcher::default()
    }

    /// Creates an empty dispatcher recording into `metrics`.
    pub fn with_metrics(metrics: Arc<MetricsRegistry>) -> Self {
        Dispatcher {
            servants: RwLock::new(HashMap::new()),
            metrics,
        }
    }

    /// This node's metrics registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Registers a servant under an object key. The servant's operations
    /// are scoped to this dispatcher's metrics registry.
    pub fn register(&self, object_key: impl Into<Vec<u8>>, mut servant: WireServant) {
        for op in servant.ops.values_mut() {
            op.attach_metrics(&self.metrics);
        }
        self.servants
            .pwrite()
            .insert(object_key.into(), Arc::new(servant));
    }

    /// Removes a servant; returns whether one was registered.
    pub fn unregister(&self, object_key: &[u8]) -> bool {
        self.servants.pwrite().remove(object_key).is_some()
    }

    /// Number of registered servants.
    pub fn len(&self) -> usize {
        self.servants.pread().len()
    }

    /// Whether no servants are registered.
    pub fn is_empty(&self) -> bool {
        self.servants.pread().is_empty()
    }

    /// A fingerprint over every registered servant's operation table
    /// (wrapping sum: registration order does not matter). Servers hand
    /// this to the connect-time handshake as their side of the
    /// declaration pair.
    pub fn interface_fingerprint(&self) -> u128 {
        self.servants
            .pread()
            .values()
            .fold(0u128, |acc, s| acc.wrapping_add(s.interface_fingerprint()))
    }

    /// Handles one framed message, producing the reply frame (`None`
    /// for oneway requests, which get no reply even on failure).
    pub fn dispatch(&self, msg: &Message) -> Option<Message> {
        self.dispatch_with_deadline(msg, None)
    }

    /// [`dispatch`](Dispatcher::dispatch) under the request's propagated
    /// deadline: when `expires_at` has already passed the servant is
    /// *not* invoked — the caller stopped waiting, so executing would
    /// burn capacity on a result nobody reads — and the request is
    /// answered with `DeadlineExpired` instead.
    pub fn dispatch_with_deadline(
        &self,
        msg: &Message,
        expires_at: Option<std::time::Instant>,
    ) -> Option<Message> {
        if expires_at.is_some_and(|at| std::time::Instant::now() >= at) {
            return deadline_expired_reply(msg, &self.metrics);
        }
        let MessageKind::Request {
            request_id,
            response_expected,
            object_key,
            operation,
        } = &msg.kind
        else {
            // A stray Reply: nothing to do.
            return None;
        };
        let servant = self.servants.pread().get(object_key.as_slice()).cloned();
        let start = std::time::Instant::now();
        let fused = servant
            .as_ref()
            .and_then(|s| s.op(operation))
            .is_some_and(|op| op.is_fused(op.args_ty) && op.is_fused(op.result_ty));
        let outcome = match servant {
            // Contain handler panics at the dispatch boundary: the
            // panicking call gets a SystemException reply and every
            // other connection (and this worker) keeps serving, instead
            // of the worker dying and poisoning shared locks.
            Some(s) => {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    s.handle(operation, &msg.body, msg.endian)
                })) {
                    Ok(result) => result,
                    Err(payload) => {
                        let what = payload
                            .downcast_ref::<&str>()
                            .map(ToString::to_string)
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "opaque panic payload".into());
                        Err(RuntimeError::Protocol(format!(
                            "servant panicked handling {operation}: {what}"
                        )))
                    }
                }
            }
            None => Err(RuntimeError::UnknownObject(
                String::from_utf8_lossy(object_key).into_owned(),
            )),
        };
        let elapsed = start.elapsed();
        self.metrics.record_server(operation, elapsed);
        // The propagated context keeps the client's trace id through the
        // dispatch worker; the server span is a child of the attempt
        // span that carried the request.
        let duration_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        if let Some(t) = msg
            .trace
            .filter(|t| t.sampled && self.metrics.wants_span(duration_us))
        {
            let mut span = SpanRecord::new(t.child(), SpanKind::Server, operation.as_str());
            span.parent_span_id = t.span_id;
            span.fused = fused;
            span.start_us = self.metrics.spans().now_us().saturating_sub(duration_us);
            span.duration_us = duration_us;
            span.bytes_in = msg.body.len() as u64;
            span.bytes_out = match &outcome {
                Ok(body) => body.len() as u64,
                Err(_) => 0,
            };
            span.error = outcome.as_ref().err().map(ToString::to_string);
            self.metrics.record_span(span);
        }
        if !response_expected {
            return None;
        }
        Some(match outcome {
            Ok(body) => Message::reply(*request_id, ReplyStatus::NoException, msg.endian, body),
            Err(e) => {
                let status = match e {
                    RuntimeError::Application(_) => ReplyStatus::UserException,
                    _ => ReplyStatus::SystemException,
                };
                let mut w = CdrWriter::new(msg.endian);
                w.put_bytes(e.to_string().as_bytes());
                Message::reply(*request_id, status, msg.endian, w.into_bytes())
            }
        })
    }
}

/// The `DeadlineExpired` refusal reply for `msg` (`None` for oneways,
/// which get no reply even when refused). Counts into
/// `deadline_expired_server` either way: the refusal happened whether
/// or not the caller hears about it.
pub(crate) fn deadline_expired_reply(msg: &Message, metrics: &MetricsRegistry) -> Option<Message> {
    metrics.add_deadline_expired_server();
    let MessageKind::Request {
        request_id,
        response_expected: true,
        ..
    } = &msg.kind
    else {
        return None;
    };
    let mut w = CdrWriter::new(msg.endian);
    w.put_bytes(b"deadline expired before dispatch");
    Some(Message::reply(
        *request_id,
        ReplyStatus::DeadlineExpired,
        msg.endian,
        w.into_bytes(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mockingbird_mtype::{IntRange, RealPrecision};

    fn echo_setup() -> (Dispatcher, Arc<MtypeGraph>, MtypeId) {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let rec = g.record(vec![i]);
        let graph = Arc::new(g);
        let op = WireOp::new(graph.clone(), rec, rec);
        let servant: Arc<dyn Servant> = Arc::new(|op: &str, args: MValue| {
            if op == "echo" {
                Ok(args)
            } else if op == "boom" {
                Err(RuntimeError::Application("deliberate".into()))
            } else {
                Err(RuntimeError::UnknownOperation(op.to_string()))
            }
        });
        let mut ops = HashMap::new();
        ops.insert("echo".to_string(), op.clone());
        ops.insert("boom".to_string(), op);
        let d = Dispatcher::new();
        d.register(b"obj".to_vec(), WireServant::new(servant, ops));
        (d, graph, rec)
    }

    fn encode_args(graph: &MtypeGraph, ty: MtypeId, v: &MValue) -> Vec<u8> {
        let mut w = CdrWriter::new(Endian::Little);
        w.put_value(graph, ty, v).unwrap();
        w.into_bytes()
    }

    #[test]
    fn dispatch_echo_round_trip() {
        let (d, graph, rec) = echo_setup();
        let v = MValue::Record(vec![MValue::Int(41)]);
        let body = encode_args(&graph, rec, &v);
        let req = Message::request(1, true, b"obj".to_vec(), "echo", Endian::Little, body);
        let reply = d.dispatch(&req).unwrap();
        let MessageKind::Reply { request_id, status } = reply.kind else {
            panic!()
        };
        assert_eq!(request_id, 1);
        assert_eq!(status, ReplyStatus::NoException);
        let mut r = CdrReader::new(&reply.body, reply.endian);
        assert_eq!(r.get_value(&graph, rec).unwrap(), v);
    }

    #[test]
    fn unknown_object_and_operation_become_system_exceptions() {
        let (d, graph, rec) = echo_setup();
        let body = encode_args(&graph, rec, &MValue::Record(vec![MValue::Int(0)]));
        let req = Message::request(
            2,
            true,
            b"nope".to_vec(),
            "echo",
            Endian::Little,
            body.clone(),
        );
        let reply = d.dispatch(&req).unwrap();
        assert!(matches!(
            reply.kind,
            MessageKind::Reply {
                status: ReplyStatus::SystemException,
                ..
            }
        ));
        let req = Message::request(3, true, b"obj".to_vec(), "missing", Endian::Little, body);
        let reply = d.dispatch(&req).unwrap();
        assert!(matches!(
            reply.kind,
            MessageKind::Reply {
                status: ReplyStatus::SystemException,
                ..
            }
        ));
    }

    #[test]
    fn application_errors_become_user_exceptions() {
        let (d, graph, rec) = echo_setup();
        let body = encode_args(&graph, rec, &MValue::Record(vec![MValue::Int(0)]));
        let req = Message::request(4, true, b"obj".to_vec(), "boom", Endian::Little, body);
        let reply = d.dispatch(&req).unwrap();
        let MessageKind::Reply { status, .. } = reply.kind else {
            panic!()
        };
        assert_eq!(status, ReplyStatus::UserException);
        let mut r = CdrReader::new(&reply.body, reply.endian);
        let text = String::from_utf8_lossy(r.get_bytes().unwrap()).into_owned();
        assert!(text.contains("deliberate"));
    }

    #[test]
    fn oneway_requests_get_no_reply_even_on_failure() {
        let (d, graph, rec) = echo_setup();
        let body = encode_args(&graph, rec, &MValue::Record(vec![MValue::Int(0)]));
        let req = Message::request(5, false, b"nope".to_vec(), "echo", Endian::Little, body);
        assert!(d.dispatch(&req).is_none());
    }

    #[test]
    fn cross_endian_dispatch() {
        let (d, graph, rec) = echo_setup();
        let mut w = CdrWriter::new(Endian::Big);
        let v = MValue::Record(vec![MValue::Int(7)]);
        w.put_value(&graph, rec, &v).unwrap();
        let req = Message::request(
            6,
            true,
            b"obj".to_vec(),
            "echo",
            Endian::Big,
            w.into_bytes(),
        );
        let reply = d.dispatch(&req).unwrap();
        let mut r = CdrReader::new(&reply.body, reply.endian);
        assert_eq!(r.get_value(&graph, rec).unwrap(), v);
    }

    #[test]
    fn fused_wire_op_matches_interpretive_bytes() {
        let mut g = MtypeGraph::new();
        let i32_ = g.integer(IntRange::signed_bits(32));
        let i8_ = g.integer(IntRange::signed_bits(8));
        let r = g.real(RealPrecision::DOUBLE);
        let list = g.list_of(i8_);
        let u = g.unit();
        let c = g.choice(vec![u, i32_]);
        let rec = g.record(vec![i32_, r, list, c]);
        let graph = Arc::new(g);
        let op = WireOp::new(graph.clone(), rec, rec);
        assert!(op.is_fused(rec));
        let v = MValue::Record(vec![
            MValue::Int(-7),
            MValue::Real(2.5),
            MValue::List(vec![MValue::Int(1), MValue::Int(2)]),
            MValue::Choice {
                index: 1,
                value: Box::new(MValue::Int(9)),
            },
        ]);
        for endian in [Endian::Little, Endian::Big] {
            let fused = op.encode(rec, &v, endian).unwrap();
            let mut w = CdrWriter::new(endian);
            w.put_value(&graph, rec, &v).unwrap();
            assert_eq!(fused, w.into_bytes(), "fused encode diverges ({endian:?})");
            assert_eq!(op.decode(rec, &fused, endian).unwrap(), v);
        }
    }

    #[test]
    fn interface_fingerprint_tracks_declarations() {
        let mut g = MtypeGraph::new();
        let i = g.integer(IntRange::signed_bits(32));
        let rec = g.record(vec![i]);
        let wide = g.integer(IntRange::signed_bits(64));
        let wide_rec = g.record(vec![wide]);
        let graph = Arc::new(g);
        let op = WireOp::new(graph.clone(), rec, rec);

        // Same table built in different insertion orders: same value.
        let mut a = HashMap::new();
        a.insert("add".to_string(), op.clone());
        a.insert("sub".to_string(), op.clone());
        let mut b = HashMap::new();
        b.insert("sub".to_string(), op.clone());
        b.insert("add".to_string(), op.clone());
        assert_eq!(interface_fingerprint(&a), interface_fingerprint(&b));

        // Renaming an operation changes it.
        let mut renamed = a.clone();
        let v = renamed.remove("sub").unwrap();
        renamed.insert("mul".to_string(), v);
        assert_ne!(interface_fingerprint(&a), interface_fingerprint(&renamed));

        // Changing an argument type changes it.
        let mut retyped = a.clone();
        retyped.insert("sub".to_string(), WireOp::new(graph, wide_rec, rec));
        assert_ne!(interface_fingerprint(&a), interface_fingerprint(&retyped));

        // Dispatcher and WireServant expose the same digest machinery.
        let servant: Arc<dyn Servant> = Arc::new(|_: &str, v: MValue| Ok(v));
        let d = Dispatcher::new();
        d.register(b"x".to_vec(), WireServant::new(servant, a.clone()));
        assert_eq!(d.interface_fingerprint(), interface_fingerprint(&a));
    }

    #[test]
    fn register_unregister() {
        let (d, _, _) = echo_setup();
        assert_eq!(d.len(), 1);
        assert!(d.unregister(b"obj"));
        assert!(!d.unregister(b"obj"));
        assert!(d.is_empty());
    }
}
