//! The Mockingbird stub runtime.
//!
//! Generated stubs link against "a runtime system to provide a bridge
//! between heterogeneous components" (paper §3). This crate is that
//! runtime:
//!
//! - [`error::RuntimeError`] — the failure vocabulary shared by stubs;
//! - [`dispatch`] — servants (invocable objects), wire-typed operation
//!   tables, and the GIOP request dispatcher;
//! - [`transport`] — connections carrying framed messages: an in-memory
//!   loopback (marshalling without sockets) and a real TCP transport
//!   whose sockets are driven by the [`reactor`];
//! - [`reactor`] — the nonblocking readiness loop behind the TCP
//!   transport: resumable frame state machines, a waiter table keyed
//!   by request id, and a hashed deadline wheel for per-call timeouts;
//! - [`sync`] — poison-recovering lock accessors, so one panicking
//!   worker cannot cascade `PoisonError` panics across connections;
//! - [`node`] — a `Node` owns a dispatcher, a port table for the Port
//!   Mtype ("addresses to which values may be sent", §3.3), and
//!   messaging endpoints for send/receive stubs (the §5 collaboration
//!   study's model);
//! - [`proxy::RemoteRef`] — the client side of a remote object: encodes
//!   arguments by Mtype, frames a Request, awaits the Reply;
//! - [`pool::ConnectionPool`] — a dynamic set of multiplexed
//!   connections shared round-robin, reconnecting lazily after
//!   transport failures; [`pool::BufferPool`] — recycled marshal
//!   buffers so the fused data plane encodes without allocating once
//!   warmed;
//! - [`resolver`] — location-transparent naming: a [`Resolver`] maps an
//!   [`ObjectName`] (name + interface fingerprint) to the replicas
//!   currently serving it, feeding the pool's endpoint set; the fixed
//!   address list survives as the trivial [`StaticResolver`];
//! - [`options`] — per-call deadlines and retry policies;
//! - [`metrics`] — per-node [`MetricsRegistry`] handles: counters,
//!   per-operation latency histograms, a span log for sampled traces,
//!   and Prometheus/JSON rendering. Every [`Dispatcher`],
//!   [`pool::ConnectionPool`], and connection owns (or shares) one.

pub mod artifacts;
pub mod breaker;
pub mod budget;
pub mod chaos;
pub mod dispatch;
pub mod error;
pub mod limiter;
pub mod metrics;
pub mod node;
pub mod options;
pub mod pool;
pub mod proxy;
pub mod reactor;
pub mod resolver;
pub mod sync;
pub mod transport;

pub use artifacts::{fetch_artifacts, record_store_stats, warm_store_from_peers, FetchOutcome};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use budget::RetryBudget;
pub use chaos::{ChaosConfig, ChaosConnection, ChaosSchedule, Fault, FaultRecord};
pub use dispatch::{Dispatcher, Servant, WireOp, WireServant};
pub use error::RuntimeError;
pub use limiter::{Admission, AimdLimiter};
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use node::{Node, PortHandler};
pub use options::{CallOptions, Criticality, HedgePolicy, RetryPolicy};
pub use pool::{BufferPool, ConnectionPool, Connector, PoolBuilder, RequestEncoder};
pub use proxy::RemoteRef;
pub use reactor::{DeadlineWheel, FrameReader, FrameWriter};
pub use resolver::{ObjectName, ResolvedEndpoint, Resolver, StaticResolver};
pub use sync::{LockExt, RwLockExt};
pub use transport::{
    Connection, InMemoryConnection, MultiplexedConnection, ServerConfig, TcpConnection, TcpServer,
};

pub use mockingbird_obs::{
    Histogram, HistogramSnapshot, SpanKind, SpanLog, SpanRecord, TraceContext,
};

/// The names most programs need, in one import: builders for call,
/// retry, hedge, and server options, the pool and server types, and
/// the observability handles.
pub mod prelude {
    pub use crate::budget::RetryBudget;
    pub use crate::dispatch::{Dispatcher, WireOp, WireServant};
    pub use crate::metrics::MetricsRegistry;
    pub use crate::options::{CallOptions, Criticality, HedgePolicy, RetryPolicy};
    pub use crate::pool::{ConnectionPool, PoolBuilder};
    pub use crate::proxy::RemoteRef;
    pub use crate::resolver::{ObjectName, ResolvedEndpoint, Resolver, StaticResolver};
    pub use crate::transport::{Connection, ServerConfig, TcpServer};
    pub use mockingbird_obs::{HistogramSnapshot, SpanKind, SpanRecord, TraceContext};
}
