//! The readiness-driven reactor behind the TCP transports.
//!
//! One reactor thread owns a set of nonblocking sockets and drives all
//! of their I/O from a poll loop (`set_nonblocking` + resumable frame
//! state machines — the std-only discipline: no epoll binding, no
//! external event library). Three pieces make that workable:
//!
//! - [`FrameReader`] / [`FrameWriter`]: per-connection GIOP frame state
//!   machines. A read that stops mid-header or mid-body parks the
//!   partial bytes in the machine and resumes on the next readiness
//!   sweep; writes queue encoded frames and retire them byte-by-byte
//!   as the socket accepts them.
//! - a waker table ([`MuxCore`]): each in-flight client call parks its
//!   own thread and is unparked exactly when its reply, failure, or
//!   deadline arrives — replacing the broadcast `Condvar` the old
//!   transport shared across every waiter on a connection.
//! - a hashed [`DeadlineWheel`]: per-call deadlines are wheel entries
//!   owned by the reactor, not `set_read_timeout` mutations of a
//!   shared socket, so concurrent calls on one connection can no
//!   longer observe each other's timeouts.
//!
//! Client connections from every [`MultiplexedConnection`] in the
//! process share one global reactor thread (connection churn leaves
//! the thread count flat); each [`TcpServer`] runs its own reactor fed
//! by an acceptor thread and drained by a bounded worker pool.
//!
//! Connections the sweep has seen no traffic on for a few iterations
//! are demoted to a cold tier that is polled in stripes, so ten
//! thousand idle sockets cost a bounded number of syscalls per sweep
//! rather than ten thousand.
//!
//! [`MultiplexedConnection`]: crate::transport::MultiplexedConnection
//! [`TcpServer`]: crate::transport::TcpServer

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::Thread;
use std::time::{Duration, Instant};

use mockingbird_values::Endian;
use mockingbird_wire::{
    CdrWriter, HandshakeInfo, HandshakeVerdict, Message, MessageKind, ReplyStatus,
};

use crate::dispatch::deadline_expired_reply;
use crate::error::RuntimeError;
use crate::limiter::{Admission, AimdLimiter};
use crate::metrics::MetricsRegistry;
use crate::sync::LockExt;
use crate::transport::{FrameQueue, ServerConfig};

/// GIOP frame header length (magic + version + flags + declared size).
const HEADER_LEN: usize = 12;

/// Bytes one connection may consume per readiness sweep before the
/// reactor moves on: bounds how long one firehose socket can starve
/// its neighbours.
const READ_BUDGET: usize = 256 * 1024;

/// Frame buffers above this capacity are released after the frame is
/// parsed instead of being kept warm, so one jumbo frame does not pin
/// megabytes to an otherwise-idle connection.
const BUF_KEEP: usize = 64 * 1024;

/// Encoded-but-unwritten reply bytes a connection may accumulate
/// before the reactor declares the peer dead (a reader that stopped
/// reading must not buffer the server into the ground).
const WRITE_BACKLOG_MAX: usize = 64 * 1024 * 1024;

/// How long a nonempty write queue may make zero progress before the
/// connection is declared stalled (the old transport's 5 s socket
/// write timeout, relocated to the state machine).
const WRITE_STALL: Duration = Duration::from_secs(5);

/// Sweeps without traffic before a connection is demoted to the cold
/// tier.
const HOT_SWEEPS: u32 = 4;

/// Cold connections polled per sweep (the cold tier is striped; with
/// `c` cold connections each is visited roughly every `c / COLD_BATCH`
/// sweeps).
const COLD_BATCH: u64 = 256;

/// Park when at least one connection is hot or a deadline is armed.
const ACTIVE_PARK: Duration = Duration::from_micros(100);

/// Park when every connection is cold and no deadline is armed.
const IDLE_PARK: Duration = Duration::from_millis(5);

/// How long the drain phase of a server shutdown keeps flushing
/// pending reply bytes before giving up on the stragglers.
const DRAIN_FLUSH: Duration = Duration::from_secs(5);

fn is_would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

// ---------------------------------------------------------------------------
// Frame state machines
// ---------------------------------------------------------------------------

/// What one [`FrameReader::pump`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadPump {
    /// Bytes consumed from the source this pump.
    pub bytes: usize,
    /// The source reported a clean end-of-stream at a frame boundary.
    pub eof: bool,
}

/// A resumable GIOP frame reader: accumulates exactly one frame at a
/// time, surviving arbitrary splits — a pump may deliver half a
/// header, a header plus a third of the body, or six whole frames, and
/// the machine picks up where it left off on the next pump.
///
/// Hostile input is rejected before allocation: the declared frame
/// length is validated against the 16 MiB cap while only the 12-byte
/// header has been buffered (see
/// [`Message::frame_len`]).
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    filled: usize,
    need: usize,
}

impl FrameReader {
    /// A reader at a frame boundary.
    #[must_use]
    pub fn new() -> Self {
        FrameReader {
            buf: Vec::new(),
            filled: 0,
            need: HEADER_LEN,
        }
    }

    /// Whether the machine is mid-frame (a close now is abnormal).
    #[must_use]
    pub fn mid_frame(&self) -> bool {
        self.filled > 0
    }

    /// Reads as much as the source offers (up to `budget` bytes),
    /// appending every completed frame to `out`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Protocol`] for forged headers or unparseable
    /// frames, [`RuntimeError::Transport`] for mid-frame closes and
    /// socket errors. Either error poisons the connection; the machine
    /// is not meant to be pumped again after one.
    pub fn pump<R: Read + ?Sized>(
        &mut self,
        src: &mut R,
        out: &mut Vec<Message>,
        budget: usize,
    ) -> Result<ReadPump, RuntimeError> {
        let mut consumed = 0usize;
        loop {
            if consumed >= budget {
                return Ok(ReadPump {
                    bytes: consumed,
                    eof: false,
                });
            }
            if self.need == HEADER_LEN && self.filled == 0 {
                self.buf.resize(HEADER_LEN, 0);
            }
            match src.read(&mut self.buf[self.filled..self.need]) {
                Ok(0) => {
                    if self.filled == 0 {
                        return Ok(ReadPump {
                            bytes: consumed,
                            eof: true,
                        });
                    }
                    return Err(RuntimeError::Transport(
                        "connection closed mid-frame".into(),
                    ));
                }
                Ok(n) => {
                    self.filled += n;
                    consumed += n;
                    if self.filled < self.need {
                        continue;
                    }
                    if self.need == HEADER_LEN {
                        // The declared length is validated before any
                        // body buffer exists: a forged 4 GiB header
                        // costs 12 bytes, not an allocation.
                        let total = Message::frame_len(&self.buf[..HEADER_LEN])
                            .map_err(|e| RuntimeError::Protocol(e.to_string()))?;
                        if total > HEADER_LEN {
                            self.need = total;
                            self.buf.resize(total, 0);
                            continue;
                        }
                    }
                    self.finish(out)?;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if is_would_block(&e) => {
                    return Ok(ReadPump {
                        bytes: consumed,
                        eof: false,
                    });
                }
                Err(e) => return Err(RuntimeError::Transport(e.to_string())),
            }
        }
    }

    fn finish(&mut self, out: &mut Vec<Message>) -> Result<(), RuntimeError> {
        let msg = Message::from_bytes(&self.buf[..self.need])
            .map_err(|e| RuntimeError::Protocol(e.to_string()))?;
        out.push(msg);
        self.filled = 0;
        self.need = HEADER_LEN;
        if self.buf.capacity() > BUF_KEEP {
            self.buf = Vec::new();
        }
        Ok(())
    }
}

/// What one [`FrameWriter::pump`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WritePump {
    /// Bytes the sink accepted this pump.
    pub bytes: usize,
    /// The sink refused further bytes (`WouldBlock`); frames remain
    /// queued for the next pump.
    pub blocked: bool,
}

/// A resumable GIOP frame writer: encoded frames queue in order and
/// retire as the socket accepts their bytes, with a cursor into the
/// front frame surviving partial writes.
#[derive(Debug, Default)]
pub struct FrameWriter {
    queue: VecDeque<Vec<u8>>,
    offset: usize,
    queued: usize,
}

impl FrameWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        FrameWriter::default()
    }

    /// Queues one encoded frame for transmission.
    pub fn enqueue(&mut self, frame: Vec<u8>) {
        self.queued += frame.len();
        self.queue.push_back(frame);
    }

    /// Whether every queued byte has been handed to the sink.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Bytes queued but not yet accepted by the sink.
    #[must_use]
    pub fn queued_bytes(&self) -> usize {
        self.queued
    }

    /// Writes queued bytes until the sink blocks or the queue drains.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Transport`] when the sink fails or reports a
    /// zero-byte write (peer gone).
    pub fn pump<W: Write + ?Sized>(&mut self, dst: &mut W) -> Result<WritePump, RuntimeError> {
        let mut written = 0usize;
        loop {
            let Some(front) = self.queue.front() else {
                return Ok(WritePump {
                    bytes: written,
                    blocked: false,
                });
            };
            let front_len = front.len();
            match dst.write(&front[self.offset..]) {
                Ok(0) => {
                    return Err(RuntimeError::Transport(
                        "peer stopped accepting bytes".into(),
                    ))
                }
                Ok(n) => {
                    written += n;
                    self.offset += n;
                    self.queued -= n;
                    if self.offset == front_len {
                        self.queue.pop_front();
                        self.offset = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if is_would_block(&e) => {
                    return Ok(WritePump {
                        bytes: written,
                        blocked: true,
                    });
                }
                Err(e) => return Err(RuntimeError::Transport(e.to_string())),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Deadline wheel
// ---------------------------------------------------------------------------

/// Wheel slots; deadlines hash into `tick % WHEEL_SLOTS`.
const WHEEL_SLOTS: u64 = 256;

/// Wheel tick granularity: deadlines fire within one tick of their
/// nominal instant.
const WHEEL_TICK: Duration = Duration::from_millis(1);

/// A hashed timing wheel holding per-call deadlines.
///
/// Each armed deadline is an entry in the slot its tick hashes to; the
/// reactor advances the cursor every sweep and fires entries whose
/// tick has passed (entries a full rotation out stay put until the
/// cursor comes around again). Cancellation is lazy: a call that
/// completes simply abandons its entry, and firing an entry whose
/// waiter is gone is a no-op — so completion never pays a wheel
/// traversal.
#[derive(Debug)]
pub struct DeadlineWheel {
    slots: Vec<Vec<WheelEntry>>,
    origin: Instant,
    cursor: u64,
    live: usize,
}

#[derive(Debug)]
struct WheelEntry {
    tick: u64,
    conn: u64,
    request_id: u32,
}

impl DeadlineWheel {
    /// An empty wheel anchored at `origin`.
    #[must_use]
    pub fn new(origin: Instant) -> Self {
        DeadlineWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            origin,
            cursor: 0,
            live: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.origin);
        (elapsed.as_micros() / WHEEL_TICK.as_micros()) as u64
    }

    /// Arms a deadline for `(conn, request_id)` at instant `at`.
    /// Instants already in the past fire on the next expiry pass.
    pub fn insert(&mut self, conn: u64, request_id: u32, at: Instant) {
        let tick = self.tick_of(at).max(self.cursor);
        self.slots[(tick % WHEEL_SLOTS) as usize].push(WheelEntry {
            tick,
            conn,
            request_id,
        });
        self.live += 1;
    }

    /// Whether any deadline is armed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Fires every entry whose tick is at or before `now`, invoking
    /// `expired(conn, request_id)` for each.
    pub fn expire(&mut self, now: Instant, mut expired: impl FnMut(u64, u32)) {
        let now_tick = self.tick_of(now);
        if self.live == 0 {
            // Nothing armed: skip the cursor forward so a long idle
            // stretch is not replayed tick by tick later.
            self.cursor = self.cursor.max(now_tick);
            return;
        }
        while self.cursor <= now_tick {
            let slot = &mut self.slots[(self.cursor % WHEEL_SLOTS) as usize];
            let mut i = 0;
            while i < slot.len() {
                if slot[i].tick <= self.cursor {
                    let e = slot.swap_remove(i);
                    self.live -= 1;
                    expired(e.conn, e.request_id);
                } else {
                    i += 1;
                }
            }
            self.cursor += 1;
            if self.live == 0 {
                self.cursor = self.cursor.max(now_tick);
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Waker table
// ---------------------------------------------------------------------------

/// What a waiter slot holds while its call is in flight.
pub(crate) enum Slot {
    /// The reply has not arrived; the caller's thread handle is here so
    /// exactly that thread can be unparked on completion.
    Waiting(Thread),
    /// The reactor delivered the reply (still carrying the
    /// connection-unique wire id).
    Ready(Message),
    /// The connection failed — or the deadline fired — before the
    /// reply arrived.
    Failed(RuntimeError),
}

pub(crate) struct MuxState {
    /// In-flight calls keyed by connection-unique request id.
    pub pending: HashMap<u32, Slot>,
    /// Set once when the stream breaks; later calls fail fast.
    pub dead: Option<RuntimeError>,
}

/// The per-connection waker table shared between callers and the
/// reactor: callers register a [`Slot::Waiting`] entry and park; the
/// reactor resolves the slot and unparks exactly the owning thread.
pub(crate) struct MuxCore {
    pub state: Mutex<MuxState>,
    /// Registered-but-unresolved calls; the reactor reads this without
    /// taking the lock to decide whether the connection is hot.
    pub in_flight: AtomicUsize,
}

impl MuxCore {
    pub fn new() -> Self {
        MuxCore {
            state: Mutex::new(MuxState {
                pending: HashMap::new(),
                dead: None,
            }),
            in_flight: AtomicUsize::new(0),
        }
    }

    /// Delivers a reply to its waiter; a missing slot means the waiter
    /// gave up (deadline) and the late reply is dropped.
    pub fn complete(&self, request_id: u32, reply: Message) {
        let mut st = self.state.plock();
        if let Some(slot) = st.pending.get_mut(&request_id) {
            if let Slot::Waiting(t) = std::mem::replace(slot, Slot::Ready(reply)) {
                t.unpark();
            }
        }
    }

    /// Fails one waiter (deadline expiry). No-op if the call already
    /// resolved.
    pub fn fail_one(&self, request_id: u32, err: RuntimeError) {
        let mut st = self.state.plock();
        if let Some(slot @ Slot::Waiting(_)) = st.pending.get_mut(&request_id) {
            if let Slot::Waiting(t) = std::mem::replace(slot, Slot::Failed(err)) {
                t.unpark();
            }
        }
    }

    /// Marks the connection dead and fails every registered waiter —
    /// synchronously, under the same lock new waiters register under,
    /// so a call can never slip between the death of the stream and
    /// the failure broadcast and hang.
    pub fn fail_all(&self, err: &RuntimeError) {
        let mut st = self.state.plock();
        if st.dead.is_none() {
            st.dead = Some(err.clone());
        }
        for slot in st.pending.values_mut() {
            if matches!(slot, Slot::Waiting(_)) {
                if let Slot::Waiting(t) = std::mem::replace(slot, Slot::Failed(err.clone())) {
                    t.unpark();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------------

/// One unit of accepted server work: a request frame tagged with the
/// connection it arrived on, headed for the dispatch worker pool.
pub(crate) struct ServerJob {
    pub conn: u64,
    /// This connection's queued-frame count (admission control);
    /// decremented by the worker that picks the job up.
    pub queued: Arc<AtomicUsize>,
    pub msg: Message,
    /// When the request's propagated deadline runs out (admission
    /// stamped it from the wire slot); workers refuse the job past
    /// this instant instead of dispatching it.
    pub expires_at: Option<Instant>,
    /// When admission accepted the frame: the worker reports the full
    /// sojourn (queue wait + dispatch) to the AIMD limiter, so queueing
    /// delay — the first symptom of overload — moves the limit.
    pub admitted: Instant,
}

/// Everything a server-mode reactor needs that a client reactor does
/// not: admission config, the dispatch queue, and the server registry.
pub(crate) struct ServerCtx {
    pub cfg: Arc<ServerConfig>,
    pub queue: Arc<FrameQueue<ServerJob>>,
    /// Oneway requests carry no reply for the caller to correlate, so
    /// their only ordering guarantee is dispatch order: they bypass the
    /// parallel pool and drain through a single dedicated worker in
    /// receipt order.
    pub ordered: Arc<FrameQueue<ServerJob>>,
    pub in_flight: Arc<AtomicUsize>,
    pub metrics: Arc<MetricsRegistry>,
    /// The admission limiter (pinned at the static cap unless the
    /// config asked for adaptive control).
    pub limiter: Arc<AimdLimiter>,
}

pub(crate) enum Command {
    /// Adopt a connected, handshaken, nonblocking client stream.
    RegisterClient {
        id: u64,
        stream: TcpStream,
        core: Arc<MuxCore>,
        metrics: Arc<MetricsRegistry>,
    },
    /// Adopt an accepted server-side stream (server reactors only).
    RegisterServer { stream: TcpStream },
    /// Queue one encoded request frame on a client connection,
    /// optionally arming a deadline for its request id.
    Submit {
        conn: u64,
        frame: Vec<u8>,
        deadline: Option<(u32, Instant)>,
    },
    /// Queue one encoded reply frame on a server connection.
    Reply { conn: u64, frame: Vec<u8> },
    /// Drop a connection (client handle dropped).
    Close { conn: u64 },
    /// Server shutdown, phase one: stop reading new frames.
    StopReading,
    /// Server shutdown, phase two: flush pending writes and exit.
    Drain,
}

/// The caller-side handle to a reactor thread: a command queue plus
/// the thread handle to unpark after each send.
#[derive(Clone)]
pub(crate) struct ReactorHandle {
    tx: Sender<Command>,
    thread: Thread,
    next_id: Arc<AtomicU64>,
    open_conns: Arc<AtomicUsize>,
}

impl ReactorHandle {
    /// Allocates a process-unique connection id.
    pub fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Connections the reactor currently owns (a liveness/RSS proxy:
    /// closed slots are pruned immediately, so churn keeps this flat).
    pub fn open_conns(&self) -> usize {
        self.open_conns.load(Ordering::SeqCst)
    }

    /// Sends a command and wakes the reactor.
    pub fn send(&self, cmd: Command) -> Result<(), RuntimeError> {
        self.tx
            .send(cmd)
            .map_err(|_| RuntimeError::Transport("transport reactor is gone".into()))?;
        self.thread.unpark();
        Ok(())
    }
}

/// The process-wide reactor every client connection registers with.
pub(crate) fn client_reactor() -> &'static ReactorHandle {
    static CLIENT: OnceLock<ReactorHandle> = OnceLock::new();
    CLIENT.get_or_init(|| spawn_reactor("mb-reactor", None).0)
}

/// Spawns a reactor thread; `server` selects server mode. Returns the
/// handle and the thread's join handle (client callers detach it).
pub(crate) fn spawn_reactor(
    name: &str,
    server: Option<ServerCtx>,
) -> (ReactorHandle, std::thread::JoinHandle<()>) {
    let (tx, rx) = std::sync::mpsc::channel();
    let open_conns = Arc::new(AtomicUsize::new(0));
    let gauge = Arc::clone(&open_conns);
    let join = std::thread::Builder::new()
        .name(name.to_string())
        .spawn(move || {
            Reactor {
                conns: HashMap::new(),
                wheel: DeadlineWheel::new(Instant::now()),
                server,
                open_conns: gauge,
                stop_reading: false,
                sweep_seq: 0,
                cold_period: 1,
                next_conn: 1 << 32,
            }
            .run(&rx);
        })
        .expect("spawn reactor thread");
    let thread = join.thread().clone();
    (
        ReactorHandle {
            tx,
            thread,
            next_id: Arc::new(AtomicU64::new(1)),
            open_conns,
        },
        join,
    )
}

enum Role {
    Client {
        core: Arc<MuxCore>,
        metrics: Arc<MetricsRegistry>,
    },
    Server {
        queued: Arc<AtomicUsize>,
    },
}

struct ConnState {
    stream: TcpStream,
    reader: FrameReader,
    writer: FrameWriter,
    role: Role,
    /// Reject verdicts and protocol errors flush their last reply
    /// before the socket closes.
    close_after_flush: bool,
    idle_sweeps: u32,
    /// Set while the write queue is nonempty and making no progress.
    stalled_since: Option<Instant>,
}

impl ConnState {
    fn is_hot(&self) -> bool {
        if self.idle_sweeps < HOT_SWEEPS || !self.writer.is_empty() {
            return true;
        }
        match &self.role {
            Role::Client { core, .. } => core.in_flight.load(Ordering::SeqCst) > 0,
            Role::Server { queued } => queued.load(Ordering::SeqCst) > 0,
        }
    }
}

/// Why a connection left the reactor.
enum Closed {
    /// Clean close: peer EOF at a frame boundary, or our own
    /// close-after-flush completed.
    Clean,
    /// The stream failed; client waiters inherit the error.
    Error(RuntimeError),
}

struct Reactor {
    conns: HashMap<u64, ConnState>,
    wheel: DeadlineWheel,
    server: Option<ServerCtx>,
    open_conns: Arc<AtomicUsize>,
    stop_reading: bool,
    sweep_seq: u64,
    cold_period: u64,
    /// Server-side connection ids (client ids come from the handle's
    /// allocator; the two kinds never share a reactor, but keeping the
    /// ranges apart makes logs unambiguous anyway).
    next_conn: u64,
}

impl Reactor {
    fn run(mut self, rx: &Receiver<Command>) {
        let mut frames: Vec<Message> = Vec::new();
        loop {
            let mut progress = false;

            // Commands first: registrations, submissions, shutdown.
            loop {
                match rx.try_recv() {
                    Ok(Command::Drain) => {
                        self.drain();
                        return;
                    }
                    Ok(cmd) => {
                        progress = true;
                        self.handle(cmd);
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        // Every handle is gone: nobody can submit work
                        // or wait on a reply. Fail what's left and
                        // exit.
                        self.fail_everything(&RuntimeError::Transport(
                            "transport reactor shut down".into(),
                        ));
                        return;
                    }
                }
            }

            // Expired deadlines fail their waiters (lazily cancelled:
            // a completed call's entry fires into a resolved slot and
            // does nothing).
            let now = Instant::now();
            let conns = &mut self.conns;
            self.wheel.expire(now, |conn, request_id| {
                if let Some(ConnState {
                    role: Role::Client { core, .. },
                    ..
                }) = conns.get(&conn)
                {
                    core.fail_one(
                        request_id,
                        RuntimeError::Timeout("deadline elapsed before a reply".into()),
                    );
                }
            });

            // Readiness sweep.
            let (swept, hot) = self.sweep(&mut frames);
            progress |= swept;

            if progress {
                continue;
            }
            let park = if hot > 0 {
                ACTIVE_PARK
            } else if !self.wheel.is_empty() {
                WHEEL_TICK
            } else {
                IDLE_PARK
            };
            std::thread::park_timeout(park);
        }
    }

    fn handle(&mut self, cmd: Command) {
        match cmd {
            Command::RegisterClient {
                id,
                stream,
                core,
                metrics,
            } => {
                self.insert(id, stream, Role::Client { core, metrics });
            }
            Command::RegisterServer { stream } => {
                if self.server.is_some() {
                    self.next_conn += 1;
                    let id = self.next_conn;
                    self.insert(
                        id,
                        stream,
                        Role::Server {
                            queued: Arc::new(AtomicUsize::new(0)),
                        },
                    );
                }
            }
            Command::Submit {
                conn,
                frame,
                deadline,
            } => {
                if let Some(c) = self.conns.get_mut(&conn) {
                    if let Some((request_id, at)) = deadline {
                        self.wheel.insert(conn, request_id, at);
                    }
                    c.writer.enqueue(frame);
                    c.idle_sweeps = 0;
                    if let Err(e) = Self::pump_write(c) {
                        self.close(conn, &Closed::Error(e));
                    }
                }
                // Unknown conn: it died and fail_all already resolved
                // the caller's slot; the frame is dropped.
            }
            Command::Reply { conn, frame } => {
                if let Some(c) = self.conns.get_mut(&conn) {
                    if c.writer.queued_bytes() + frame.len() > WRITE_BACKLOG_MAX {
                        self.close(
                            conn,
                            &Closed::Error(RuntimeError::Transport(
                                "write backlog limit exceeded".into(),
                            )),
                        );
                        return;
                    }
                    c.writer.enqueue(frame);
                    c.idle_sweeps = 0;
                    if let Err(e) = Self::pump_write(c) {
                        self.close(conn, &Closed::Error(e));
                    }
                }
            }
            Command::Close { conn } => {
                self.close(
                    conn,
                    &Closed::Error(RuntimeError::Transport("connection closed".into())),
                );
            }
            Command::StopReading => self.stop_reading = true,
            Command::Drain => unreachable!("handled in run()"),
        }
    }

    fn insert(&mut self, id: u64, stream: TcpStream, role: Role) {
        stream.set_nonblocking(true).ok();
        self.conns.insert(
            id,
            ConnState {
                stream,
                reader: FrameReader::new(),
                writer: FrameWriter::new(),
                role,
                close_after_flush: false,
                idle_sweeps: 0,
                stalled_since: None,
            },
        );
        self.open_conns.store(self.conns.len(), Ordering::SeqCst);
    }

    /// Removes a connection, failing client waiters synchronously.
    fn close(&mut self, id: u64, why: &Closed) {
        let Some(conn) = self.conns.remove(&id) else {
            return;
        };
        self.open_conns.store(self.conns.len(), Ordering::SeqCst);
        if let Role::Client { core, .. } = &conn.role {
            let err = match why {
                Closed::Clean => RuntimeError::Transport("server closed the connection".into()),
                Closed::Error(e) => e.clone(),
            };
            core.fail_all(&err);
        }
        conn.stream.shutdown(Shutdown::Both).ok();
    }

    fn fail_everything(&mut self, err: &RuntimeError) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.close(id, &Closed::Error(err.clone()));
        }
    }

    /// One pass over every due connection. Returns whether any byte
    /// moved and how many connections are hot.
    fn sweep(&mut self, frames: &mut Vec<Message>) -> (bool, usize) {
        self.sweep_seq = self.sweep_seq.wrapping_add(1);
        let mut moved = false;
        let mut hot = 0usize;
        let mut cold = 0u64;
        let mut closed: Vec<(u64, Closed)> = Vec::new();
        let server = self.server.as_ref();
        let (sweep_seq, cold_period, stop_reading) =
            (self.sweep_seq, self.cold_period, self.stop_reading);
        for (&id, conn) in &mut self.conns {
            if conn.is_hot() {
                hot += 1;
            } else {
                cold += 1;
                if sweep_seq.wrapping_add(id) % cold_period != 0 {
                    continue;
                }
            }
            match Self::service(conn, id, server, frames, stop_reading) {
                Ok(Service {
                    bytes,
                    closed: was_closed,
                }) => {
                    if bytes > 0 {
                        moved = true;
                        conn.idle_sweeps = 0;
                    } else {
                        conn.idle_sweeps = conn.idle_sweeps.saturating_add(1);
                    }
                    if was_closed {
                        closed.push((id, Closed::Clean));
                    }
                }
                Err(e) => closed.push((id, Closed::Error(e))),
            }
        }
        for (id, why) in closed {
            self.close(id, &why);
        }
        self.cold_period = (cold / COLD_BATCH).max(1);
        (moved, hot)
    }

    /// Pumps one connection's writer, tracking stalls.
    fn pump_write(conn: &mut ConnState) -> Result<usize, RuntimeError> {
        if conn.writer.is_empty() {
            conn.stalled_since = None;
            return Ok(0);
        }
        let pump = conn.writer.pump(&mut conn.stream)?;
        if pump.bytes > 0 {
            let metrics = match &conn.role {
                Role::Client { metrics, .. } => Some(metrics),
                Role::Server { .. } => None,
            };
            if let Some(m) = metrics {
                m.add_bytes_sent(pump.bytes as u64);
            }
        }
        if conn.writer.is_empty() {
            conn.stalled_since = None;
        } else if pump.bytes > 0 {
            conn.stalled_since = Some(Instant::now());
        } else {
            match conn.stalled_since {
                None => conn.stalled_since = Some(Instant::now()),
                Some(since) if since.elapsed() > WRITE_STALL => {
                    return Err(RuntimeError::Transport(
                        "write stalled: peer stopped reading".into(),
                    ));
                }
                Some(_) => {}
            }
        }
        Ok(pump.bytes)
    }

    /// Services one connection: write pump, then read pump + frame
    /// handling. Returns bytes moved and whether the connection
    /// reached a clean close.
    fn service(
        conn: &mut ConnState,
        id: u64,
        server: Option<&ServerCtx>,
        frames: &mut Vec<Message>,
        stop_reading: bool,
    ) -> Result<Service, RuntimeError> {
        let mut bytes = Self::pump_write(conn)?;
        if conn.close_after_flush {
            return Ok(Service {
                bytes,
                closed: conn.writer.is_empty(),
            });
        }
        if stop_reading {
            return Ok(Service {
                bytes,
                closed: false,
            });
        }
        frames.clear();
        let pump = conn.reader.pump(&mut conn.stream, frames, READ_BUDGET)?;
        bytes += pump.bytes;
        if pump.bytes > 0 {
            match (&conn.role, server) {
                (Role::Client { metrics, .. }, _) => metrics.add_bytes_received(pump.bytes as u64),
                (Role::Server { .. }, Some(ctx)) => {
                    ctx.metrics.add_bytes_received(pump.bytes as u64)
                }
                (Role::Server { .. }, None) => {}
            }
        }
        for msg in frames.drain(..) {
            match &conn.role {
                Role::Client { core, .. } => {
                    if let MessageKind::Reply { request_id, .. } = msg.kind {
                        core.complete(request_id, msg);
                    }
                    // Clients only expect replies; anything else is
                    // dropped, as the old reader thread did.
                }
                Role::Server { queued } => {
                    let Some(ctx) = server else { continue };
                    Self::serve_frame(
                        conn_parts(&mut conn.writer, &mut conn.close_after_flush),
                        id,
                        queued,
                        ctx,
                        msg,
                    );
                }
            }
        }
        Ok(Service {
            bytes,
            closed: pump.eof,
        })
    }

    /// Handles one inbound server-side frame: handshake, admission,
    /// queue or shed.
    fn serve_frame(
        parts: (&mut FrameWriter, &mut bool),
        id: u64,
        queued: &Arc<AtomicUsize>,
        ctx: &ServerCtx,
        msg: Message,
    ) {
        let (writer, close_after_flush) = parts;
        if let MessageKind::Hello { info, .. } = &msg.kind {
            let (reply, keep) = hello_reply(info, msg.endian, &ctx.cfg, &ctx.metrics);
            writer.enqueue(reply.to_bytes());
            if !keep {
                *close_after_flush = true;
            }
            return;
        }
        if let MessageKind::Artifact {
            request_id,
            reply: false,
        } = &msg.kind
        {
            // Answered inline like Hello: a store read, no dispatch slot.
            let reply = crate::artifacts::artifact_fetch_reply(
                *request_id,
                msg.endian,
                &msg.body,
                ctx.cfg.artifacts.as_deref(),
            );
            writer.enqueue(reply.to_bytes());
            return;
        }
        // Admission control, same policy as the threaded server: an
        // already-expired propagated deadline is refused at the door,
        // the rest pass the limiter (brownout cuts sheddable traffic
        // first) and the per-connection queue bound — everything sheds
        // rather than stalls, so a flooded server answers fast instead
        // of wedging every socket behind slow dispatches.
        let expires_at = msg
            .deadline
            .and_then(|d| d.budget())
            .map(|b| Instant::now() + b);
        if expires_at.is_some_and(|at| Instant::now() >= at) {
            if let Some(reply) = deadline_expired_reply(&msg, &ctx.metrics) {
                writer.enqueue(reply.to_bytes());
            }
            return;
        }
        let sheddable = msg.deadline.is_some_and(|d| d.sheddable);
        let admission = ctx.limiter.admit(
            ctx.in_flight.load(Ordering::SeqCst),
            ctx.queue.len(),
            sheddable,
        );
        if admission == Admission::Brownout {
            ctx.metrics.add_brownout_shed();
        }
        let admitted =
            admission == Admission::Admit && queued.load(Ordering::SeqCst) < ctx.cfg.max_queue;
        if admitted {
            // Oneways go to the single ordered worker (dispatch order
            // is their only delivery guarantee); request/reply calls
            // fan out across the pool and correlate by request id.
            let oneway = matches!(
                msg.kind,
                MessageKind::Request {
                    response_expected: false,
                    ..
                }
            );
            let target = if oneway { &ctx.ordered } else { &ctx.queue };
            queued.fetch_add(1, Ordering::SeqCst);
            if target
                .try_push(ServerJob {
                    conn: id,
                    queued: Arc::clone(queued),
                    msg,
                    expires_at,
                    admitted: Instant::now(),
                })
                .is_err()
            {
                // The queue closed under us (shutdown): undo and drop.
                queued.fetch_sub(1, Ordering::SeqCst);
            }
        } else if let Some(reply) = shed_reply(&msg, &ctx.metrics) {
            writer.enqueue(reply.to_bytes());
        }
    }

    /// Server shutdown, phase two: flush pending reply bytes (bounded)
    /// and exit.
    fn drain(&mut self) {
        let give_up = Instant::now() + DRAIN_FLUSH;
        while Instant::now() < give_up {
            let mut pending = false;
            let mut broken: Vec<u64> = Vec::new();
            for (&id, conn) in &mut self.conns {
                if conn.writer.is_empty() {
                    continue;
                }
                match Self::pump_write(conn) {
                    Ok(_) => {
                        if !conn.writer.is_empty() {
                            pending = true;
                        }
                    }
                    Err(_) => broken.push(id),
                }
            }
            for id in broken {
                self.close(
                    id,
                    &Closed::Error(RuntimeError::Transport("shutdown".into())),
                );
            }
            if !pending {
                break;
            }
            std::thread::park_timeout(ACTIVE_PARK);
        }
        self.fail_everything(&RuntimeError::Transport("server shut down".into()));
    }
}

struct Service {
    bytes: usize,
    closed: bool,
}

fn conn_parts<'a>(
    writer: &'a mut FrameWriter,
    close_after_flush: &'a mut bool,
) -> (&'a mut FrameWriter, &'a mut bool) {
    (writer, close_after_flush)
}

/// Builds the server's half of the handshake. Returns the reply frame
/// and whether the connection stays open.
fn hello_reply(
    client: &HandshakeInfo,
    endian: Endian,
    cfg: &ServerConfig,
    metrics: &MetricsRegistry,
) -> (Message, bool) {
    metrics.add_handshake();
    let (mine, verdict) = match &cfg.handshake {
        Some(mine) => (*mine, mine.evaluate(client)),
        // Permissive mode: echo the client's info back with an Accept.
        None => (*client, HandshakeVerdict::Accept),
    };
    let keep = match verdict {
        HandshakeVerdict::Reject => {
            metrics.add_handshake_reject();
            false
        }
        HandshakeVerdict::InterpretiveOnly => {
            metrics.add_handshake_fallback();
            true
        }
        _ => true,
    };
    (Message::hello(mine, verdict, endian), keep)
}

/// Builds the `Overloaded` reply for one shed request (`None` for
/// oneways, which are silently dropped, as messaging semantics allow).
fn shed_reply(msg: &Message, metrics: &MetricsRegistry) -> Option<Message> {
    metrics.add_shed();
    let MessageKind::Request {
        request_id,
        response_expected: true,
        ..
    } = &msg.kind
    else {
        return None;
    };
    let mut w = CdrWriter::new(msg.endian);
    w.put_bytes(b"dispatch queue full");
    Some(Message::reply(
        *request_id,
        ReplyStatus::Overloaded,
        msg.endian,
        w.into_bytes(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{wire_fault, Fault};
    use std::io::Cursor;

    fn request_frame(id: u32, body: &[u8]) -> Message {
        Message::request(
            id,
            true,
            b"object".to_vec(),
            "op",
            Endian::Little,
            body.to_vec(),
        )
    }

    /// A reader that hands out its backing bytes in fixed-size slivers
    /// and then reports `WouldBlock`, like a socket drained dry.
    struct Chunked {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        served_this_call: bool,
    }

    impl Chunked {
        fn new(data: Vec<u8>, chunk: usize) -> Self {
            Chunked {
                data,
                pos: 0,
                chunk,
                served_this_call: false,
            }
        }
        fn exhausted(&self) -> bool {
            self.pos >= self.data.len()
        }
    }

    impl Read for Chunked {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.served_this_call || self.exhausted() {
                self.served_this_call = false;
                return Err(std::io::Error::from(std::io::ErrorKind::WouldBlock));
            }
            let n = self.chunk.min(self.data.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            self.served_this_call = true;
            Ok(n)
        }
    }

    #[test]
    fn reader_reassembles_byte_by_byte_splits() {
        let msg = request_frame(7, b"hello frame body");
        let bytes = msg.to_bytes();
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        let mut src = Chunked::new(bytes.clone(), 1);
        // Each pump consumes one byte then blocks; the machine must
        // resume mid-header and mid-body without losing its place.
        let mut pumps = 0;
        while out.is_empty() {
            let p = reader.pump(&mut src, &mut out, READ_BUDGET).unwrap();
            assert!(!p.eof);
            pumps += 1;
            assert!(pumps < 10_000, "reader wedged");
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to_bytes(), bytes);
        assert!(!reader.mid_frame());
    }

    #[test]
    fn reader_extracts_many_frames_from_one_burst() {
        let mut bytes = Vec::new();
        for id in 0..6u32 {
            bytes.extend_from_slice(&request_frame(id, &[id as u8; 40]).to_bytes());
        }
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        let mut src = Cursor::new(bytes);
        let p = reader.pump(&mut src, &mut out, usize::MAX).unwrap();
        assert!(p.eof, "cursor ends cleanly at a frame boundary");
        assert_eq!(out.len(), 6);
        for (i, m) in out.iter().enumerate() {
            let MessageKind::Request { request_id, .. } = m.kind else {
                panic!("not a request");
            };
            assert_eq!(request_id, i as u32);
        }
    }

    #[test]
    fn reader_respects_the_byte_budget() {
        let mut bytes = Vec::new();
        for id in 0..4u32 {
            bytes.extend_from_slice(&request_frame(id, &[0u8; 64]).to_bytes());
        }
        let total = bytes.len();
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        let mut src = Cursor::new(bytes);
        let p = reader.pump(&mut src, &mut out, total / 2).unwrap();
        assert!(
            p.bytes >= total / 2 && p.bytes < total,
            "budget bounded the pump"
        );
        let p2 = reader.pump(&mut src, &mut out, usize::MAX).unwrap();
        assert!(p2.eof);
        assert_eq!(out.len(), 4, "the rest arrived on the next pump");
    }

    #[test]
    fn reader_rejects_forged_length_before_allocating() {
        // A rogue header declaring a ~4 GiB frame.
        let mut forged = Vec::new();
        forged.extend_from_slice(b"GIOP");
        forged.extend_from_slice(&[1, 0, 0x01, 0]);
        forged.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        let err = reader
            .pump(&mut Cursor::new(forged), &mut out, usize::MAX)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Protocol(_)), "got {err}");
        assert!(
            reader.buf.capacity() <= 1024,
            "no body allocation for a forged length"
        );
    }

    #[test]
    fn reader_rejects_bad_magic() {
        let mut junk = b"HTTP/1.1 200 OK\r\n\r\n".to_vec();
        junk.resize(64, 0);
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        let err = reader
            .pump(&mut Cursor::new(junk), &mut out, usize::MAX)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Protocol(_)), "got {err}");
    }

    #[test]
    fn reader_treats_mid_frame_close_as_transport_error() {
        let bytes = request_frame(3, b"truncated").to_bytes();
        for cut in [1, 6, 13, bytes.len() - 1] {
            let mut reader = FrameReader::new();
            let mut out = Vec::new();
            let err = reader
                .pump(
                    &mut Cursor::new(bytes[..cut].to_vec()),
                    &mut out,
                    usize::MAX,
                )
                .unwrap_err();
            assert!(
                matches!(err, RuntimeError::Transport(_)),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn reader_survives_seeded_wire_faults_without_panicking() {
        // The chaos fault injectors mutate raw frames exactly as they
        // would on the wire; the state machine must fail cleanly (or,
        // for faults that leave the frame intact, still parse) on
        // every seed.
        for seed in 0..64u64 {
            for fault in [Fault::Truncate, Fault::Corrupt, Fault::Drop] {
                let mut bytes = request_frame(9, &[0xAB; 200]).to_bytes();
                wire_fault(&mut bytes, fault, seed);
                let mut reader = FrameReader::new();
                let mut out = Vec::new();
                let trailing_ok = request_frame(10, b"next").to_bytes();
                let mut stream = bytes.clone();
                stream.extend_from_slice(&trailing_ok);
                // Whatever the fault did, the reader either yields
                // frames or errors; it never panics or spins.
                let _ = reader.pump(&mut Cursor::new(stream), &mut out, usize::MAX);
            }
        }
    }

    #[test]
    fn writer_resumes_partial_writes() {
        /// A sink that accepts at most 3 bytes per call, blocking
        /// every other call.
        struct Dribble {
            out: Vec<u8>,
            turn: bool,
        }
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.turn = !self.turn;
                if !self.turn {
                    return Err(std::io::Error::from(std::io::ErrorKind::WouldBlock));
                }
                let n = buf.len().min(3);
                self.out.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let mut writer = FrameWriter::new();
        let a = request_frame(1, b"first").to_bytes();
        let b = request_frame(2, b"second, longer body").to_bytes();
        writer.enqueue(a.clone());
        writer.enqueue(b.clone());
        assert_eq!(writer.queued_bytes(), a.len() + b.len());
        let mut sink = Dribble {
            out: Vec::new(),
            turn: false,
        };
        let mut pumps = 0;
        while !writer.is_empty() {
            writer.pump(&mut sink).unwrap();
            pumps += 1;
            assert!(pumps < 10_000, "writer wedged");
        }
        assert_eq!(writer.queued_bytes(), 0);
        let mut expect = a;
        expect.extend_from_slice(&b);
        assert_eq!(sink.out, expect, "frames arrive whole and in order");
    }

    #[test]
    fn writer_reports_peer_gone_on_zero_write() {
        struct Dead;
        impl Write for Dead {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut writer = FrameWriter::new();
        writer.enqueue(vec![1, 2, 3]);
        let err = writer.pump(&mut Dead).unwrap_err();
        assert!(matches!(err, RuntimeError::Transport(_)));
    }

    #[test]
    fn wheel_fires_due_deadlines_and_keeps_future_ones() {
        let origin = Instant::now();
        let mut wheel = DeadlineWheel::new(origin);
        wheel.insert(1, 10, origin + Duration::from_millis(5));
        wheel.insert(1, 11, origin + Duration::from_millis(500));
        wheel.insert(2, 12, origin + Duration::from_millis(6));
        let mut fired = Vec::new();
        wheel.expire(origin + Duration::from_millis(20), |c, r| {
            fired.push((c, r))
        });
        fired.sort_unstable();
        assert_eq!(fired, vec![(1, 10), (2, 12)]);
        assert!(!wheel.is_empty(), "the 500ms entry is still armed");
        let mut late = Vec::new();
        wheel.expire(origin + Duration::from_millis(600), |c, r| {
            late.push((c, r))
        });
        assert_eq!(late, vec![(1, 11)]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn wheel_handles_full_rotation_collisions() {
        // Two entries hashing to the same slot, one full rotation
        // apart: the near one fires, the far one waits its turn.
        let origin = Instant::now();
        let mut wheel = DeadlineWheel::new(origin);
        let near = Duration::from_millis(3);
        let far = near + Duration::from_millis(WHEEL_SLOTS); // same slot, next rotation
        wheel.insert(7, 1, origin + near);
        wheel.insert(7, 2, origin + far);
        let mut fired = Vec::new();
        wheel.expire(origin + Duration::from_millis(10), |_, r| fired.push(r));
        assert_eq!(fired, vec![1], "the colliding future entry stayed");
        wheel.expire(origin + far + Duration::from_millis(2), |_, r| {
            fired.push(r)
        });
        assert_eq!(fired, vec![1, 2]);
    }

    #[test]
    fn wheel_holds_deadlines_beyond_one_rotation() {
        // A deadline several full rotations out (the wheel covers
        // WHEEL_SLOTS ticks = 256 ms per revolution) must survive every
        // intermediate sweep of its slot and fire only when its own
        // tick comes around — never early, never dropped.
        let origin = Instant::now();
        let mut wheel = DeadlineWheel::new(origin);
        let far = Duration::from_millis(3 * WHEEL_SLOTS + 5); // ~773 ms
        wheel.insert(9, 42, origin + far);
        let mut fired = Vec::new();
        // Sweep right past its slot on each of the three intervening
        // rotations.
        for rotation in 1..=3u64 {
            wheel.expire(
                origin + Duration::from_millis(rotation * WHEEL_SLOTS),
                |c, r| fired.push((c, r)),
            );
            assert!(fired.is_empty(), "fired {} rotations early", 4 - rotation);
            assert!(!wheel.is_empty(), "entry dropped mid-rotation");
        }
        wheel.expire(origin + far + WHEEL_TICK, |c, r| fired.push((c, r)));
        assert_eq!(fired, vec![(9, 42)]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn wheel_fires_past_deadlines_immediately() {
        let origin = Instant::now();
        let mut wheel = DeadlineWheel::new(origin);
        wheel.expire(origin + Duration::from_secs(2), |_, _| {});
        // Inserted "in the past" relative to the cursor.
        wheel.insert(3, 9, origin + Duration::from_millis(1));
        let mut fired = Vec::new();
        wheel.expire(origin + Duration::from_secs(2) + WHEEL_TICK, |c, r| {
            fired.push((c, r));
        });
        assert_eq!(fired, vec![(3, 9)]);
    }
}
