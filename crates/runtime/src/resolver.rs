//! Location-transparent naming: resolvers map object *names* to live
//! endpoint sets.
//!
//! The paper's premise is that a stub is compiled from a *pair of
//! declarations*, not against a fixed peer — so a reference should name
//! an **object** (a name plus the interface fingerprint it was compiled
//! against), not a socket. A [`Resolver`] owns that mapping: given an
//! [`ObjectName`] it returns the replicas currently serving it, in
//! preference order, and a monotonically increasing [`version`] that
//! bumps whenever the set changes. A
//! [`ConnectionPool`](crate::pool::ConnectionPool) built over a resolver
//! re-reads the set whenever the version moves, creating circuit
//! breakers for endpoints that join and retiring the breakers of
//! endpoints that leave.
//!
//! The old fixed-endpoint path is preserved as the trivial
//! [`StaticResolver`]: one resolution at construction, a version that
//! never moves.
//!
//! [`version`]: Resolver::version

use std::net::SocketAddr;

/// The logical identity of a remote object: a name and the nominal
/// interface fingerprint the caller's stubs were compiled against.
///
/// Two replicas serve "the same object" when they advertise the same
/// name *and* the same interface fingerprint — a replica built from
/// different declarations is a different object even under the same
/// name, and resolving to it would decode requests as garbage.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjectName {
    /// Human-readable object name (the mesh advertisement key).
    pub name: String,
    /// Nominal fingerprint of the operation table
    /// ([`interface_fingerprint`](crate::dispatch::interface_fingerprint)).
    pub interface_fp: u128,
}

impl ObjectName {
    /// An object name under a compiled interface fingerprint.
    #[must_use]
    pub fn new(name: impl Into<String>, interface_fp: u128) -> Self {
        ObjectName {
            name: name.into(),
            interface_fp,
        }
    }

    /// A name that matches any interface (used by the static path,
    /// which never filters by fingerprint).
    #[must_use]
    pub fn any(name: impl Into<String>) -> Self {
        Self::new(name, 0)
    }
}

impl std::fmt::Display for ObjectName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{:032x}", self.name, self.interface_fp)
    }
}

/// One replica a resolver returned: where to dial it and how the
/// resolver ranks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedEndpoint {
    /// The socket to dial.
    pub addr: SocketAddr,
    /// The zone the replica advertised (same-zone replicas sort first).
    pub zone: u32,
    /// Coarse latency tier within the zone (lower is closer).
    pub latency_tier: u8,
    /// The marshal-rules fingerprint the replica advertised. A mismatch
    /// with the caller's rules is survivable (the handshake demotes the
    /// connection to the interpretive path); it is surfaced here so
    /// callers can prefer fused-capable replicas.
    pub rules_fp: u64,
}

impl ResolvedEndpoint {
    /// An endpoint in zone 0, tier 0, with no rules fingerprint — what
    /// the static path produces from a bare address.
    #[must_use]
    pub fn plain(addr: SocketAddr) -> Self {
        ResolvedEndpoint {
            addr,
            zone: 0,
            latency_tier: 0,
            rules_fp: 0,
        }
    }
}

/// Maps object names to the replicas currently serving them.
///
/// Implementations must be cheap to poll: [`version`](Self::version) is
/// read before every routed call, so it should be an atomic load.
/// [`resolve`](Self::resolve) is only re-run when the version moved.
pub trait Resolver: Send + Sync {
    /// The replicas currently serving `name`, in preference order
    /// (closest zone / lowest tier first). An empty vector means no
    /// live replica is known — calls fail until one joins.
    fn resolve(&self, name: &ObjectName) -> Vec<ResolvedEndpoint>;

    /// Monotonic directory version; bumps whenever any resolution could
    /// have changed. Pools re-resolve when it moves.
    fn version(&self) -> u64;

    /// Whether the endpoint set can change after construction. Dynamic
    /// resolvers enable failover semantics (a
    /// [`RemoteRef`](crate::proxy::RemoteRef) over one re-resolves and
    /// retries across replicas); the static path keeps the historical
    /// fail-fast behaviour.
    fn is_dynamic(&self) -> bool {
        true
    }
}

/// The fixed-endpoint path as a resolver: the construction-time list,
/// in order, for every name, forever.
#[derive(Debug, Clone)]
pub struct StaticResolver {
    endpoints: Vec<ResolvedEndpoint>,
}

impl StaticResolver {
    /// A resolver always answering with `addrs`, in order.
    #[must_use]
    pub fn new(addrs: Vec<SocketAddr>) -> Self {
        StaticResolver {
            endpoints: addrs.into_iter().map(ResolvedEndpoint::plain).collect(),
        }
    }

    /// A resolver over fully-annotated endpoints (zones and tiers are
    /// respected by pools even without a mesh behind them).
    #[must_use]
    pub fn with_endpoints(endpoints: Vec<ResolvedEndpoint>) -> Self {
        StaticResolver { endpoints }
    }
}

impl Resolver for StaticResolver {
    fn resolve(&self, _name: &ObjectName) -> Vec<ResolvedEndpoint> {
        self.endpoints.clone()
    }

    fn version(&self) -> u64 {
        1
    }

    fn is_dynamic(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_resolver_answers_every_name_with_the_same_set() {
        let a: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let b: SocketAddr = "127.0.0.1:2".parse().unwrap();
        let r = StaticResolver::new(vec![a, b]);
        let one = r.resolve(&ObjectName::new("calc", 7));
        let two = r.resolve(&ObjectName::any("other"));
        assert_eq!(one, two);
        assert_eq!(one.len(), 2);
        assert_eq!(one[0].addr, a);
        assert_eq!(r.version(), 1, "static versions never move");
        assert!(!r.is_dynamic());
    }

    #[test]
    fn object_names_carry_the_fingerprint() {
        let n = ObjectName::new("calc", 0xABCD);
        assert_eq!(n.name, "calc");
        assert_eq!(n.interface_fp, 0xABCD);
        assert!(n.to_string().starts_with("calc@"));
        assert_ne!(n, ObjectName::any("calc"), "fingerprints distinguish");
    }
}
